//! The generalization/specialization hierarchy of classes of design
//! objects (CDOs).
//!
//! The hierarchy is stored as an arena ([`DesignSpace`]) with typed ids
//! ([`CdoId`]); the paper's inheritance-heavy object model maps onto plain
//! data plus an ancestor walk, which keeps properties first-class values
//! rather than types.
//!
//! Two kinds of specialization coexist, as in the paper's Fig. 5:
//!
//! * *taxonomic* children ([`DesignSpace::add_child`]) group by
//!   functionality ("Operator" → "Logic/Arithmetic" → "Adder"), and
//! * *generalized-issue* children ([`DesignSpace::specialize`]) partition
//!   a CDO's design space by the options of its (single) generalized
//!   design issue ("Implementation Style" → Hardware / Software).


use crate::behavior::BehavioralDescription;
use crate::constraint::ConsistencyConstraint;
use crate::error::DseError;
use crate::property::{Property, PropertyKind};
use crate::value::Value;

pub use crate::intern::Symbol;

/// An opaque identifier of a CDO within one [`DesignSpace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CdoId(usize);

impl CdoId {
    /// The raw arena index (stable for the lifetime of the space).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One class of design objects.
#[derive(Debug, Clone, PartialEq)]
pub struct CdoNode {
    name: String,
    doc: String,
    parent: Option<CdoId>,
    children: Vec<CdoId>,
    properties: Vec<Property>,
    constraints: Vec<ConsistencyConstraint>,
    behaviors: Vec<BehavioralDescription>,
    /// If this CDO was spawned by a generalized issue, the
    /// `(issue, option)` binding it represents.
    spawned_by: Option<(String, Value)>,
    /// The name of this CDO's generalized design issue, if declared.
    generalized_issue: Option<String>,
}

impl CdoNode {
    /// The CDO's name (unique among its siblings, not globally).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The documentation line.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The parent CDO, if any.
    pub fn parent(&self) -> Option<CdoId> {
        self.parent
    }

    /// Child CDOs.
    pub fn children(&self) -> &[CdoId] {
        &self.children
    }

    /// Properties declared *at this node* (not inherited).
    pub fn own_properties(&self) -> &[Property] {
        &self.properties
    }

    /// Constraints declared at this node.
    pub fn own_constraints(&self) -> &[ConsistencyConstraint] {
        &self.constraints
    }

    /// Behavioural descriptions attached to this node.
    pub fn behaviors(&self) -> &[BehavioralDescription] {
        &self.behaviors
    }

    /// The `(issue, option)` binding that spawned this CDO, if it came
    /// from specializing a generalized issue.
    pub fn spawned_by(&self) -> Option<(&str, &Value)> {
        self.spawned_by.as_ref().map(|(i, v)| (i.as_str(), v))
    }

    /// The node's generalized design issue name, if declared.
    pub fn generalized_issue(&self) -> Option<&str> {
        self.generalized_issue.as_deref()
    }
}

/// A design space layer: the arena of CDOs plus the roots.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    name: String,
    nodes: Vec<CdoNode>,
    roots: Vec<CdoId>,
}

impl DesignSpace {
    /// Creates an empty layer.
    pub fn new(name: impl Into<String>) -> Self {
        DesignSpace {
            name: name.into(),
            nodes: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a root CDO.
    pub fn add_root(&mut self, name: impl Into<String>, doc: impl Into<String>) -> CdoId {
        let id = self.push_node(name.into(), doc.into(), None, None);
        self.roots.push(id);
        id
    }

    /// Adds a taxonomic child CDO (functional specialization).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not an id of this space.
    pub fn add_child(
        &mut self,
        parent: CdoId,
        name: impl Into<String>,
        doc: impl Into<String>,
    ) -> CdoId {
        assert!(parent.0 < self.nodes.len(), "foreign CdoId");
        let id = self.push_node(name.into(), doc.into(), Some(parent), None);
        self.nodes[parent.0].children.push(id);
        id
    }

    fn push_node(
        &mut self,
        name: String,
        doc: String,
        parent: Option<CdoId>,
        spawned_by: Option<(String, Value)>,
    ) -> CdoId {
        let id = CdoId(self.nodes.len());
        self.nodes.push(CdoNode {
            name,
            doc,
            parent,
            children: Vec::new(),
            properties: Vec::new(),
            constraints: Vec::new(),
            behaviors: Vec::new(),
            spawned_by,
            generalized_issue: None,
        });
        id
    }

    /// The root CDOs.
    pub fn roots(&self) -> &[CdoId] {
        &self.roots
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an id of this space.
    pub fn node(&self, id: CdoId) -> &CdoNode {
        &self.nodes[id.0]
    }

    /// Number of CDOs in the layer.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the layer has no CDOs.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CdoId, &CdoNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (CdoId(i), n))
    }

    /// All leaf CDOs (no children).
    pub fn leaves(&self) -> Vec<CdoId> {
        self.iter()
            .filter(|(_, n)| n.children.is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// The ancestor chain from `id` up to its root (inclusive of `id`).
    pub fn ancestry(&self, id: CdoId) -> Vec<CdoId> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur.0].parent {
            chain.push(p);
            cur = p;
        }
        chain
    }

    /// Dotted path from the root, e.g.
    /// `"Operator.Modular.Multiplier.Hardware.Montgomery"`.
    pub fn path_string(&self, id: CdoId) -> String {
        let mut names: Vec<&str> = self
            .ancestry(id)
            .iter()
            .map(|&c| self.nodes[c.0].name.as_str())
            .collect();
        names.reverse();
        names.join(".")
    }

    /// Finds a CDO by dotted path.
    pub fn find_by_path(&self, path: &str) -> Option<CdoId> {
        let mut parts = path.split('.');
        let root_name = parts.next()?;
        let mut cur = *self
            .roots
            .iter()
            .find(|&&r| self.nodes[r.0].name == root_name)?;
        for part in parts {
            cur = *self.nodes[cur.0]
                .children
                .iter()
                .find(|&&c| self.nodes[c.0].name == part)?;
        }
        Some(cur)
    }

    /// Adds a property to a CDO.
    ///
    /// # Errors
    ///
    /// * [`DseError::DuplicateProperty`] if a property with the same name
    ///   is already visible at the CDO (declared here or inherited).
    /// * [`DseError::SecondGeneralizedIssue`] if the property is a
    ///   generalized issue and the CDO already declares one — a CDO may
    ///   contain **at most one** generalized design issue.
    pub fn add_property(&mut self, cdo: CdoId, property: Property) -> Result<(), DseError> {
        if self.find_property(cdo, property.name()).is_some() {
            return Err(DseError::DuplicateProperty(property.name().to_owned()));
        }
        if property.kind() == PropertyKind::GeneralizedIssue {
            if let Some(existing) = &self.nodes[cdo.0].generalized_issue {
                return Err(DseError::SecondGeneralizedIssue {
                    cdo: self.path_string(cdo),
                    existing: existing.clone(),
                });
            }
            self.nodes[cdo.0].generalized_issue = Some(property.name().to_owned());
        }
        self.nodes[cdo.0].properties.push(property);
        Ok(())
    }

    /// Adds a consistency constraint to a CDO, rejecting malformed ones.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::MalformedConstraint`] when the constraint's
    /// relation references properties outside its declared
    /// independent/dependent sets
    /// ([`ConsistencyConstraint::well_formed`] fails) — such a constraint
    /// could never become ready and would silently stop pruning. Use
    /// [`add_constraint_unchecked`](Self::add_constraint_unchecked) to
    /// store it anyway (e.g. to reproduce a defect for the analyzer).
    pub fn add_constraint(
        &mut self,
        cdo: CdoId,
        constraint: ConsistencyConstraint,
    ) -> Result<(), DseError> {
        if !constraint.well_formed() {
            // Clone only the names that turn out to be stray, not every
            // referenced name up front.
            let listed = |r: &str| {
                constraint.indep().iter().any(|p| p == r)
                    || constraint.dep().iter().any(|p| p == r)
            };
            let mut stray: Vec<String> = match constraint.relation() {
                crate::constraint::Relation::InconsistentOptions(p)
                | crate::constraint::Relation::Dominance(p) => {
                    p.references().into_iter().filter(|r| !listed(r)).collect()
                }
                crate::constraint::Relation::Quantitative {
                    target, formula, ..
                } => {
                    let mut refs: Vec<String> = formula
                        .references()
                        .into_iter()
                        .filter(|r| !listed(r))
                        .collect();
                    if !listed(target) {
                        refs.push(target.clone());
                    }
                    refs
                }
                crate::constraint::Relation::EstimatorContext { inputs, output, .. } => inputs
                    .iter()
                    .chain(std::iter::once(output))
                    .filter(|r| !listed(r))
                    .cloned()
                    .collect(),
            };
            stray.sort();
            stray.dedup();
            return Err(DseError::MalformedConstraint {
                constraint: constraint.name().to_owned(),
                stray,
            });
        }
        self.nodes[cdo.0].constraints.push(constraint);
        Ok(())
    }

    /// Adds a consistency constraint without the well-formedness check —
    /// the escape hatch for loading legacy layers or constructing defect
    /// fixtures for [`crate::analyze`].
    pub fn add_constraint_unchecked(&mut self, cdo: CdoId, constraint: ConsistencyConstraint) {
        self.nodes[cdo.0].constraints.push(constraint);
    }

    /// Attaches a behavioural description to a CDO.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::DanglingOperatorRef`] if the description's
    /// behavioural decomposition references a CDO path that does not exist
    /// in this space.
    pub fn add_behavior(
        &mut self,
        cdo: CdoId,
        behavior: BehavioralDescription,
    ) -> Result<(), DseError> {
        for op in behavior.decomposition() {
            if self.find_by_path(op.cdo_path()).is_none() {
                return Err(DseError::DanglingOperatorRef {
                    description: behavior.name().to_owned(),
                    path: op.cdo_path().to_owned(),
                });
            }
        }
        self.nodes[cdo.0].behaviors.push(behavior);
        Ok(())
    }

    /// Resolves a property by name at `cdo`, walking the inheritance chain
    /// (nearest declaration wins — though duplicates cannot be created
    /// through this API).
    pub fn find_property(&self, cdo: CdoId, name: &str) -> Option<(CdoId, &Property)> {
        for id in self.ancestry(cdo) {
            if let Some(p) = self.nodes[id.0]
                .properties
                .iter()
                .find(|p| p.name() == name)
            {
                return Some((id, p));
            }
        }
        None
    }

    /// The *effective* property set at `cdo`: everything declared here or
    /// at any ancestor, nearest first.
    pub fn effective_properties(&self, cdo: CdoId) -> Vec<(CdoId, &Property)> {
        let mut out = Vec::new();
        for id in self.ancestry(cdo) {
            for p in &self.nodes[id.0].properties {
                out.push((id, p));
            }
        }
        out
    }

    /// The effective constraint set at `cdo` (this node and ancestors).
    pub fn effective_constraints(&self, cdo: CdoId) -> Vec<(CdoId, &ConsistencyConstraint)> {
        let mut out = Vec::new();
        for id in self.ancestry(cdo) {
            for c in &self.nodes[id.0].constraints {
                out.push((id, c));
            }
        }
        out
    }

    /// Spawns one child CDO per option of `cdo`'s generalized issue
    /// `issue`, returning the new ids in option order. Options that were
    /// already spawned are returned rather than duplicated.
    ///
    /// # Errors
    ///
    /// * [`DseError::UnknownProperty`] if no such property is visible.
    /// * [`DseError::IssueNotDeclaredHere`] if the issue is declared at an
    ///   ancestor rather than at `cdo` itself (each specialization level
    ///   partitions its own design space region).
    /// * [`DseError::NotAGeneralizedIssue`] for a regular issue.
    /// * [`DseError::NonEnumerableDomain`] if the issue's domain is not a
    ///   finite option set.
    pub fn specialize(&mut self, cdo: CdoId, issue: &str) -> Result<Vec<CdoId>, DseError> {
        let (owner, prop) = self
            .find_property(cdo, issue)
            .ok_or_else(|| DseError::UnknownProperty(issue.to_owned()))?;
        if owner != cdo {
            return Err(DseError::IssueNotDeclaredHere {
                cdo: self.path_string(cdo),
                issue: issue.to_owned(),
            });
        }
        if prop.kind() != PropertyKind::GeneralizedIssue {
            return Err(DseError::NotAGeneralizedIssue(issue.to_owned()));
        }
        let options = prop
            .domain()
            .enumerate()
            .ok_or_else(|| DseError::NonEnumerableDomain(issue.to_owned()))?;

        let mut out = Vec::with_capacity(options.len());
        for option in options {
            out.push(self.specialize_option(cdo, issue, option)?);
        }
        Ok(out)
    }

    /// Spawns (or returns the existing) child CDO for one option of the
    /// generalized issue.
    ///
    /// # Errors
    ///
    /// Same conditions as [`specialize`](Self::specialize), plus
    /// [`DseError::ValueOutsideDomain`] when `option` is not one of the
    /// issue's options.
    pub fn specialize_option(
        &mut self,
        cdo: CdoId,
        issue: &str,
        option: Value,
    ) -> Result<CdoId, DseError> {
        let (owner, prop) = self
            .find_property(cdo, issue)
            .ok_or_else(|| DseError::UnknownProperty(issue.to_owned()))?;
        if owner != cdo {
            return Err(DseError::IssueNotDeclaredHere {
                cdo: self.path_string(cdo),
                issue: issue.to_owned(),
            });
        }
        if prop.kind() != PropertyKind::GeneralizedIssue {
            return Err(DseError::NotAGeneralizedIssue(issue.to_owned()));
        }
        if !prop.domain().contains(&option) {
            return Err(DseError::ValueOutsideDomain {
                property: issue.to_owned(),
                value: option,
            });
        }
        // Idempotency: reuse an already-spawned child for this option.
        if let Some(&existing) = self.nodes[cdo.0].children.iter().find(|&&c| {
            self.nodes[c.0]
                .spawned_by
                .as_ref()
                .is_some_and(|(i, v)| i == issue && v.matches(&option))
        }) {
            return Ok(existing);
        }
        let name = option.to_string();
        let doc = format!("{issue} = {option}");
        let id = self.push_node(name, doc, Some(cdo), Some((issue.to_owned(), option)));
        self.nodes[cdo.0].children.push(id);
        Ok(id)
    }

    /// The option bindings accumulated along the path from the root to
    /// `cdo` (one per generalized-issue specialization step).
    pub fn inherited_bindings(&self, cdo: CdoId) -> Vec<(String, Value)> {
        let mut out: Vec<(String, Value)> = self
            .ancestry(cdo)
            .iter()
            .filter_map(|&id| self.nodes[id.0].spawned_by.clone())
            .collect();
        out.reverse();
        out
    }

    /// Checks structural invariants, returning human-readable findings
    /// (empty = healthy). Invariants: parent/child links are mutual, every
    /// non-root has a parent, spawned children's issues exist, and no CDO
    /// has more than one generalized issue.
    pub fn validate(&self) -> Vec<String> {
        let mut findings = Vec::new();
        for (id, node) in self.iter() {
            for &c in &node.children {
                if self.nodes[c.0].parent != Some(id) {
                    findings.push(format!(
                        "child {} of {} does not point back to its parent",
                        self.path_string(c),
                        self.path_string(id)
                    ));
                }
            }
            if let Some((issue, _)) = &node.spawned_by {
                let parent = node.parent.expect("spawned node has a parent");
                if self.find_property(parent, issue).is_none() {
                    findings.push(format!(
                        "{} was spawned by unknown issue {issue:?}",
                        self.path_string(id)
                    ));
                }
            }
            let generalized = node
                .properties
                .iter()
                .filter(|p| p.kind() == PropertyKind::GeneralizedIssue)
                .count();
            if generalized > 1 {
                findings.push(format!(
                    "{} declares {generalized} generalized issues",
                    self.path_string(id)
                ));
            }
        }
        findings
    }
}

foundation::impl_json_newtype!(CdoId);
foundation::impl_json_struct!(CdoNode {
    name,
    doc,
    parent,
    children,
    properties,
    constraints,
    behaviors,
    spawned_by,
    generalized_issue,
});
foundation::impl_json_struct!(DesignSpace { name, nodes, roots });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Domain;

    fn small_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("test");
        let root = s.add_root("Multiplier", "modular multipliers");
        s.add_property(
            root,
            Property::requirement("EOL", Domain::int_range(1, 4096), None, "operand length"),
        )
        .unwrap();
        s.add_property(
            root,
            Property::generalized_issue(
                "ImplementationStyle",
                Domain::options(["Hardware", "Software"]),
                "partitions hw/sw",
            ),
        )
        .unwrap();
        (s, root)
    }

    #[test]
    fn specialize_spawns_one_child_per_option() {
        let (mut s, root) = small_space();
        let kids = s.specialize(root, "ImplementationStyle").unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(s.node(kids[0]).name(), "Hardware");
        assert_eq!(s.path_string(kids[1]), "Multiplier.Software");
        assert_eq!(
            s.node(kids[0]).spawned_by().unwrap().0,
            "ImplementationStyle"
        );
    }

    #[test]
    fn specialize_is_idempotent() {
        let (mut s, root) = small_space();
        let a = s.specialize(root, "ImplementationStyle").unwrap();
        let b = s.specialize(root, "ImplementationStyle").unwrap();
        assert_eq!(a, b);
        assert_eq!(s.node(root).children().len(), 2);
    }

    #[test]
    fn at_most_one_generalized_issue() {
        let (mut s, root) = small_space();
        let err = s
            .add_property(
                root,
                Property::generalized_issue("Algorithm", Domain::options(["M", "B"]), ""),
            )
            .unwrap_err();
        assert!(matches!(err, DseError::SecondGeneralizedIssue { .. }));
        // But a *child* may declare its own.
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        s.add_property(
            hw,
            Property::generalized_issue("Algorithm", Domain::options(["M", "B"]), ""),
        )
        .unwrap();
    }

    #[test]
    fn inheritance_resolves_to_nearest_ancestor() {
        let (mut s, root) = small_space();
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        // EOL is visible from the child, declared at the root.
        let (owner, p) = s.find_property(hw, "EOL").unwrap();
        assert_eq!(owner, root);
        assert_eq!(p.name(), "EOL");
        // Effective set includes both own and inherited.
        let eff = s.effective_properties(hw);
        assert!(eff.iter().any(|(_, p)| p.name() == "ImplementationStyle"));
    }

    #[test]
    fn duplicate_property_rejected_across_inheritance() {
        let (mut s, root) = small_space();
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        let err = s
            .add_property(hw, Property::issue("EOL", Domain::Any, "shadowing"))
            .unwrap_err();
        assert_eq!(err, DseError::DuplicateProperty("EOL".to_owned()));
    }

    #[test]
    fn specialize_requires_declaration_at_the_node() {
        let (mut s, root) = small_space();
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        // The issue is inherited at hw but declared at root.
        let err = s.specialize(hw, "ImplementationStyle").unwrap_err();
        assert!(matches!(err, DseError::IssueNotDeclaredHere { .. }));
    }

    #[test]
    fn specialize_rejects_regular_issue_and_bad_option() {
        let (mut s, root) = small_space();
        s.add_property(root, Property::issue("Radix", Domain::options([2, 4]), ""))
            .unwrap();
        assert!(matches!(
            s.specialize(root, "Radix").unwrap_err(),
            DseError::NotAGeneralizedIssue(_)
        ));
        assert!(matches!(
            s.specialize_option(root, "ImplementationStyle", Value::from("Analog"))
                .unwrap_err(),
            DseError::ValueOutsideDomain { .. }
        ));
        assert!(matches!(
            s.specialize(root, "Nope").unwrap_err(),
            DseError::UnknownProperty(_)
        ));
    }

    #[test]
    fn paths_roundtrip() {
        let (mut s, root) = small_space();
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        let path = s.path_string(hw);
        assert_eq!(path, "Multiplier.Hardware");
        assert_eq!(s.find_by_path(&path), Some(hw));
        assert_eq!(s.find_by_path("Multiplier"), Some(root));
        assert_eq!(s.find_by_path("Multiplier.Analog"), None);
        assert_eq!(s.find_by_path("Nope"), None);
    }

    #[test]
    fn inherited_bindings_accumulate_root_first() {
        let (mut s, root) = small_space();
        let hw = s.specialize(root, "ImplementationStyle").unwrap()[0];
        s.add_property(
            hw,
            Property::generalized_issue(
                "Algorithm",
                Domain::options(["Montgomery", "Brickell"]),
                "",
            ),
        )
        .unwrap();
        let mont = s
            .specialize_option(hw, "Algorithm", Value::from("Montgomery"))
            .unwrap();
        let bindings = s.inherited_bindings(mont);
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].0, "ImplementationStyle");
        assert_eq!(bindings[1].1, Value::from("Montgomery"));
    }

    #[test]
    fn leaves_and_iteration() {
        let (mut s, root) = small_space();
        let kids = s.specialize(root, "ImplementationStyle").unwrap();
        let leaves = s.leaves();
        assert_eq!(leaves.len(), 2);
        assert!(kids.iter().all(|k| leaves.contains(k)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn validate_passes_on_well_formed_space() {
        let (mut s, root) = small_space();
        s.specialize(root, "ImplementationStyle").unwrap();
        assert!(s.validate().is_empty());
    }

    #[test]
    fn taxonomic_children_carry_no_binding() {
        let mut s = DesignSpace::new("tax");
        let op = s.add_root("Operator", "");
        let arith = s.add_child(op, "Arithmetic", "");
        let adder = s.add_child(arith, "Adder", "");
        assert_eq!(s.path_string(adder), "Operator.Arithmetic.Adder");
        assert!(s.node(adder).spawned_by().is_none());
        assert!(s.inherited_bindings(adder).is_empty());
    }
}
