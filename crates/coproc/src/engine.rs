//! Multiplier engines: the coprocessor's pluggable modular-multiplier
//! block — the component the Section-5 exploration selects.

use bignum::{MontgomeryContext, UBig, LIMB_BITS};
use hwmodel::{sim, Algorithm, ModMulArchitecture};
use swmodel::{OpCounts, SoftwareRoutine};

use crate::error::CoprocError;

/// How an engine's raw multiplication behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `raw_mul(a, b) = a·b·2^(−shift) mod m` — a Montgomery engine; the
    /// exponentiator wraps it in domain conversions.
    Montgomery {
        /// The `R = 2^shift` exponent for the given modulus.
        shift: u32,
    },
    /// `raw_mul(a, b) = a·b mod m` directly (Brickell datapaths).
    Direct,
}

/// A modular-multiplier engine the coprocessor can be built around.
///
/// Engines are stateful: they accumulate cost counters (cycles, word
/// operations) across calls so a whole exponentiation can be priced.
pub trait ModMulEngine {
    /// Engine name for reports.
    fn name(&self) -> String;

    /// The engine's behaviour for modulus `m`.
    ///
    /// # Errors
    ///
    /// Returns an error if the modulus is unusable (e.g. even modulus on a
    /// Montgomery engine).
    fn kind(&self, m: &UBig) -> Result<EngineKind, CoprocError>;

    /// One raw multiplication (Montgomery product or direct product,
    /// per [`kind`](Self::kind)).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid moduli or unreduced operands.
    fn raw_mul(&mut self, a: &UBig, b: &UBig, m: &UBig) -> Result<UBig, CoprocError>;

    /// Total cost accumulated so far, as `(cycles, time_us)` where either
    /// may be zero if the engine does not track it.
    fn cost(&self) -> (u64, f64);

    /// Resets the cost counters.
    fn reset_cost(&mut self);
}

/// The `bignum` golden model (full-width REDC). Tracks no cost — it is
/// the correctness oracle.
#[derive(Debug, Default)]
pub struct ReferenceEngine {
    muls: u64,
}

impl ReferenceEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        ReferenceEngine::default()
    }
}

impl ModMulEngine for ReferenceEngine {
    fn name(&self) -> String {
        "bignum REDC reference".to_owned()
    }

    fn kind(&self, m: &UBig) -> Result<EngineKind, CoprocError> {
        let ctx = MontgomeryContext::new(m)?;
        Ok(EngineKind::Montgomery {
            shift: ctx.r_bits(),
        })
    }

    fn raw_mul(&mut self, a: &UBig, b: &UBig, m: &UBig) -> Result<UBig, CoprocError> {
        let ctx = MontgomeryContext::new(m)?;
        self.muls += 1;
        Ok(ctx.mont_mul(a, b))
    }

    fn cost(&self) -> (u64, f64) {
        (self.muls, 0.0)
    }

    fn reset_cost(&mut self) {
        self.muls = 0;
    }
}

/// A hardware engine: one of the modelled datapath architectures,
/// simulated cycle-accurately. Montgomery architectures report a
/// Montgomery kind; Brickell architectures multiply directly.
#[derive(Debug, Clone)]
pub struct HardwareEngine {
    arch: ModMulArchitecture,
    clock_ns: f64,
    cycles: u64,
}

impl HardwareEngine {
    /// Wraps an architecture; `clock_ns` prices the accumulated cycles
    /// (use the estimate from `hwmodel::estimate`).
    pub fn new(arch: ModMulArchitecture, clock_ns: f64) -> Self {
        HardwareEngine {
            arch,
            clock_ns,
            cycles: 0,
        }
    }

    /// The wrapped architecture.
    pub fn architecture(&self) -> &ModMulArchitecture {
        &self.arch
    }
}

impl ModMulEngine for HardwareEngine {
    fn name(&self) -> String {
        self.arch.to_string()
    }

    fn kind(&self, m: &UBig) -> Result<EngineKind, CoprocError> {
        match self.arch.algorithm() {
            Algorithm::Montgomery => {
                if m.is_even() {
                    return Err(CoprocError::InvalidModulus(
                        "montgomery datapaths require an odd modulus".to_owned(),
                    ));
                }
                let eol = sim::effective_eol(&self.arch, m);
                let shift = self.arch.digit_bits() * self.arch.iterations(eol) as u32;
                Ok(EngineKind::Montgomery { shift })
            }
            Algorithm::Brickell => Ok(EngineKind::Direct),
        }
    }

    fn raw_mul(&mut self, a: &UBig, b: &UBig, m: &UBig) -> Result<UBig, CoprocError> {
        let out = sim::simulate(&self.arch, a, b, m)?;
        self.cycles += out.cycles;
        Ok(out.product)
    }

    fn cost(&self) -> (u64, f64) {
        (self.cycles, self.cycles as f64 * self.clock_ns / 1000.0)
    }

    fn reset_cost(&mut self) {
        self.cycles = 0;
    }
}

/// A software engine: a Koç variant on a processor model, with operation
/// counts and estimated time accumulated across calls.
#[derive(Debug, Clone)]
pub struct SoftwareEngine {
    routine: SoftwareRoutine,
    counts: OpCounts,
    time_us: f64,
}

impl SoftwareEngine {
    /// Wraps a routine.
    pub fn new(routine: SoftwareRoutine) -> Self {
        SoftwareEngine {
            routine,
            counts: OpCounts::new(),
            time_us: 0.0,
        }
    }

    /// Accumulated operation counts.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }
}

impl ModMulEngine for SoftwareEngine {
    fn name(&self) -> String {
        self.routine.label()
    }

    fn kind(&self, m: &UBig) -> Result<EngineKind, CoprocError> {
        if m.is_even() {
            return Err(CoprocError::InvalidModulus(
                "software montgomery variants require an odd modulus".to_owned(),
            ));
        }
        Ok(EngineKind::Montgomery {
            shift: m.limb_len() as u32 * LIMB_BITS,
        })
    }

    fn raw_mul(&mut self, a: &UBig, b: &UBig, m: &UBig) -> Result<UBig, CoprocError> {
        let report = self.routine.profile_mont_mul(a, b, m)?;
        self.counts += report.counts;
        self.time_us += report.time_us;
        Ok(report.result)
    }

    fn cost(&self) -> (u64, f64) {
        (self.counts.total(), self.time_us)
    }

    fn reset_cost(&mut self) {
        self.counts = OpCounts::new();
        self.time_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwmodel::paper_designs;
    use swmodel::{MontgomeryVariant, ProcessorModel};

    #[test]
    fn reference_engine_is_montgomery_kind() {
        let eng = ReferenceEngine::new();
        let m = UBig::from(101u64);
        assert!(matches!(
            eng.kind(&m).unwrap(),
            EngineKind::Montgomery { shift: 7 }
        ));
        assert!(eng.kind(&UBig::from(100u64)).is_err());
    }

    #[test]
    fn hardware_engine_kinds_follow_the_algorithm() {
        let mont = paper_designs()[1].architecture(8).unwrap();
        let brick = paper_designs()[7].architecture(8).unwrap();
        let m = UBig::from(251u64);
        let em = HardwareEngine::new(mont, 3.0);
        let eb = HardwareEngine::new(brick, 4.0);
        assert!(matches!(
            em.kind(&m).unwrap(),
            EngineKind::Montgomery { .. }
        ));
        assert_eq!(eb.kind(&m).unwrap(), EngineKind::Direct);
        // Brickell accepts even moduli; Montgomery does not.
        assert!(em.kind(&UBig::from(250u64)).is_err());
        assert!(eb.kind(&UBig::from(250u64)).is_ok());
    }

    #[test]
    fn hardware_engine_accumulates_cycles() {
        let arch = paper_designs()[1].architecture(8).unwrap();
        let mut eng = HardwareEngine::new(arch, 3.0);
        let m = UBig::from(251u64);
        eng.raw_mul(&UBig::from(200u64), &UBig::from(100u64), &m)
            .unwrap();
        let (cycles1, us1) = eng.cost();
        assert!(cycles1 > 0 && us1 > 0.0);
        eng.raw_mul(&UBig::from(5u64), &UBig::from(6u64), &m)
            .unwrap();
        assert!(eng.cost().0 > cycles1);
        eng.reset_cost();
        assert_eq!(eng.cost(), (0, 0.0));
    }

    #[test]
    fn software_engine_accumulates_time() {
        let routine =
            SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_asm());
        let mut eng = SoftwareEngine::new(routine);
        let m = UBig::from(0xFFFF_FFB1u64);
        eng.raw_mul(&UBig::from(1234u64), &UBig::from(4321u64), &m)
            .unwrap();
        let (ops, us) = eng.cost();
        assert!(ops > 0 && us > 0.0);
        assert!(eng.counts().mul > 0);
    }
}
