//! The paper's Section-5 case study, end to end: explore the cryptography
//! layer against the Koç coprocessor requirements, select a modular
//! multiplier core, and run an RSA-style workload through the selected
//! datapath's cycle-accurate model.
//!
//! ```text
//! cargo run --example crypto_coprocessor
//! ```

use design_space_layer::bignum::uniform_below;
use design_space_layer::coproc::engine::HardwareEngine;
use design_space_layer::coproc::spec::KocSpec;
use design_space_layer::coproc::walkthrough::{self, architecture_from_core};
use design_space_layer::coproc::{rsa, ModExp};
use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::techlib::Technology;
use foundation::rng::{SeedableRng, StdRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = KocSpec::paper();
    let tech = Technology::g10_035();
    println!(
        "spec: EOL = {} bits, modmul latency <= {} us, modulus odd guaranteed: {}\n",
        spec.eol, spec.max_latency_us, spec.modulo_odd_guaranteed
    );

    // 1. The constraint-driven exploration (Fig. 13 in action).
    let report = walkthrough::run(&spec, &tech)?;
    println!("pruning trace:");
    for step in &report.steps {
        println!(
            "  {:<42} -> {:>3} cores surviving",
            step.action, step.surviving
        );
    }

    let selected = report
        .selected
        .as_ref()
        .expect("the paper's spec is satisfiable");
    println!(
        "\nselected core: {} (area {:.0} um^2, one modmul {:.2} us, verified: {})",
        selected.name(),
        selected.merit_value(&FigureOfMerit::AreaUm2).unwrap_or(0.0),
        selected.merit_value(&FigureOfMerit::TimeUs).unwrap_or(0.0),
        report.functionally_verified,
    );
    if let Some(t) = report.modexp_projection_us {
        println!(
            "projected 768-bit modular exponentiation: {:.2} ms",
            t / 1000.0
        );
    }

    // 2. Run a real workload through the selected datapath (scaled-down
    //    key so the bit-level simulation stays quick).
    let arch = architecture_from_core(selected).expect("hardware core");
    let clock = selected
        .merit_value(&FigureOfMerit::ClockNs)
        .expect("clock recorded");
    let mut rng = StdRng::seed_from_u64(7);
    let keys = rsa::generate_keys(64, &mut rng);
    let message = uniform_below(&keys.n, &mut rng);

    let ct = rsa::encrypt(HardwareEngine::new(arch.clone(), clock), &keys, &message)?;
    let mut decryptor = ModExp::new(HardwareEngine::new(arch, clock));
    let rep = decryptor.mod_pow_report(&ct, &keys.d, &keys.n)?;
    assert_eq!(rep.result, message, "RSA roundtrip through the datapath");

    println!(
        "\nRSA demo on the selected datapath (64-bit toy key):\n  \
         ciphertext = 0x{ct:x}\n  \
         decryption: {} modmuls, {} datapath cycles, {:.2} us at {clock:.2} ns/cycle",
        rep.multiplications, rep.cycles, rep.time_us
    );
    println!("  plaintext recovered: 0x{:x}", rep.result);

    // 3. Cross-check with the bignum reference.
    assert_eq!(
        message.mod_pow(&keys.e, &keys.n),
        ct,
        "hardware encryption matches the golden model"
    );
    println!("\nhardware results match the bignum golden model — selection is sound.");
    Ok(())
}
