//! The reuse library: a named collection of cores with persistence.

use std::fmt;
use std::fs;
use std::path::Path;


use crate::core_record::CoreRecord;

/// Errors from loading/saving a reuse library.
#[derive(Debug)]
#[non_exhaustive]
pub enum LibraryError {
    /// File I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Format(foundation::json::JsonError),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::Io(e) => write!(f, "library file error: {e}"),
            LibraryError::Format(e) => write!(f, "library format error: {e}"),
        }
    }
}

impl std::error::Error for LibraryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibraryError::Io(e) => Some(e),
            LibraryError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for LibraryError {
    fn from(e: std::io::Error) -> Self {
        LibraryError::Io(e)
    }
}

impl From<foundation::json::JsonError> for LibraryError {
    fn from(e: foundation::json::JsonError) -> Self {
        LibraryError::Format(e)
    }
}

/// A reuse library: the design-data store the layer indexes into.
///
/// Multiple libraries (from different IP providers) can back one layer —
/// [`crate::Explorer`] accepts any number of them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseLibrary {
    name: String,
    cores: Vec<CoreRecord>,
}

impl ReuseLibrary {
    /// An empty library.
    pub fn new(name: impl Into<String>) -> Self {
        ReuseLibrary {
            name: name.into(),
            cores: Vec::new(),
        }
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a core.
    pub fn push(&mut self, core: CoreRecord) {
        self.cores.push(core);
    }

    /// The cores.
    pub fn cores(&self) -> &[CoreRecord] {
        &self.cores
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Finds a core by name.
    pub fn find(&self, name: &str) -> Option<&CoreRecord> {
        self.cores.iter().find(|c| c.name() == name)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a format error if serialization fails.
    pub fn to_json(&self) -> Result<String, LibraryError> {
        Ok(foundation::json::encode_pretty(self))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a format error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, LibraryError> {
        Ok(foundation::json::decode(json)?)
    }

    /// Saves to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns I/O or format errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LibraryError> {
        fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns I/O or format errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, LibraryError> {
        Self::from_json(&fs::read_to_string(path)?)
    }
}

impl Extend<CoreRecord> for ReuseLibrary {
    fn extend<T: IntoIterator<Item = CoreRecord>>(&mut self, iter: T) {
        self.cores.extend(iter);
    }
}

foundation::impl_json_struct!(ReuseLibrary { name, cores });

#[cfg(test)]
mod tests {
    use super::*;
    use dse::eval::FigureOfMerit;

    fn sample() -> ReuseLibrary {
        let mut lib = ReuseLibrary::new("test-lib");
        lib.push(
            CoreRecord::new("#1_8", "in-house", "")
                .bind("Algorithm", "Montgomery")
                .merit(FigureOfMerit::AreaUm2, 5436.0),
        );
        lib.push(CoreRecord::new("CIHS ASM", "koc", "").bind("ImplementationStyle", "Software"));
        lib
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let lib = sample();
        let json = lib.to_json().unwrap();
        let back = ReuseLibrary::from_json(&json).unwrap();
        assert_eq!(lib, back);
    }

    #[test]
    fn file_roundtrip() {
        let lib = sample();
        let path = std::env::temp_dir().join("dse_library_test.json");
        lib.save(&path).unwrap();
        let back = ReuseLibrary::load(&path).unwrap();
        assert_eq!(lib, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn find_by_name() {
        let lib = sample();
        assert!(lib.find("#1_8").is_some());
        assert!(lib.find("#9_8").is_none());
        assert_eq!(lib.len(), 2);
        assert!(!lib.is_empty());
    }

    #[test]
    fn malformed_json_errors() {
        assert!(matches!(
            ReuseLibrary::from_json("{nope").unwrap_err(),
            LibraryError::Format(_)
        ));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            ReuseLibrary::load("/definitely/not/here.json").unwrap_err(),
            LibraryError::Io(_)
        ));
    }
}
