//! The IDCT design space layer — the paper's motivating example
//! (Figs. 2–4).
//!
//! Five IDCT hard cores populate the reuse library. The paper's point:
//! organising their design space strictly by abstraction level (Fig. 2)
//! scatters evaluation-space neighbours across the organisation, while a
//! generalization/specialization hierarchy built on evaluation-space
//! proximity (Fig. 3) clusters designs 1, 2, 5 (older 0.7 µm technology:
//! large and slow) apart from designs 3, 4 (0.35 µm: small and fast) —
//! even though e.g. designs 1 and 4 implement the *same* algorithm.
//!
//! [`build_layer_generalization`] puts the high-impact issue
//! (fabrication technology) first; [`build_layer_abstraction`] organises
//! by algorithm first, mimicking the abstraction-driven layout. The
//! Fig. 3 experiment compares the evaluation-space coherence of the two
//! groupings.

use dse::error::DseError;
use dse::eval::FigureOfMerit;
use dse::hierarchy::{CdoId, DesignSpace};
use dse::property::{Property, Unit};
use dse::value::{Domain, Value};
use techlib::{FabricationNode, LayoutStyle, Technology};

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// Gate-equivalent and τ budgets per IDCT algorithm (structural size of
/// an 8×8 2-D IDCT datapath and its per-block latency).
fn algorithm_budget(algorithm: &str) -> (f64, f64) {
    match algorithm {
        "Chen" => (8_500.0, 820.0),
        "Lee" => (7_000.0, 940.0),
        "Loeffler" => (6_200.0, 1_020.0),
        other => panic!("unknown IDCT algorithm {other:?}"),
    }
}

/// The five IDCT cores of Fig. 2, with figures derived from the
/// technology substrate. Designs 1, 2, 5 are 0.7 µm; 3, 4 are 0.35 µm;
/// designs 1 and 4 share the Chen algorithm (the paper's pointed example).
pub fn idct_cores() -> Vec<CoreRecord> {
    let spec: [(&str, &str, u32); 5] = [
        ("IDCT 1", "Chen", 700),
        ("IDCT 2", "Lee", 700),
        ("IDCT 3", "Loeffler", 350),
        ("IDCT 4", "Chen", 350),
        ("IDCT 5", "Loeffler", 700),
    ];
    spec.into_iter()
        .map(|(name, algorithm, feature)| {
            let tech = Technology::new(FabricationNode::scaled(feature), LayoutStyle::StandardCell);
            let (ge, tau) = algorithm_budget(algorithm);
            CoreRecord::new(name, "third-party", format!("{algorithm} 8x8 IDCT"))
                .bind("ImplementationStyle", "Hardware")
                .bind("Algorithm", algorithm)
                .bind("FabricationTechnology", tech.node().name())
                .bind("LayoutStyle", tech.layout().to_string())
                .merit(FigureOfMerit::AreaUm2, tech.ge_to_um2(ge))
                .merit(FigureOfMerit::DelayNs, tech.tau_to_ns(tau))
        })
        .collect()
}

/// The IDCT reuse library.
pub fn build_library() -> ReuseLibrary {
    let mut lib = ReuseLibrary::new("idct cores");
    lib.extend(idct_cores());
    lib
}

/// A built IDCT layer with handles to the interesting CDOs.
#[derive(Debug, Clone)]
pub struct IdctLayer {
    /// The layer.
    pub space: DesignSpace,
    /// The root IDCT CDO.
    pub idct: CdoId,
    /// The hardware sub-class.
    pub hardware: CdoId,
    /// The children spawned by the hardware class's generalized issue.
    pub families: Vec<CdoId>,
}

fn base_layer(name: &str) -> Result<(DesignSpace, CdoId, CdoId), DseError> {
    let mut s = DesignSpace::new(name);
    let idct = s.add_root("IDCT", "inverse discrete cosine transform blocks");
    s.add_property(
        idct,
        Property::requirement(
            "WordSize",
            Domain::int_range(8, 32),
            Some(Unit::bits()),
            "sample width",
        ),
    )?;
    s.add_property(
        idct,
        Property::requirement(
            "Precision",
            Domain::int_range(8, 16),
            Some(Unit::bits()),
            "arithmetic precision",
        ),
    )?;
    s.add_property(
        idct,
        Property::generalized_issue(
            "ImplementationStyle",
            Domain::options(["Hardware", "Software"]),
            "Fig. 4: hardware vs software families",
        ),
    )?;
    let kids = s.specialize(idct, "ImplementationStyle")?;
    Ok((s, idct, kids[0]))
}

/// The generalization-based organisation (Fig. 3 / Fig. 4): under
/// Hardware, the *fabrication technology* — the issue with the dominant
/// impact on the figures of merit — is the generalized issue.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn build_layer_generalization() -> Result<IdctLayer, DseError> {
    let (mut s, idct, hardware) = base_layer("idct-generalization")?;
    s.add_property(
        hardware,
        Property::generalized_issue(
            "FabricationTechnology",
            Domain::options(["0.70um", "0.35um"]),
            "dominant area/delay lever: partitions the families",
        ),
    )?;
    let families = s.specialize(hardware, "FabricationTechnology")?;
    s.add_property(
        hardware,
        Property::issue(
            "Algorithm",
            Domain::options(["Chen", "Lee", "Loeffler"]),
            "IDCT algorithm (finer trade-off within a family)",
        ),
    )?;
    Ok(IdctLayer {
        space: s,
        idct,
        hardware,
        families,
    })
}

/// The abstraction-based organisation (Fig. 2): under Hardware, the
/// *algorithm* (the highest abstraction level) is the generalized issue —
/// which scatters evaluation-space neighbours.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn build_layer_abstraction() -> Result<IdctLayer, DseError> {
    let (mut s, idct, hardware) = base_layer("idct-abstraction")?;
    s.add_property(
        hardware,
        Property::generalized_issue(
            "Algorithm",
            Domain::options(["Chen", "Lee", "Loeffler"]),
            "algorithm-level organisation (abstraction-first)",
        ),
    )?;
    let families = s.specialize(hardware, "Algorithm")?;
    s.add_property(
        hardware,
        Property::issue(
            "FabricationTechnology",
            Domain::options(["0.70um", "0.35um"]),
            "technology, considered only below the algorithm split",
        ),
    )?;
    Ok(IdctLayer {
        space: s,
        idct,
        hardware,
        families,
    })
}

/// Groups core indices by the option each core binds for the layer's
/// hardware-level generalized issue — i.e. the families the organisation
/// defines. Cores that do not bind the issue are skipped.
pub fn family_grouping(layer: &IdctLayer, cores: &[CoreRecord]) -> Vec<Vec<usize>> {
    let issue = layer
        .space
        .node(layer.hardware)
        .generalized_issue()
        .expect("idct hardware class has a generalized issue");
    let mut groups: Vec<(Value, Vec<usize>)> = Vec::new();
    for (i, core) in cores.iter().enumerate() {
        let Some(v) = core.binding(issue) else {
            continue;
        };
        match groups.iter_mut().find(|(g, _)| g.matches(v)) {
            Some((_, members)) => members.push(i),
            None => groups.push((v.clone(), vec![i])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::eval::EvaluationSpace;

    #[test]
    fn five_cores_with_technology_scaled_figures() {
        let cores = idct_cores();
        assert_eq!(cores.len(), 5);
        // 0.7 µm cores are roughly 4x the area of their 0.35 µm siblings.
        let chen07 = cores[0].merit_value(&FigureOfMerit::AreaUm2).unwrap();
        let chen035 = cores[3].merit_value(&FigureOfMerit::AreaUm2).unwrap();
        assert!((chen07 / chen035 - 4.0).abs() < 0.01);
        // Designs 1 and 4 share the algorithm but not the family.
        assert_eq!(cores[0].binding("Algorithm"), cores[3].binding("Algorithm"));
        assert_ne!(
            cores[0].binding("FabricationTechnology"),
            cores[3].binding("FabricationTechnology")
        );
    }

    #[test]
    fn generalization_grouping_matches_fig3_clusters() {
        let layer = build_layer_generalization().unwrap();
        let cores = idct_cores();
        let groups = family_grouping(&layer, &cores);
        assert_eq!(groups.len(), 2);
        // {1,2,5} = indices 0,1,4 and {3,4} = indices 2,3.
        let mut sorted: Vec<Vec<usize>> = groups.clone();
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 1, 4], vec![2, 3]]);
    }

    #[test]
    fn abstraction_grouping_scatters_the_clusters() {
        let layer = build_layer_abstraction().unwrap();
        let cores = idct_cores();
        let groups = family_grouping(&layer, &cores);
        assert_eq!(groups.len(), 3); // Chen, Lee, Loeffler
                                     // The Chen group mixes a 0.7 µm and a 0.35 µm core.
        let chen: Vec<usize> = groups.iter().find(|g| g.contains(&0)).cloned().unwrap();
        assert!(chen.contains(&3));
    }

    #[test]
    fn generalization_beats_abstraction_on_coherence() {
        // The quantitative form of the Fig. 2-vs-Fig. 3 argument.
        let cores = idct_cores();
        let space: EvaluationSpace = cores.iter().map(|c| c.eval_point()).collect();
        let merits = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];

        let gen = build_layer_generalization().unwrap();
        let abs = build_layer_abstraction().unwrap();
        let coherence_gen = space.partition_coherence(&merits, &family_grouping(&gen, &cores));
        let coherence_abs = space.partition_coherence(&merits, &family_grouping(&abs, &cores));
        assert!(
            coherence_gen > coherence_abs + 0.2,
            "generalization {coherence_gen} vs abstraction {coherence_abs}"
        );
        assert!(coherence_gen > 0.5);
    }

    #[test]
    fn library_wraps_the_cores() {
        let lib = build_library();
        assert_eq!(lib.len(), 5);
        assert!(lib.find("IDCT 4").is_some());
    }

    #[test]
    #[should_panic(expected = "unknown IDCT algorithm")]
    fn unknown_algorithm_panics() {
        let _ = algorithm_budget("Winograd");
    }
}
