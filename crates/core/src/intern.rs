//! Interned property/merit/option names.
//!
//! Hot maps on the decide/estimate path (session bindings, estimate
//! tables, merit coordinates) used to be keyed by `String`: every insert
//! cloned the name, every structure clone re-cloned all of them. A
//! [`Symbol`] is a 16-byte `Copy` handle — a dense `u32` id plus a
//! pointer to the canonical, leaked-once string — so inserting, cloning
//! and snapshotting bindings never allocates for the key again.
//!
//! Design invariants:
//!
//! * **Interning is a bijection**: equal names ⇔ equal ids, so equality
//!   is a single integer compare.
//! * **Ordering is by name** (with an id fast path for the equal case),
//!   so `BTreeMap<Symbol, _>` iterates in exactly the order the old
//!   `BTreeMap<String, _>` did — serialized output and report ordering
//!   are byte-identical before and after the conversion.
//! * `Symbol: Borrow<str>` with name-based `Ord`/`Hash`/`Eq`
//!   consistency, so symbol-keyed maps are **queried by `&str` without
//!   touching the interner** (no lock, no allocation on lookup).
//! * The table only grows (names are leaked on first intern). Layers
//!   declare a bounded vocabulary of property/option names, so this is
//!   a few kilobytes per process, not a leak in practice.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

use foundation::json::{FromJson, Json, JsonError, ToJson};

/// An interned name: equality by id, ordering by the resolved string.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    name: &'static str,
}

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical symbol. The first intern
    /// of a name takes a write lock and leaks one copy of the string;
    /// every later intern is a read-locked table hit.
    pub fn intern(name: &str) -> Symbol {
        if let Some(sym) = Symbol::lookup(name) {
            return sym;
        }
        let mut table = interner().write().unwrap();
        // Re-check under the write lock: another thread may have raced us.
        if let Some(&id) = table.by_name.get(name) {
            return Symbol {
                id,
                name: table.names[id as usize],
            };
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(table.names.len()).expect("interner overflow");
        table.names.push(leaked);
        table.by_name.insert(leaked, id);
        Symbol { id, name: leaked }
    }

    /// The symbol for `name` if it was interned before; never interns.
    pub fn lookup(name: &str) -> Option<Symbol> {
        let table = interner().read().unwrap();
        table.by_name.get(name).map(|&id| Symbol {
            id,
            name: table.names[id as usize],
        })
    }

    /// The canonical string — lock-free.
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// The dense id (stable for the life of the process).
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> Ordering {
        if self.id == other.id {
            Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}

// Hash by name, not id, so `Borrow<str>` keeps the owned/borrowed
// Eq/Ord/Hash triple consistent (required for map lookups by `&str`).
impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.name
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.name)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<&String> for Symbol {
    fn from(name: &String) -> Symbol {
        Symbol::intern(name)
    }
}

impl From<String> for Symbol {
    fn from(name: String) -> Symbol {
        Symbol::intern(&name)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.name == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.name == *other
    }
}

impl ToJson for Symbol {
    fn to_json(&self) -> Json {
        Json::Str(self.name.to_owned())
    }
}

impl FromJson for Symbol {
    fn from_json(v: &Json) -> Result<Symbol, JsonError> {
        match v {
            Json::Str(s) => Ok(Symbol::intern(s)),
            other => Err(JsonError::type_mismatch("Symbol", "string", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn interning_is_a_bijection() {
        let a = Symbol::intern("EOL");
        let b = Symbol::intern("EOL");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "EOL");
        assert_ne!(a, Symbol::intern("Radix"));
    }

    #[test]
    fn ordering_matches_string_ordering() {
        let mut names = vec!["Radix", "EOL", "Algorithm", "Adder"];
        let mut syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        names.sort_unstable();
        syms.sort_unstable();
        let resolved: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(resolved, names);
    }

    #[test]
    fn btreemap_supports_str_lookup() {
        let mut m: BTreeMap<Symbol, i32> = BTreeMap::new();
        m.insert(Symbol::intern("EOL"), 768);
        assert_eq!(m.get("EOL"), Some(&768));
        assert_eq!(m.get("Radix"), None);
        // Iteration order is by name, exactly as a String-keyed map.
        m.insert(Symbol::intern("Algorithm"), 1);
        let keys: Vec<&str> = m.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["Algorithm", "EOL"]);
    }

    #[test]
    fn lookup_never_interns() {
        assert!(Symbol::lookup("never-mentioned-anywhere-else").is_none());
        let s = Symbol::intern("mentioned-once");
        assert_eq!(Symbol::lookup("mentioned-once"), Some(s));
    }

    #[test]
    fn json_round_trip_is_a_plain_string() {
        let s = Symbol::intern("AreaUm2");
        assert_eq!(s.to_json(), Json::Str("AreaUm2".to_owned()));
        assert_eq!(Symbol::from_json(&Json::Str("AreaUm2".into())).unwrap(), s);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("racy-name").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
