//! Persistence and self-documentation: layers and libraries are data that
//! design environments exchange (the paper's Fig. 1 logical organisation),
//! so both must round-trip losslessly.

use design_space_layer::dse::hierarchy::DesignSpace;
use design_space_layer::dse_library::{crypto, idct, ReuseLibrary};
use design_space_layer::techlib::Technology;

/// Libraries round-trip structurally; figures of merit may differ by one
/// ULP through the decimal representation, so compare with tolerance.
fn assert_libraries_equivalent(a: &ReuseLibrary, b: &ReuseLibrary) {
    assert_eq!(a.name(), b.name());
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.cores().iter().zip(b.cores()) {
        assert_eq!(ca.name(), cb.name());
        assert_eq!(ca.bindings(), cb.bindings());
        assert_eq!(ca.merits().len(), cb.merits().len());
        for ((ma, va), (mb, vb)) in ca.merits().iter().zip(cb.merits()) {
            assert_eq!(ma, mb);
            let rel = (va - vb).abs() / va.abs().max(1e-12);
            assert!(rel < 1e-12, "{} {ma:?}: {va} vs {vb}", ca.name());
        }
    }
}

#[test]
fn crypto_library_roundtrips_through_json() {
    let lib = crypto::build_library(&Technology::g10_035(), 768);
    let json = lib.to_json().unwrap();
    let back = ReuseLibrary::from_json(&json).unwrap();
    assert_libraries_equivalent(&lib, &back);
    assert_eq!(back.len(), 60);
}

#[test]
fn crypto_layer_roundtrips_through_json() {
    let layer = crypto::build_layer().unwrap();
    let json = foundation::json::encode(&layer.space);
    let back: DesignSpace = foundation::json::decode(&json).unwrap();
    assert_eq!(layer.space, back);
    // The restored layer is structurally sound and navigable.
    assert!(back.validate().is_empty());
    assert_eq!(
        back.find_by_path("Operator.Modular.Multiplier.Hardware.Montgomery"),
        Some(layer.omm_hm)
    );
}

#[test]
fn idct_layers_roundtrip_and_stay_distinct() {
    let gen = idct::build_layer_generalization().unwrap();
    let abs = idct::build_layer_abstraction().unwrap();
    let gen_json = foundation::json::encode(&gen.space);
    let abs_json = foundation::json::encode(&abs.space);
    assert_ne!(gen_json, abs_json, "the two organisations differ");
    let gen_back: DesignSpace = foundation::json::decode(&gen_json).unwrap();
    assert_eq!(gen.space, gen_back);
}

#[test]
fn file_roundtrip_of_the_full_library() {
    let lib = crypto::build_library(&Technology::g10_035(), 1024);
    let path = std::env::temp_dir().join("dsl_crypto_lib_1024.json");
    lib.save(&path).unwrap();
    let back = ReuseLibrary::load(&path).unwrap();
    assert_libraries_equivalent(&lib, &back);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn self_documentation_covers_the_whole_layer() {
    let layer = crypto::build_layer().unwrap();
    let md = design_space_layer::dse::doc::render_markdown(&layer.space);
    // Every CDO name appears.
    for (_, node) in layer.space.iter() {
        assert!(md.contains(node.name()), "{} missing", node.name());
    }
    // Every constraint appears by name.
    for cc in ["CC1", "CC2", "CC3", "CC4", "CC5", "CC6"] {
        assert!(md.contains(cc), "{cc} missing");
    }
    // The behavioural description's pseudo-code appears.
    assert!(md.contains("R := (Ai*B + R + Qi*M) div r;"));
}
