//! The crate-wide error type.

use std::fmt;

use crate::value::Value;

/// Errors raised while building or exploring a design space layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// A CDO id does not belong to this design space.
    UnknownCdo(String),
    /// No property with this name is visible at the given CDO.
    UnknownProperty(String),
    /// A property with this name already exists at the CDO or an ancestor.
    DuplicateProperty(String),
    /// The CDO already has a generalized design issue (at most one allowed).
    SecondGeneralizedIssue {
        /// Path of the offending CDO.
        cdo: String,
        /// The already-declared generalized issue.
        existing: String,
    },
    /// The named property is not a (generalized) design issue.
    NotADesignIssue(String),
    /// The named property is not a generalized design issue.
    NotAGeneralizedIssue(String),
    /// A generalized issue can only be specialized from the CDO that
    /// declares it.
    IssueNotDeclaredHere {
        /// Path of the CDO being specialized.
        cdo: String,
        /// The issue's name.
        issue: String,
    },
    /// The value is not one of the property's options / not in its domain.
    ValueOutsideDomain {
        /// The property's name.
        property: String,
        /// The rejected value.
        value: Value,
    },
    /// The generalized issue's domain is not a finite option set.
    NonEnumerableDomain(String),
    /// The decision would violate a consistency constraint.
    ConstraintViolation {
        /// The violated constraint's name.
        constraint: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// Tried to decide a dependent property before its independents.
    DependencyNotReady {
        /// The ordering constraint.
        constraint: String,
        /// The undecided independent property.
        missing: String,
    },
    /// This property has already been decided; undo or revise instead.
    AlreadyDecided(String),
    /// The generalized issue's option has no spawned child CDO to descend
    /// into (the layer author never called `specialize`).
    OptionNotSpecialized {
        /// The generalized issue's name.
        issue: String,
        /// The undeclared option.
        option: Value,
    },
    /// Nothing to undo.
    NothingToUndo,
    /// A requirement was set through `decide`, or an issue through
    /// `set_requirement`.
    WrongPropertyKind {
        /// The property's name.
        property: String,
        /// The kind the operation needed.
        expected: &'static str,
    },
    /// An expression failed to evaluate.
    Expr(crate::expr::ExprError),
    /// A behavioural decomposition references a CDO path that does not
    /// exist in the space.
    DanglingOperatorRef {
        /// The behavioural description's name.
        description: String,
        /// The missing CDO path.
        path: String,
    },
    /// The constraint's relation references properties outside its
    /// declared independent/dependent sets
    /// (`ConsistencyConstraint::well_formed` fails).
    MalformedConstraint {
        /// The rejected constraint's name.
        constraint: String,
        /// The references not covered by the declared sets.
        stray: Vec<String>,
    },
    /// The static analyzer rejected the design space (it reported at
    /// least one error-severity diagnostic).
    SpaceRejected {
        /// The space's name.
        space: String,
        /// Rendered summary of the error diagnostics.
        detail: String,
    },
    /// A constraint's relation failed to evaluate (type mismatch,
    /// division by zero, non-finite arithmetic) even though its
    /// independents were bound — the decision that exposed it is rolled
    /// back.
    EvaluationFailed {
        /// The failing constraint's name.
        constraint: String,
        /// The evaluation error's rendering.
        detail: String,
    },
    /// An estimation tool failed terminally.
    Estimate(crate::estimate::EstimateError),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::UnknownCdo(name) => write!(f, "unknown class of design objects {name:?}"),
            DseError::UnknownProperty(name) => write!(f, "unknown property {name:?}"),
            DseError::DuplicateProperty(name) => {
                write!(f, "property {name:?} already exists in the inheritance chain")
            }
            DseError::SecondGeneralizedIssue { cdo, existing } => write!(
                f,
                "{cdo} already has generalized design issue {existing:?}; a CDO may have at most one"
            ),
            DseError::NotADesignIssue(name) => write!(f, "property {name:?} is not a design issue"),
            DseError::NotAGeneralizedIssue(name) => {
                write!(f, "property {name:?} is not a generalized design issue")
            }
            DseError::IssueNotDeclaredHere { cdo, issue } => {
                write!(f, "issue {issue:?} is not declared at {cdo}")
            }
            DseError::ValueOutsideDomain { property, value } => {
                write!(f, "value {value} is outside the domain of {property:?}")
            }
            DseError::NonEnumerableDomain(name) => write!(
                f,
                "generalized issue {name:?} needs a finite option set to spawn child classes"
            ),
            DseError::ConstraintViolation { constraint, detail } => {
                write!(f, "consistency constraint {constraint:?} violated: {detail}")
            }
            DseError::DependencyNotReady { constraint, missing } => write!(
                f,
                "constraint {constraint:?} orders {missing:?} before this decision; decide it first"
            ),
            DseError::AlreadyDecided(name) => {
                write!(f, "property {name:?} is already decided; undo or revise it")
            }
            DseError::NothingToUndo => write!(f, "decision log is empty"),
            DseError::OptionNotSpecialized { issue, option } => write!(
                f,
                "option {option} of generalized issue {issue:?} has no spawned child class"
            ),
            DseError::WrongPropertyKind { property, expected } => {
                write!(f, "property {property:?} is not a {expected}")
            }
            DseError::Expr(e) => write!(f, "expression error: {e}"),
            DseError::DanglingOperatorRef { description, path } => write!(
                f,
                "behavioural description {description:?} references missing CDO path {path:?}"
            ),
            DseError::MalformedConstraint { constraint, stray } => write!(
                f,
                "constraint {constraint:?} references {} outside its declared indep/dep sets",
                stray
                    .iter()
                    .map(|s| format!("{s:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            DseError::SpaceRejected { space, detail } => {
                write!(f, "design space {space:?} rejected by the analyzer: {detail}")
            }
            DseError::EvaluationFailed { constraint, detail } => {
                write!(f, "constraint {constraint:?} failed to evaluate: {detail}")
            }
            DseError::Estimate(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Expr(e) => Some(e),
            DseError::Estimate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::expr::ExprError> for DseError {
    fn from(e: crate::expr::ExprError) -> Self {
        DseError::Expr(e)
    }
}

impl From<crate::estimate::EstimateError> for DseError {
    fn from(e: crate::estimate::EstimateError) -> Self {
        DseError::Estimate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DseError> = vec![
            DseError::UnknownCdo("X".into()),
            DseError::UnknownProperty("P".into()),
            DseError::DuplicateProperty("P".into()),
            DseError::SecondGeneralizedIssue {
                cdo: "A.B".into(),
                existing: "Style".into(),
            },
            DseError::NotADesignIssue("P".into()),
            DseError::NotAGeneralizedIssue("P".into()),
            DseError::IssueNotDeclaredHere {
                cdo: "A.B".into(),
                issue: "I".into(),
            },
            DseError::ValueOutsideDomain {
                property: "P".into(),
                value: Value::Int(3),
            },
            DseError::NonEnumerableDomain("P".into()),
            DseError::ConstraintViolation {
                constraint: "CC1".into(),
                detail: "d".into(),
            },
            DseError::DependencyNotReady {
                constraint: "CC1".into(),
                missing: "M".into(),
            },
            DseError::AlreadyDecided("P".into()),
            DseError::OptionNotSpecialized {
                issue: "I".into(),
                option: Value::Int(1),
            },
            DseError::NothingToUndo,
            DseError::WrongPropertyKind {
                property: "P".into(),
                expected: "requirement",
            },
            DseError::DanglingOperatorRef {
                description: "BD".into(),
                path: "A.B".into(),
            },
            DseError::MalformedConstraint {
                constraint: "CCX".into(),
                stray: vec!["Ghost".into()],
            },
            DseError::SpaceRejected {
                space: "s".into(),
                detail: "1 error(s)".into(),
            },
            DseError::EvaluationFailed {
                constraint: "CC2".into(),
                detail: "division by zero".into(),
            },
            DseError::Estimate(crate::estimate::EstimateError::ToolFailed("boom".into())),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
        // Spot-check the phrasing of the most common diagnostics.
        assert_eq!(
            DseError::AlreadyDecided("EOL".into()).to_string(),
            "property \"EOL\" is already decided; undo or revise it"
        );
        assert!(DseError::NothingToUndo.to_string().contains("empty"));
    }

    #[test]
    fn expr_errors_chain_as_sources() {
        use std::error::Error as _;
        let e = DseError::from(crate::expr::ExprError::DivisionByZero);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("division by zero"));
        assert!(DseError::NothingToUndo.source().is_none());
    }
}
