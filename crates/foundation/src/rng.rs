//! A seedable, deterministic PRNG — the workspace's replacement for the
//! `rand` crate.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that any `u64` seed expands to a full 256-bit state.
//! [`StdRng`] aliases it so existing `StdRng::seed_from_u64(..)` call
//! sites read unchanged.
//!
//! Not cryptographically secure — it drives test vectors, demo keys and
//! benchmarks, never production key material.

use std::ops::{Range, RangeInclusive};

/// The random-source trait. Everything derives from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniformly random value of a primitive type: `rng.gen::<u32>()`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// A uniform draw from a half-open or inclusive range:
    /// `rng.gen_range(0..10)`, `rng.gen_range(1..=6)`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an [`Rng`] (the `rng.gen()` vocabulary).
pub trait FromRandom {
    /// A uniformly random value.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($ty:ty => $via:ident),+ $(,)?) => {$(
        impl FromRandom for $ty {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $ty
            }
        }
    )+};
}

from_random_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// A uniform draw from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` by fixed-point multiplication.
fn span_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + span_sample(rng, span) as i128) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + span_sample(rng, span as u64) as i128) as $ty
            }
        }
    )+};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s surface.
pub trait SeedableRng: Sized {
    /// The full-state seed type.
    type Seed;

    /// Builds from a full-state seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64`, expanding it to full state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: seed expander and stand-alone mixing function.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default generator, by its historical call-site name.
pub type StdRng = Xoshiro256pp;

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; nudge it.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ from the reference C implementation with
        // state {1, 2, 3, 4}.
        let mut rng = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb): (Vec<u64>, Vec<u64>) = (
            (0..16).map(|_| a.next_u64()).collect(),
            (0..16).map(|_| b.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert!((0..16).map(|_| c.next_u64()).collect::<Vec<_>>() != va);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut Xoshiro256pp = &mut rng;
        let _ = draw(dynrng);
    }
}
