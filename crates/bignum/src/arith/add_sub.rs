//! Limb-serial addition and subtraction.

use crate::{DoubleLimb, Limb, UBig, LIMB_BITS};

/// Computes `a + b`.
#[allow(clippy::needless_range_loop)] // limb-serial loops mirror the hardware
pub fn add(a: &UBig, b: &UBig) -> UBig {
    let (long, short) = if a.limb_len() >= b.limb_len() {
        (a.limbs(), b.limbs())
    } else {
        (b.limbs(), a.limbs())
    };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: DoubleLimb = 0;
    for i in 0..long.len() {
        let s = long[i] as DoubleLimb + short.get(i).copied().unwrap_or(0) as DoubleLimb + carry;
        out.push(s as Limb);
        carry = s >> LIMB_BITS;
    }
    if carry != 0 {
        out.push(carry as Limb);
    }
    UBig::from_limbs(out)
}

/// Computes `a - b`, returning `None` on underflow (`b > a`).
#[allow(clippy::needless_range_loop)]
pub fn sub(a: &UBig, b: &UBig) -> Option<UBig> {
    if b.limb_len() > a.limb_len() {
        return None;
    }
    let (la, lb) = (a.limbs(), b.limbs());
    let mut out = Vec::with_capacity(la.len());
    let mut borrow: i64 = 0;
    for i in 0..la.len() {
        let d = la[i] as i64 - lb.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << LIMB_BITS)) as Limb);
            borrow = 1;
        } else {
            out.push(d as Limb);
            borrow = 0;
        }
    }
    if borrow != 0 {
        return None;
    }
    Some(UBig::from_limbs(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_propagates_across_limbs() {
        let a = UBig::from_limbs(vec![u32::MAX, u32::MAX]);
        let b = UBig::one();
        let sum = add(&a, &b);
        assert_eq!(sum, UBig::power_of_two(64));
    }

    #[test]
    fn borrow_propagates_across_limbs() {
        let a = UBig::power_of_two(64);
        let b = UBig::one();
        let d = sub(&a, &b).unwrap();
        assert_eq!(d, UBig::from(u64::MAX));
    }

    #[test]
    fn sub_equal_is_zero() {
        let a = UBig::from_hex("123456789abcdef").unwrap();
        assert!(sub(&a, &a).unwrap().is_zero());
    }

    #[test]
    fn sub_underflow() {
        assert!(sub(&UBig::zero(), &UBig::one()).is_none());
        // Same limb count but smaller value.
        assert!(sub(&UBig::from(5u64), &UBig::from(6u64)).is_none());
    }
}
