//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] precomputes, from a seed and per-fault rates, which of
//! a tool's calls will fail and how. Wrapping an estimator (or a whole
//! registry) in [`FaultyEstimator`]s then exercises every failure path
//! the supervisor must contain — panics, transient errors, fuel
//! exhaustion, NaN and garbage outputs — on a schedule that is exactly
//! reproducible from the seed. Chaos tests use this to prove the
//! resilience invariants: the registry is never poisoned, a failed
//! decision never leaves a partial session, and journal replay matches
//! the original run bit for bit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

use foundation::rng::{Rng, SeedableRng, StdRng};

use crate::estimate::{EstimateError, Estimator, EstimatorRegistry};
use crate::expr::Bindings;
use crate::robust::Fuel;

/// One injected failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The tool panics mid-call.
    Panic,
    /// The tool reports a retryable [`EstimateError::Transient`] failure.
    Transient,
    /// The tool burns its entire fuel budget without producing a value.
    FuelExhaustion,
    /// The tool returns NaN.
    Nan,
    /// The tool returns a wildly wrong finite value (`1e30`).
    Garbage,
}

/// Per-call probabilities of each failure mode (evaluated in order;
/// the remainder is a healthy call).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of [`Fault::Panic`].
    pub panic: f64,
    /// Probability of [`Fault::Transient`].
    pub transient: f64,
    /// Probability of [`Fault::FuelExhaustion`].
    pub fuel: f64,
    /// Probability of [`Fault::Nan`].
    pub nan: f64,
    /// Probability of [`Fault::Garbage`].
    pub garbage: f64,
}

impl FaultRates {
    /// Every failure mode at the same rate.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            panic: p,
            transient: p,
            fuel: p,
            nan: p,
            garbage: p,
        }
    }

    /// A hostile default for chaos tests: roughly half of all calls fail,
    /// spread across the modes.
    pub fn chaos() -> Self {
        FaultRates::uniform(0.10)
    }
}

/// A precomputed, seeded schedule of injected faults.
///
/// The schedule is drawn once at construction (`calls` entries) and
/// cycled, so a wrapped tool can be called more times than planned
/// without losing determinism — and without any runtime RNG state, which
/// keeps the wrapper usable behind `&self`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    schedule: Vec<Option<Fault>>,
}

impl FaultPlan {
    /// Draws a schedule of `calls` entries from `seed` and `rates`.
    pub fn new(seed: u64, calls: usize, rates: FaultRates) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = (0..calls.max(1))
            .map(|_| {
                let roll: f64 = rng.gen();
                let mut threshold = rates.panic;
                if roll < threshold {
                    return Some(Fault::Panic);
                }
                threshold += rates.transient;
                if roll < threshold {
                    return Some(Fault::Transient);
                }
                threshold += rates.fuel;
                if roll < threshold {
                    return Some(Fault::FuelExhaustion);
                }
                threshold += rates.nan;
                if roll < threshold {
                    return Some(Fault::Nan);
                }
                threshold += rates.garbage;
                if roll < threshold {
                    return Some(Fault::Garbage);
                }
                None
            })
            .collect();
        FaultPlan { seed, schedule }
    }

    /// A plan that never injects anything (control group).
    pub fn benign() -> Self {
        FaultPlan {
            seed: 0,
            schedule: vec![None],
        }
    }

    /// The seed the schedule was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault injected on the `i`-th call (cycling past the end).
    pub fn fault_for_call(&self, i: usize) -> Option<Fault> {
        self.schedule[i % self.schedule.len()]
    }

    /// Number of faulty entries in one cycle of the schedule.
    pub fn planned_faults(&self) -> usize {
        self.schedule.iter().filter(|f| f.is_some()).count()
    }

    /// Wraps a single estimator with this plan.
    pub fn wrap(&self, inner: Box<dyn Estimator>) -> FaultyEstimator {
        FaultyEstimator {
            inner,
            plan: self.clone(),
            calls: AtomicUsize::new(0),
        }
    }

    /// Wraps every tool of a registry, giving each its own schedule
    /// (decorrelated by tool index so the tools do not fail in lockstep).
    pub fn wrap_registry(&self, registry: EstimatorRegistry) -> EstimatorRegistry {
        let mut out = EstimatorRegistry::new();
        for (i, tool) in registry.into_tools().into_iter().enumerate() {
            let plan = FaultPlan {
                seed: self.seed,
                schedule: {
                    // Rotate rather than redraw: keeps the overall fault
                    // density identical for every tool.
                    let n = self.schedule.len();
                    (0..n).map(|j| self.schedule[(j + i * 7) % n]).collect()
                },
            };
            out.register(Box::new(FaultyEstimator {
                inner: tool,
                plan,
                calls: AtomicUsize::new(0),
            }));
        }
        out
    }
}

/// An estimator wrapper that injects the plan's faults; otherwise
/// delegates to the wrapped tool (including its fallback chain).
pub struct FaultyEstimator {
    inner: Box<dyn Estimator>,
    plan: FaultPlan,
    calls: AtomicUsize,
}

impl FaultyEstimator {
    /// How many times the wrapper has been called.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    fn inject(&self, fuel: &Fuel) -> Option<Result<f64, EstimateError>> {
        let i = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.plan.fault_for_call(i)? {
            Fault::Panic => panic!("injected panic (call {i}, seed {})", self.plan.seed),
            Fault::Transient => Some(Err(EstimateError::Transient(format!(
                "injected transient failure (call {i})"
            )))),
            Fault::FuelExhaustion => {
                // Burn whatever remains, then one more step to fail.
                let _ = fuel.spend(fuel.remaining());
                Some(Err(fuel.spend(1).expect_err("budget just drained")))
            }
            Fault::Nan => Some(Ok(f64::NAN)),
            Fault::Garbage => Some(Ok(1e30)),
        }
    }
}

impl Estimator for FaultyEstimator {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn metric(&self) -> &str {
        self.inner.metric()
    }

    fn estimate(&self, inputs: &Bindings) -> Result<f64, EstimateError> {
        self.estimate_with_fuel(inputs, &Fuel::unlimited())
    }

    fn estimate_with_fuel(&self, inputs: &Bindings, fuel: &Fuel) -> Result<f64, EstimateError> {
        match self.inject(fuel) {
            Some(outcome) => outcome,
            None => self.inner.estimate_with_fuel(inputs, fuel),
        }
    }

    fn fallbacks(&self) -> Vec<String> {
        self.inner.fallbacks()
    }
}

impl std::fmt::Debug for FaultyEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyEstimator")
            .field("name", &self.inner.name())
            .field("plan", &self.plan)
            .field("calls", &self.calls())
            .finish()
    }
}

/// Installs (once, process-wide) a panic hook that swallows the noise of
/// *injected* panics — any payload containing `"injected"` — and forwards
/// everything else to the previously installed hook. Chaos tests call
/// this so hundreds of contained panics do not flood test output, while
/// genuine panics still print.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    struct Const(f64);
    impl Estimator for Const {
        fn name(&self) -> &str {
            "Const"
        }
        fn metric(&self) -> &str {
            "ns"
        }
        fn estimate(&self, _: &Bindings) -> Result<f64, EstimateError> {
            Ok(self.0)
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42, 100, FaultRates::chaos());
        let b = FaultPlan::new(42, 100, FaultRates::chaos());
        let c = FaultPlan::new(43, 100, FaultRates::chaos());
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different schedules");
    }

    #[test]
    fn rates_one_faults_every_call_rates_zero_never() {
        let all = FaultPlan::new(1, 50, FaultRates::uniform(0.2));
        assert_eq!(all.planned_faults(), 50);
        let none = FaultPlan::new(1, 50, FaultRates::uniform(0.0));
        assert_eq!(none.planned_faults(), 0);
        assert_eq!(FaultPlan::benign().planned_faults(), 0);
    }

    #[test]
    fn wrapper_delegates_when_no_fault_planned() {
        let plan = FaultPlan::benign();
        let tool = plan.wrap(Box::new(Const(7.0)));
        assert_eq!(tool.estimate(&Bindings::new()).unwrap(), 7.0);
        assert_eq!(tool.name(), "Const");
        assert_eq!(tool.calls(), 1);
    }

    #[test]
    fn injected_faults_surface_as_planned() {
        silence_injected_panics();
        // Schedule of length 1, always transient.
        let plan = FaultPlan::new(
            9,
            1,
            FaultRates {
                panic: 0.0,
                transient: 1.0,
                fuel: 0.0,
                nan: 0.0,
                garbage: 0.0,
            },
        );
        let tool = plan.wrap(Box::new(Const(7.0)));
        assert!(matches!(
            tool.estimate(&Bindings::new()).unwrap_err(),
            EstimateError::Transient(_)
        ));

        let plan = FaultPlan::new(
            9,
            1,
            FaultRates {
                panic: 0.0,
                transient: 0.0,
                fuel: 1.0,
                nan: 0.0,
                garbage: 0.0,
            },
        );
        let tool = plan.wrap(Box::new(Const(7.0)));
        let fuel = Fuel::new(100);
        assert!(matches!(
            tool.estimate_with_fuel(&Bindings::new(), &fuel).unwrap_err(),
            EstimateError::FuelExhausted { .. }
        ));
        assert_eq!(fuel.remaining(), 0);
    }

    #[test]
    fn injected_panic_unwinds_with_injected_marker() {
        silence_injected_panics();
        let plan = FaultPlan::new(
            5,
            1,
            FaultRates {
                panic: 1.0,
                transient: 0.0,
                fuel: 0.0,
                nan: 0.0,
                garbage: 0.0,
            },
        );
        let tool = plan.wrap(Box::new(Const(7.0)));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = tool.estimate(&Bindings::new());
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn wrap_registry_keeps_names_and_decorrelates_schedules() {
        let mut reg = EstimatorRegistry::new();
        reg.register(Box::new(Const(1.0)));
        let plan = FaultPlan::new(3, 20, FaultRates::chaos());
        let wrapped = plan.wrap_registry(reg);
        assert_eq!(wrapped.names(), vec!["Const"]);
        // Healthy calls still flow through.
        let mut b = Bindings::new();
        b.insert("X".to_owned(), Value::Int(1));
        let mut any_ok = false;
        for _ in 0..20 {
            if let Ok(v) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                wrapped.run("Const", &b)
            })) {
                if v == Ok(1.0) {
                    any_ok = true;
                }
            }
        }
        assert!(any_ok, "chaos rates leave most calls healthy");
    }
}
