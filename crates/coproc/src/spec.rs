//! The coprocessor requirement set — the paper's Fig. 8 values, taken
//! from the Koç modular-exponentiation coprocessor specification.


/// The Req1–Req5 requirement values for the modular-multiplier block.
#[derive(Debug, Clone, PartialEq)]
pub struct KocSpec {
    /// Req1: effective operand length in bits.
    pub eol: u32,
    /// Req2: operand coding.
    pub operand_coding: String,
    /// Req3: result coding.
    pub result_coding: String,
    /// Req4: whether the modulus is guaranteed odd.
    pub modulo_odd_guaranteed: bool,
    /// Req5: latency bound for one modular multiplication, in µs.
    pub max_latency_us: f64,
}

impl KocSpec {
    /// The paper's values: 768-bit operands, 2's-complement operands,
    /// redundant results, odd modulus guaranteed, ≤ 8 µs per modular
    /// multiplication.
    pub fn paper() -> Self {
        KocSpec {
            eol: 768,
            operand_coding: "2's complement".to_owned(),
            result_coding: "redundant".to_owned(),
            modulo_odd_guaranteed: true,
            max_latency_us: 8.0,
        }
    }

    /// Whether a modular-multiplier latency meets Req5.
    pub fn meets_latency(&self, modmul_latency_us: f64) -> bool {
        modmul_latency_us <= self.max_latency_us
    }

    /// Expected modular exponentiation time for a full-length exponent
    /// (≈ 1.5 multiplications per exponent bit, plus conversions), in µs.
    pub fn modexp_time_us(&self, modmul_latency_us: f64) -> f64 {
        let mults = 1.5 * self.eol as f64 + 2.0;
        mults * modmul_latency_us
    }
}

impl Default for KocSpec {
    fn default() -> Self {
        KocSpec::paper()
    }
}

foundation::impl_json_struct!(KocSpec {
    eol,
    operand_coding,
    result_coding,
    modulo_odd_guaranteed,
    max_latency_us,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let s = KocSpec::paper();
        assert_eq!(s.eol, 768);
        assert_eq!(s.max_latency_us, 8.0);
        assert!(s.modulo_odd_guaranteed);
        assert_eq!(KocSpec::default(), s);
    }

    #[test]
    fn latency_check_is_inclusive() {
        let s = KocSpec::paper();
        assert!(s.meets_latency(8.0));
        assert!(s.meets_latency(2.2));
        assert!(!s.meets_latency(8.01));
    }

    #[test]
    fn modexp_projection_scales_with_latency() {
        let s = KocSpec::paper();
        let t1 = s.modexp_time_us(2.0);
        let t2 = s.modexp_time_us(4.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 768-bit exponent at ~2.2 µs per multiplication ≈ a few ms.
        let t = s.modexp_time_us(2.2);
        assert!(t > 2_000.0 && t < 4_000.0, "{t}");
    }
}
