//! Benchmarks of the cycle-accurate datapath simulator: one modular
//! multiplication through each Table-1 design family.

fn main() {
    bench::suites::datapath().finish();
}
