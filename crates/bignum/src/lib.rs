#![warn(missing_docs)]
//! Multi-precision unsigned integer arithmetic, built from scratch as the
//! functional substrate for the design-space-layer reproduction.
//!
//! The cryptography case study of the paper revolves around modular
//! multiplication `A·B mod M` and modular exponentiation `Mᴱ mod N` on
//! operands up to 2¹⁰²⁴ and beyond. Every hardware datapath model and every
//! software routine model in this workspace is validated against the
//! reference arithmetic in this crate.
//!
//! # Quick example
//!
//! ```
//! # use std::error::Error;
//! use bignum::UBig;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let a = UBig::from_hex("1fffffffffffffff")?;
//! let b = UBig::from(42u64);
//! let m = UBig::from_hex("fedcba9876543211")?; // odd modulus
//! let naive = a.mod_mul(&b, &m);
//!
//! // Montgomery multiplication agrees with the naive route.
//! let ctx = bignum::MontgomeryContext::new(&m)?;
//! let mont = ctx.mod_mul(&a, &b);
//! assert_eq!(naive, mont);
//! # Ok(())
//! # }
//! ```

mod brickell;
mod gcd;
mod montgomery;
mod primes;
mod rng;
mod ubig;
mod window;

pub mod arith;

pub use brickell::brickell_mod_mul;
pub use gcd::{extended_gcd, gcd, mod_inverse};
pub use montgomery::{mont_mul_digit_serial, MontgomeryContext, MontgomeryError};
pub use primes::{is_probable_prime, random_odd, random_prime};
pub use rng::uniform_below;
pub use ubig::{ParseUBigError, UBig};
pub use window::{expected_counts, mod_pow_windowed, WindowCounts};

/// Number of bits in one limb of a [`UBig`].
///
/// The limb width intentionally matches the 32-bit word size of the
/// Pentium-class processor model used by the software cost model, so that
/// "number of word operations" in the software variants is directly
/// meaningful.
pub const LIMB_BITS: u32 = 32;

/// One limb of a [`UBig`]. See [`LIMB_BITS`].
pub type Limb = u32;

/// Double-width type used for limb-level products and carries.
pub type DoubleLimb = u64;
