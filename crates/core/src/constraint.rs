//! Consistency constraints (CCs) — the paper's single modeling construct
//! for ordering and consistency relationships among properties.
//!
//! A CC has an *independent* property set, a *dependent* property set and
//! a *relation*. The dependent set can only be addressed after the
//! independent set; when the independent set changes, the dependent set
//! must be re-assessed. Relations come in four flavours, matching the
//! paper's CC1–CC4:
//!
//! * [`Relation::InconsistentOptions`] — a predicate whose truth marks a
//!   combination of options as inconsistent (CC1: Montgomery needs an odd
//!   modulus; also CC4's dominated-combination elimination).
//! * [`Relation::Quantitative`] — a formula deriving a dependent property
//!   from the independents (CC2: `Latency = 2·EOL/Radix + 1`). Relations
//!   may be exact or heuristic — the layer records which.
//! * [`Relation::EstimatorContext`] — binds an early estimation tool into
//!   its utilization context (CC3: `MaxCombDelay = BehaviorDelayEstimator(BD)`).
//! * [`Relation::Dominance`] — eliminates inferior solutions (CC4).

use std::fmt;


use crate::expr::{Bindings, Expr, ExprError, Pred};
use crate::value::Value;

/// How trustworthy a quantitative relation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Stated exactly, from first principles.
    Exact,
    /// A heuristic approximation (the paper allows both).
    Heuristic,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fidelity::Exact => "exact",
            Fidelity::Heuristic => "heuristic",
        })
    }
}

/// The relation carried by a consistency constraint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Relation {
    /// The predicate identifies *inconsistent* option combinations: if it
    /// evaluates to `true`, the current decisions are in conflict.
    InconsistentOptions(Pred),
    /// Derives `target` from the independents via `formula`.
    Quantitative {
        /// The dependent property assigned by the formula.
        target: String,
        /// The deriving expression.
        formula: Expr,
        /// Exact or heuristic.
        fidelity: Fidelity,
    },
    /// Defines the utilization context of an early estimation tool: when
    /// the inputs are decided, `estimator` may be invoked to produce
    /// `output`.
    EstimatorContext {
        /// Registered estimator name.
        estimator: String,
        /// Input property names.
        inputs: Vec<String>,
        /// The produced metric's property name.
        output: String,
    },
    /// The predicate identifies *dominated* (inferior) option
    /// combinations that should be eliminated from consideration.
    Dominance(Pred),
}

/// What a constraint has to say under the current bindings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConstraintOutcome {
    /// Some independent property is still undecided.
    NotReady,
    /// The bindings are consistent with this constraint.
    Satisfied,
    /// The bindings violate the constraint.
    Violated {
        /// Human-readable explanation.
        detail: String,
    },
    /// A quantitative relation produced a derived value.
    Derived {
        /// The dependent property.
        property: String,
        /// The derived value.
        value: Value,
    },
    /// An estimator may now run (`EstimatorContext` with inputs bound).
    EstimatorReady {
        /// The estimator's registered name.
        estimator: String,
        /// The output property it would produce.
        output: String,
    },
    /// The relation could not be evaluated even though its independents
    /// are bound — a type mismatch, division by zero or non-finite
    /// arithmetic. Unlike [`NotReady`](Self::NotReady), waiting for more
    /// decisions will not fix this; sessions treat it as a hard error.
    Failed {
        /// The evaluation error's rendering.
        detail: String,
    },
}

/// A consistency constraint: independent set → dependent set via a
/// relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyConstraint {
    name: String,
    doc: String,
    indep: Vec<String>,
    dep: Vec<String>,
    relation: Relation,
}

impl ConsistencyConstraint {
    /// Creates a constraint. The independent/dependent sets are property
    /// names; the relation's own references should be a subset of them
    /// (checked by [`well_formed`](Self::well_formed)).
    pub fn new(
        name: impl Into<String>,
        doc: impl Into<String>,
        indep: impl IntoIterator<Item = String>,
        dep: impl IntoIterator<Item = String>,
        relation: Relation,
    ) -> Self {
        ConsistencyConstraint {
            name: name.into(),
            doc: doc.into(),
            indep: indep.into_iter().collect(),
            dep: dep.into_iter().collect(),
            relation,
        }
    }

    /// The constraint's name (CC1, CC2, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The documentation line.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The independent property set.
    pub fn indep(&self) -> &[String] {
        &self.indep
    }

    /// The dependent property set.
    pub fn dep(&self) -> &[String] {
        &self.dep
    }

    /// The relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Whether every property the relation references is listed in the
    /// independent or dependent set.
    pub fn well_formed(&self) -> bool {
        let listed = |p: &String| self.indep.contains(p) || self.dep.contains(p);
        match &self.relation {
            Relation::InconsistentOptions(p) | Relation::Dominance(p) => {
                p.references().iter().all(listed)
            }
            Relation::Quantitative {
                target, formula, ..
            } => formula.references().iter().all(listed) && listed(target),
            Relation::EstimatorContext { inputs, output, .. } => {
                inputs.iter().all(listed) && listed(output)
            }
        }
    }

    /// Whether all independent properties are bound.
    pub fn is_ready(&self, bindings: &Bindings) -> bool {
        self.indep.iter().all(|p| bindings.contains_key(p))
    }

    /// Whether the constraint involves property `name` at all: in its
    /// declared indep/dep sets, the relation's own references, or a
    /// produced target. Allocation-free, for the per-decision
    /// constraint-selection fast path — a constraint with
    /// `!mentions(changed)` cannot change outcome when only `changed`
    /// moved.
    pub fn mentions(&self, name: &str) -> bool {
        if self.indep.iter().any(|p| p == name) || self.dep.iter().any(|p| p == name) {
            return true;
        }
        match &self.relation {
            Relation::InconsistentOptions(p) | Relation::Dominance(p) => p.mentions(name),
            Relation::Quantitative {
                target, formula, ..
            } => target == name || formula.mentions(name),
            Relation::EstimatorContext { inputs, output, .. } => {
                output == name || inputs.iter().any(|i| i == name)
            }
        }
    }

    /// The paper's ordering rule: `property` may only be decided after the
    /// independents; returns the first missing independent if `property`
    /// is in the dependent set and the independents are not all bound.
    pub fn blocking_dependency(&self, property: &str, bindings: &Bindings) -> Option<&str> {
        if !self.dep.iter().any(|d| d == property) {
            return None;
        }
        self.indep
            .iter()
            .find(|p| !bindings.contains_key(p.as_str()))
            .map(String::as_str)
    }

    /// Evaluates the constraint under `bindings`.
    pub fn evaluate(&self, bindings: &Bindings) -> ConstraintOutcome {
        if !self.is_ready(bindings) {
            return ConstraintOutcome::NotReady;
        }
        match &self.relation {
            Relation::InconsistentOptions(pred) | Relation::Dominance(pred) => {
                // Unbound references mean "wait for more decisions"; any
                // other evaluation error is a hard failure the session
                // must surface, not swallow.
                match pred.eval(bindings) {
                    Ok(true) => ConstraintOutcome::Violated {
                        detail: format!("{pred}"),
                    },
                    Ok(false) => ConstraintOutcome::Satisfied,
                    Err(ExprError::Unbound(_)) => ConstraintOutcome::NotReady,
                    Err(e) => ConstraintOutcome::Failed {
                        detail: e.to_string(),
                    },
                }
            }
            Relation::Quantitative {
                target, formula, ..
            } => match formula.eval(bindings) {
                Ok(v) => {
                    let value = if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
                        Value::Int(v as i64)
                    } else {
                        Value::Real(v)
                    };
                    ConstraintOutcome::Derived {
                        property: target.clone(),
                        value,
                    }
                }
                Err(ExprError::Unbound(_)) => ConstraintOutcome::NotReady,
                Err(e) => ConstraintOutcome::Failed {
                    detail: e.to_string(),
                },
            },
            Relation::EstimatorContext {
                estimator,
                inputs,
                output,
            } => {
                if inputs.iter().all(|i| bindings.contains_key(i)) {
                    ConstraintOutcome::EstimatorReady {
                        estimator: estimator.clone(),
                        output: output.clone(),
                    }
                } else {
                    ConstraintOutcome::NotReady
                }
            }
        }
    }
}

impl fmt::Display for ConsistencyConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.name, self.doc)?;
        writeln!(f, "  Indep_Set = {{{}}}", self.indep.join(", "))?;
        writeln!(f, "  Dep_Set   = {{{}}}", self.dep.join(", "))?;
        match &self.relation {
            Relation::InconsistentOptions(p) => {
                write!(f, "  Relation: InconsistentOptions({p})")
            }
            Relation::Quantitative {
                target,
                formula,
                fidelity,
            } => {
                write!(f, "  Relation: {target} = {formula}   [{fidelity}]")
            }
            Relation::EstimatorContext {
                estimator,
                inputs,
                output,
            } => {
                write!(
                    f,
                    "  Relation: {output} = {estimator}({})",
                    inputs.join(", ")
                )
            }
            Relation::Dominance(p) => write!(f, "  Relation: Dominated({p})"),
        }
    }
}

foundation::impl_json_enum!(Fidelity { Exact, Heuristic });
foundation::impl_json_enum!(Relation {
    InconsistentOptions(pred),
    Quantitative { target, formula, fidelity },
    EstimatorContext { estimator, inputs, output },
    Dominance(pred),
});
foundation::impl_json_struct!(ConsistencyConstraint { name, doc, indep, dep, relation });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn b(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    fn cc1() -> ConsistencyConstraint {
        ConsistencyConstraint::new(
            "CC1",
            "Montgomery Algorithm requires odd modulo",
            vec!["ModuloIsOdd".to_owned()],
            vec!["Algorithm".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("ModuloIsOdd", "notGuaranteed"),
                Pred::is("Algorithm", "Montgomery"),
            ])),
        )
    }

    fn cc2() -> ConsistencyConstraint {
        ConsistencyConstraint::new(
            "CC2",
            "the greater the radix, the smaller the latency in cycles",
            vec!["Radix".to_owned(), "EOL".to_owned()],
            vec!["LatencySingleOperation".to_owned()],
            Relation::Quantitative {
                target: "LatencySingleOperation".to_owned(),
                formula: Expr::constant(2)
                    .mul(Expr::prop("EOL"))
                    .div(Expr::prop("Radix"))
                    .add(Expr::constant(1)),
                fidelity: Fidelity::Heuristic,
            },
        )
    }

    #[test]
    fn cc1_fires_only_on_the_bad_combination() {
        let c = cc1();
        assert_eq!(
            c.evaluate(&b(&[("ModuloIsOdd", Value::from("notGuaranteed"))])),
            ConstraintOutcome::NotReady,
            "algorithm not decided yet"
        );
        let bad = b(&[
            ("ModuloIsOdd", Value::from("notGuaranteed")),
            ("Algorithm", Value::from("Montgomery")),
        ]);
        assert!(matches!(
            c.evaluate(&bad),
            ConstraintOutcome::Violated { .. }
        ));
        let good = b(&[
            ("ModuloIsOdd", Value::from("Guaranteed")),
            ("Algorithm", Value::from("Montgomery")),
        ]);
        assert_eq!(c.evaluate(&good), ConstraintOutcome::Satisfied);
    }

    #[test]
    fn cc2_derives_latency() {
        let c = cc2();
        let out = c.evaluate(&b(&[("EOL", Value::Int(768)), ("Radix", Value::Int(4))]));
        assert_eq!(
            out,
            ConstraintOutcome::Derived {
                property: "LatencySingleOperation".to_owned(),
                value: Value::Int(385),
            }
        );
    }

    #[test]
    fn ordering_blocks_dependent_first() {
        // The paper: the dependent set can only be addressed after the
        // independent set.
        let c = cc1();
        let empty = Bindings::new();
        assert_eq!(
            c.blocking_dependency("Algorithm", &empty),
            Some("ModuloIsOdd")
        );
        let ready = b(&[("ModuloIsOdd", Value::from("Guaranteed"))]);
        assert_eq!(c.blocking_dependency("Algorithm", &ready), None);
        // Non-dependent properties are never blocked.
        assert_eq!(c.blocking_dependency("EOL", &empty), None);
    }

    #[test]
    fn estimator_context_reports_ready() {
        let c = ConsistencyConstraint::new(
            "CC3",
            "behavioural decomposition impacts delay",
            vec!["BehavioralDescription".to_owned()],
            vec!["MaxCombDelay".to_owned()],
            Relation::EstimatorContext {
                estimator: "BehaviorDelayEstimator".to_owned(),
                inputs: vec!["BehavioralDescription".to_owned()],
                output: "MaxCombDelay".to_owned(),
            },
        );
        assert_eq!(c.evaluate(&Bindings::new()), ConstraintOutcome::NotReady);
        let ready = b(&[("BehavioralDescription", Value::from("Montgomery"))]);
        assert_eq!(
            c.evaluate(&ready),
            ConstraintOutcome::EstimatorReady {
                estimator: "BehaviorDelayEstimator".to_owned(),
                output: "MaxCombDelay".to_owned(),
            }
        );
    }

    #[test]
    fn dominance_flags_inferior_combinations() {
        // CC4: Montgomery ∧ EOL ≥ 32 ∧ Adder ≠ CSA is inferior.
        let c = ConsistencyConstraint::new(
            "CC4",
            "inferior solutions eliminated",
            vec!["EOL".to_owned(), "Algorithm".to_owned()],
            vec!["Adder".to_owned()],
            Relation::Dominance(Pred::all([
                Pred::is("Algorithm", "Montgomery"),
                Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::constant(32)),
                Pred::is_not("Adder", "carry-save"),
            ])),
        );
        let inferior = b(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::Int(768)),
            ("Adder", Value::from("carry-look-ahead")),
        ]);
        assert!(matches!(
            c.evaluate(&inferior),
            ConstraintOutcome::Violated { .. }
        ));
        let fine = b(&[
            ("Algorithm", Value::from("Montgomery")),
            ("EOL", Value::Int(768)),
            ("Adder", Value::from("carry-save")),
        ]);
        assert_eq!(c.evaluate(&fine), ConstraintOutcome::Satisfied);
    }

    #[test]
    fn evaluation_errors_surface_as_failed_not_not_ready() {
        // CC2 with Radix = 0: division by zero is a hard failure once the
        // independents are all bound.
        let c = cc2();
        let out = c.evaluate(&b(&[("EOL", Value::Int(768)), ("Radix", Value::Int(0))]));
        assert!(
            matches!(&out, ConstraintOutcome::Failed { detail } if detail.contains("zero")),
            "{out:?}"
        );
        // A predicate over a text value where a number is needed.
        let c = ConsistencyConstraint::new(
            "CCtype",
            "",
            vec!["A".to_owned()],
            vec![],
            Relation::InconsistentOptions(Pred::cmp(
                CmpOp::Ge,
                Expr::prop("A"),
                Expr::constant(1),
            )),
        );
        let out = c.evaluate(&b(&[("A", Value::from("text"))]));
        assert!(matches!(out, ConstraintOutcome::Failed { .. }), "{out:?}");
        // A non-finite bound value.
        let out = c.evaluate(&b(&[("A", Value::Real(f64::NAN))]));
        assert!(matches!(out, ConstraintOutcome::Failed { .. }), "{out:?}");
    }

    #[test]
    fn well_formedness_checks_reference_coverage() {
        assert!(cc1().well_formed());
        assert!(cc2().well_formed());
        let bad = ConsistencyConstraint::new(
            "bad",
            "",
            vec!["A".to_owned()],
            vec![],
            Relation::InconsistentOptions(Pred::is("B", 1)),
        );
        assert!(!bad.well_formed());
    }

    #[test]
    fn display_is_self_documenting() {
        let s = cc2().to_string();
        assert!(s.contains("CC2"));
        assert!(s.contains("Indep_Set = {Radix, EOL}"));
        assert!(s.contains("LatencySingleOperation = (((2 × EOL) / Radix) + 1)"));
        assert!(s.contains("[heuristic]"));
    }
}
