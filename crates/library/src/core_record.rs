//! Core records: reusable designs as the layer sees them.

use std::collections::BTreeMap;
use std::fmt;

use dse::eval::{EvalPoint, FigureOfMerit};
use dse::expr::Bindings;
use dse::value::Value;

/// One reusable design (a "core"): a point in the design space.
///
/// A core carries
///
/// * *bindings* — the design options it embodies (its coordinates along
///   the areas of design decision: `Algorithm = Montgomery`,
///   `SliceWidth = 64`, …), which is how the layer indexes it, and
/// * *merits* — its figures of merit (area, delay, power, …), which is
///   what the evaluation space plots.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreRecord {
    name: String,
    vendor: String,
    doc: String,
    bindings: BTreeMap<String, Value>,
    merits: BTreeMap<FigureOfMerit, f64>,
}

impl CoreRecord {
    /// Creates a record with no bindings/merits yet.
    pub fn new(name: impl Into<String>, vendor: impl Into<String>, doc: impl Into<String>) -> Self {
        CoreRecord {
            name: name.into(),
            vendor: vendor.into(),
            doc: doc.into(),
            bindings: BTreeMap::new(),
            merits: BTreeMap::new(),
        }
    }

    /// Adds a design-option binding (builder style).
    #[must_use]
    pub fn bind(mut self, property: impl Into<String>, value: impl Into<Value>) -> Self {
        self.bindings.insert(property.into(), value.into());
        self
    }

    /// Adds a figure of merit (builder style).
    #[must_use]
    pub fn merit(mut self, merit: FigureOfMerit, value: f64) -> Self {
        self.merits.insert(merit, value);
        self
    }

    /// The core's name (`"#2_64"`, `"CIHS ASM"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The IP provider / origin.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The documentation line.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The design-option bindings.
    pub fn bindings(&self) -> &BTreeMap<String, Value> {
        &self.bindings
    }

    /// The value bound for `property`, if any.
    pub fn binding(&self, property: &str) -> Option<&Value> {
        self.bindings.get(property)
    }

    /// The figures of merit.
    pub fn merits(&self) -> &BTreeMap<FigureOfMerit, f64> {
        &self.merits
    }

    /// One figure of merit.
    pub fn merit_value(&self, merit: &FigureOfMerit) -> Option<f64> {
        self.merits.get(merit).copied()
    }

    /// Whether the core complies with a set of decisions: for every
    /// `(property, value)` in `filter` that the core *binds*, the binding
    /// must match. Properties the core does not record are not filtered on
    /// (they are outside its declared design space coordinates).
    pub fn complies_with(&self, filter: &Bindings) -> bool {
        filter.iter().all(|(prop, want)| {
            self.bindings
                .get(prop.as_str())
                .is_none_or(|have| have.matches(want))
        })
    }

    /// Like [`complies_with`](Self::complies_with), but a core missing a
    /// binding for any filtered property is rejected.
    pub fn complies_strictly_with(&self, filter: &Bindings) -> bool {
        filter.iter().all(|(prop, want)| {
            self.bindings
                .get(prop.as_str())
                .is_some_and(|have| have.matches(want))
        })
    }

    /// This core as an evaluation-space point.
    pub fn eval_point(&self) -> EvalPoint {
        let mut p = EvalPoint::new(self.name.clone());
        for (&m, &v) in &self.merits {
            p = p.with(m, v);
        }
        p
    }
}

impl fmt::Display for CoreRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.vendor)?;
        for (m, v) in &self.merits {
            write!(f, " {m}={v:.1}{}", m.unit())?;
        }
        Ok(())
    }
}

foundation::impl_json_struct!(CoreRecord { name, vendor, doc, bindings, merits });

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreRecord {
        CoreRecord::new("#2_64", "in-house", "Montgomery CSA radix-2")
            .bind("Algorithm", "Montgomery")
            .bind("SliceWidth", 64)
            .merit(FigureOfMerit::AreaUm2, 37000.0)
            .merit(FigureOfMerit::DelayNs, 2200.0)
    }

    fn filter(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect()
    }

    #[test]
    fn compliance_matches_bound_properties() {
        let c = sample();
        assert!(c.complies_with(&filter(&[("Algorithm", Value::from("Montgomery"))])));
        assert!(!c.complies_with(&filter(&[("Algorithm", Value::from("Brickell"))])));
        assert!(c.complies_with(&filter(&[
            ("Algorithm", Value::from("Montgomery")),
            ("SliceWidth", Value::from(64)),
        ])));
    }

    #[test]
    fn lenient_vs_strict_on_unbound_properties() {
        let c = sample();
        let f = filter(&[("Radix", Value::from(2))]); // not bound by the core
        assert!(c.complies_with(&f));
        assert!(!c.complies_strictly_with(&f));
    }

    #[test]
    fn eval_point_carries_merits() {
        let p = sample().eval_point();
        assert_eq!(p.label(), "#2_64");
        assert_eq!(p.merit(&FigureOfMerit::AreaUm2), Some(37000.0));
        assert_eq!(p.merit(&FigureOfMerit::PowerMw), None);
    }

    #[test]
    fn numeric_bindings_match_across_int_real() {
        let c = sample();
        assert!(c.complies_with(&filter(&[("SliceWidth", Value::Real(64.0))])));
    }

    #[test]
    fn display_shows_merits() {
        let s = sample().to_string();
        assert!(s.contains("#2_64"));
        assert!(s.contains("area=37000.0µm²"));
    }
}
