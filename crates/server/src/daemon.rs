//! The TCP front: one thread per connection over
//! [`foundation::net::TcpServer`], with graceful drain.
//!
//! Each connection reads newline-delimited JSON requests. Whatever the
//! client has pipelined (every complete line already buffered) is
//! handed to [`Engine::handle_batch`] as one batch, so independent
//! sessions on one connection still fan out across the worker pool
//! while responses come back in request order.
//!
//! Drain protocol: a `shutdown` request flips the engine's draining
//! flag. The connection that carried it answers, then trips the accept
//! loop's stop flag; [`Server::run`] wakes every blocked reader with
//! `shutdown(Read)` — pending responses still flush, the sockets just
//! stop producing requests — and joins all connection threads before
//! returning.

use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::{io, thread};

use foundation::net::{self, TcpServer, MAX_WIRE_BYTES};

use crate::engine::Engine;
use crate::protocol::{err_response, ProtocolError};

/// A running daemon: the listener thread plus its connection threads.
#[derive(Debug)]
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<io::Result<()>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts accepting (bind to port 0 for an ephemeral
    /// port; see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn start(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let tcp = TcpServer::bind(addr)?;
        let local = tcp.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let threads = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let threads = Arc::clone(&threads);
            thread::spawn(move || {
                tcp.serve(&stop, |stream, _peer| {
                    if engine.is_draining() {
                        return; // dropping the stream refuses the connection
                    }
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().unwrap().push(clone);
                    }
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop);
                    threads
                        .lock()
                        .unwrap()
                        .push(thread::spawn(move || connection(&engine, stream, &stop)));
                })
            })
        };

        Ok(Server {
            engine,
            addr: local,
            stop,
            accept: Some(accept),
            conns,
            threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the listener.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests drain from outside the protocol (equivalent to a
    /// `shutdown` request): stops accepting and wakes blocked readers.
    pub fn request_stop(&self) {
        self.engine.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
        for s in self.conns.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }

    /// Blocks until the daemon drains (a `shutdown` request, or
    /// [`Server::request_stop`] from another thread), then joins every
    /// connection thread.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop error.
    pub fn run(mut self) -> io::Result<()> {
        let result = match self.accept.take() {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(io::Error::other("accept thread panicked"))
            }),
            None => Ok(()),
        };
        // The accept thread has exited, so both registries are final.
        for s in self.conns.lock().unwrap().iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.threads.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        result
    }
}

/// One connection: read everything pipelined, answer as a batch, until
/// EOF, error, or drain.
fn connection(engine: &Engine, stream: TcpStream, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    loop {
        let first = match net::read_line_bounded(&mut reader, MAX_WIRE_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF
            Err(e) => {
                // An unframeable line (oversized / not UTF-8): tell the
                // client why, then drop the connection — the stream
                // cannot be resynchronized.
                let resp = err_response(&None, &ProtocolError::malformed(e.to_string()));
                let _ = net::write_line(&mut writer, &foundation::json::encode(&resp));
                return;
            }
        };
        let mut batch = vec![first];
        // Greedily take every complete line the client has already
        // pipelined: they become one parallel batch.
        while reader.buffer().contains(&b'\n') {
            match net::read_line_bounded(&mut reader, MAX_WIRE_BYTES) {
                Ok(Some(line)) => batch.push(line),
                _ => break,
            }
        }
        for response in engine.handle_batch(&batch) {
            if net::write_line(&mut writer, &response).is_err() {
                return;
            }
        }
        if engine.is_draining() {
            // Carry the drain to the accept loop; run() wakes the rest.
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}
