//! The evaluation space: figures of merit, ranges, Pareto analysis and
//! clustering.
//!
//! The paper's Figs. 2(c), 3(b), 9 and 12 are evaluation-space plots
//! (area vs delay). The layer uses the evaluation space in two ways: to
//! *organise* the hierarchy (generalization levels are chosen so that the
//! families they define land in coherent evaluation-space clusters), and
//! to *present* the surviving candidates after each pruning step (ranges,
//! Pareto fronts).

use std::collections::BTreeMap;
use std::fmt;

use crate::intern::Symbol;
use crate::robust::{Figure, Provenance};

/// A figure of merit the layer can report on.
///
/// `Copy`: the `Other` variant carries an interned [`Symbol`], so merit
/// keys move freely between maps without cloning strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FigureOfMerit {
    /// Silicon area in µm².
    AreaUm2,
    /// Latency of one operation in ns.
    DelayNs,
    /// Clock period in ns.
    ClockNs,
    /// Latency in cycles.
    LatencyCycles,
    /// Average power in mW.
    PowerMw,
    /// Execution time in µs (software cores).
    TimeUs,
    /// Energy per operation in nJ.
    EnergyNj,
    /// Anything else, by (interned) name.
    Other(Symbol),
}

impl FigureOfMerit {
    /// Whether smaller values are better (true for every built-in merit).
    pub fn minimize(&self) -> bool {
        true
    }

    /// The unit suffix for display.
    pub fn unit(&self) -> &str {
        match self {
            FigureOfMerit::AreaUm2 => "µm²",
            FigureOfMerit::DelayNs | FigureOfMerit::ClockNs => "ns",
            FigureOfMerit::LatencyCycles => "cycles",
            FigureOfMerit::PowerMw => "mW",
            FigureOfMerit::TimeUs => "µs",
            FigureOfMerit::EnergyNj => "nJ",
            FigureOfMerit::Other(_) => "",
        }
    }
}

impl fmt::Display for FigureOfMerit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FigureOfMerit::AreaUm2 => write!(f, "area"),
            FigureOfMerit::DelayNs => write!(f, "delay"),
            FigureOfMerit::ClockNs => write!(f, "clock"),
            FigureOfMerit::LatencyCycles => write!(f, "latency"),
            FigureOfMerit::PowerMw => write!(f, "power"),
            FigureOfMerit::TimeUs => write!(f, "time"),
            FigureOfMerit::EnergyNj => write!(f, "energy"),
            FigureOfMerit::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One design's coordinates in the evaluation space.
///
/// Each merit may carry a [`Provenance`] tag recording how trustworthy
/// the coordinate is (measured datasheet figure vs. supervised estimate
/// vs. fallback range). Untagged merits are implicitly
/// [`Provenance::Exact`] — the common case for library datasheets.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPoint {
    label: String,
    merits: BTreeMap<FigureOfMerit, f64>,
    provenance: BTreeMap<FigureOfMerit, Provenance>,
}

impl EvalPoint {
    /// Creates a point with no merits yet.
    pub fn new(label: impl Into<String>) -> Self {
        EvalPoint {
            label: label.into(),
            merits: BTreeMap::new(),
            provenance: BTreeMap::new(),
        }
    }

    /// Adds a merit (builder style); the coordinate counts as exact.
    #[must_use]
    pub fn with(mut self, merit: FigureOfMerit, value: f64) -> Self {
        self.merits.insert(merit, value);
        self
    }

    /// Adds a provenance-tagged merit (builder style). A [`Figure`]
    /// without a value (unavailable) records only the provenance tag, so
    /// the degradation stays visible even though the coordinate is
    /// missing.
    #[must_use]
    pub fn with_figure(mut self, merit: FigureOfMerit, figure: &Figure) -> Self {
        if let Some(v) = figure.value {
            self.merits.insert(merit, v);
        }
        self.provenance.insert(merit, figure.provenance);
        self
    }

    /// The point's label (usually the core name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The merit value, if recorded.
    pub fn merit(&self, merit: &FigureOfMerit) -> Option<f64> {
        self.merits.get(merit).copied()
    }

    /// All recorded merits.
    pub fn merits(&self) -> impl Iterator<Item = (&FigureOfMerit, f64)> {
        self.merits.iter().map(|(k, &v)| (k, v))
    }

    /// The provenance of a merit: the recorded tag, or
    /// [`Provenance::Exact`] for an untagged recorded value, or `None`
    /// when the merit is entirely unknown.
    pub fn provenance(&self, merit: &FigureOfMerit) -> Option<Provenance> {
        self.provenance.get(merit).copied().or_else(|| {
            self.merits
                .contains_key(merit)
                .then_some(Provenance::Exact)
        })
    }

    /// The worst provenance over every recorded merit and tag — the
    /// point's overall degradation level. `Exact` for a point with only
    /// untagged coordinates.
    pub fn worst_provenance(&self) -> Provenance {
        self.provenance
            .values()
            .copied()
            .max()
            .unwrap_or(Provenance::Exact)
    }

    /// Whether `self` dominates `other` on `merits`: no worse on all, and
    /// strictly better on at least one. Points missing a merit are never
    /// dominated and never dominate on it.
    pub fn dominates(&self, other: &EvalPoint, merits: &[FigureOfMerit]) -> bool {
        let mut strictly_better = false;
        for m in merits {
            match (self.merit(m), other.merit(m)) {
                (Some(a), Some(b)) => {
                    if a > b {
                        return false;
                    }
                    if a < b {
                        strictly_better = true;
                    }
                }
                _ => return false,
            }
        }
        strictly_better
    }
}

/// A set of evaluation points with range, Pareto and cluster queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvaluationSpace {
    points: Vec<EvalPoint>,
}

impl EvaluationSpace {
    /// An empty space.
    pub fn new() -> Self {
        EvaluationSpace::default()
    }

    /// Adds a point.
    pub fn push(&mut self, point: EvalPoint) {
        self.points.push(point);
    }

    /// The points.
    pub fn points(&self) -> &[EvalPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `(min, max)` range of a merit over all points that record it.
    pub fn range(&self, merit: &FigureOfMerit) -> Option<(f64, f64)> {
        let mut it = self.points.iter().filter_map(|p| p.merit(merit));
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Indices of the Pareto-optimal points under `merits` (all
    /// minimized). A point missing any merit is excluded.
    pub fn pareto_front(&self, merits: &[FigureOfMerit]) -> Vec<usize> {
        let candidates: Vec<usize> = (0..self.points.len())
            .filter(|&i| merits.iter().all(|m| self.points[i].merit(m).is_some()))
            .collect();
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                !candidates
                    .iter()
                    .any(|&j| j != i && self.points[j].dominates(&self.points[i], merits))
            })
            .collect()
    }

    /// Single-linkage agglomerative clustering on the normalized merit
    /// coordinates: merges clusters while the nearest pair is closer than
    /// `threshold` (in units of the normalized 0..1 range per axis).
    /// Returns one index-vector per cluster, each sorted, clusters sorted
    /// by their smallest member.
    ///
    /// Points missing a merit are placed in singleton clusters.
    pub fn cluster(&self, merits: &[FigureOfMerit], threshold: f64) -> Vec<Vec<usize>> {
        let n = self.points.len();
        let coords: Vec<Option<Vec<f64>>> = (0..n)
            .map(|i| {
                merits
                    .iter()
                    .map(|m| self.points[i].merit(m))
                    .collect::<Option<Vec<f64>>>()
            })
            .collect();

        // Normalize each axis to 0..1 over the points that have it.
        let mut ranges = Vec::with_capacity(merits.len());
        for m in merits {
            ranges.push(self.range(m).unwrap_or((0.0, 1.0)));
        }
        let norm = |v: &[f64]| -> Vec<f64> {
            v.iter()
                .zip(&ranges)
                .map(|(&x, &(lo, hi))| if hi > lo { (x - lo) / (hi - lo) } else { 0.0 })
                .collect()
        };

        let mut cluster_of: Vec<usize> = (0..n).collect();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                let Some(ci) = &coords[i] else { continue };
                for j in (i + 1)..n {
                    if cluster_of[i] == cluster_of[j] {
                        continue;
                    }
                    let Some(cj) = &coords[j] else { continue };
                    let (a, b) = (norm(ci), norm(cj));
                    let d = a
                        .iter()
                        .zip(&b)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt();
                    if d < threshold && best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let (from, to) = (cluster_of[j], cluster_of[i]);
                    for c in cluster_of.iter_mut() {
                        if *c == from {
                            *c = to;
                        }
                    }
                }
                None => break,
            }
        }

        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &c) in cluster_of.iter().enumerate() {
            groups.entry(c).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Coherence of a *given* partition of the points (e.g. the families a
    /// hierarchy level defines) with respect to evaluation-space
    /// proximity: mean silhouette-style score in `-1..=1`, where 1 means
    /// each group is tight and far from the others.
    ///
    /// This is the metric behind the Fig. 2-vs-Fig. 3 comparison: a good
    /// generalization hierarchy scores high, an abstraction-only
    /// organisation scores low.
    pub fn partition_coherence(&self, merits: &[FigureOfMerit], groups: &[Vec<usize>]) -> f64 {
        let dist = |i: usize, j: usize| -> f64 {
            let mut d = 0.0;
            for m in merits {
                let (lo, hi) = self.range(m).unwrap_or((0.0, 1.0));
                let span = if hi > lo { hi - lo } else { 1.0 };
                let a = self.points[i].merit(m).unwrap_or(0.0);
                let b = self.points[j].merit(m).unwrap_or(0.0);
                let x = (a - b) / span;
                d += x * x;
            }
            d.sqrt()
        };
        let mut scores = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            for &i in group {
                // a = mean intra-group distance.
                let intra: Vec<f64> = group
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| dist(i, j))
                    .collect();
                let a = if intra.is_empty() {
                    0.0
                } else {
                    intra.iter().sum::<f64>() / intra.len() as f64
                };
                // b = smallest mean distance to another group.
                let mut b = f64::INFINITY;
                for (gj, other) in groups.iter().enumerate() {
                    if gj == gi || other.is_empty() {
                        continue;
                    }
                    let mean = other.iter().map(|&j| dist(i, j)).sum::<f64>() / other.len() as f64;
                    b = b.min(mean);
                }
                if b.is_finite() {
                    let s = if a.max(b) > 0.0 {
                        (b - a) / a.max(b)
                    } else {
                        0.0
                    };
                    scores.push(s);
                }
            }
        }
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

impl FromIterator<EvalPoint> for EvaluationSpace {
    fn from_iter<T: IntoIterator<Item = EvalPoint>>(iter: T) -> Self {
        EvaluationSpace {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<EvalPoint> for EvaluationSpace {
    fn extend<T: IntoIterator<Item = EvalPoint>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

foundation::impl_json_enum!(FigureOfMerit {
    AreaUm2,
    DelayNs,
    ClockNs,
    LatencyCycles,
    PowerMw,
    TimeUs,
    EnergyNj,
    Other(name),
});
foundation::impl_json_struct!(EvalPoint { label, merits, provenance });
foundation::impl_json_struct!(EvaluationSpace { points });

#[cfg(test)]
mod tests {
    use super::*;
    use FigureOfMerit::{AreaUm2, DelayNs};

    fn point(label: &str, area: f64, delay: f64) -> EvalPoint {
        EvalPoint::new(label)
            .with(AreaUm2, area)
            .with(DelayNs, delay)
    }

    fn fig3_like_space() -> EvaluationSpace {
        // Two clusters as in the paper's Fig. 3(b): {1,2,5} cheap/slow,
        // {3,4} expensive/fast.
        [
            point("1", 100.0, 900.0),
            point("2", 130.0, 850.0),
            point("3", 800.0, 200.0),
            point("4", 850.0, 180.0),
            point("5", 110.0, 950.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn ranges_cover_min_max() {
        let s = fig3_like_space();
        assert_eq!(s.range(&AreaUm2), Some((100.0, 850.0)));
        assert_eq!(s.range(&DelayNs), Some((180.0, 950.0)));
        assert_eq!(s.range(&FigureOfMerit::PowerMw), None);
    }

    #[test]
    fn pareto_front_excludes_dominated() {
        let mut s = fig3_like_space();
        // Strictly worse than point 1 on both axes.
        s.push(point("dominated", 200.0, 1000.0));
        let front = s.pareto_front(&[AreaUm2, DelayNs]);
        let labels: Vec<&str> = front.iter().map(|&i| s.points()[i].label()).collect();
        assert!(!labels.contains(&"dominated"));
        assert!(labels.contains(&"1")); // cheapest
        assert!(labels.contains(&"4")); // fastest
    }

    #[test]
    fn pareto_front_no_member_dominates_another() {
        let s = fig3_like_space();
        let front = s.pareto_front(&[AreaUm2, DelayNs]);
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(!s.points()[i].dominates(&s.points()[j], &[AreaUm2, DelayNs]));
                }
            }
        }
    }

    #[test]
    fn clustering_recovers_the_two_families() {
        let s = fig3_like_space();
        let clusters = s.cluster(&[AreaUm2, DelayNs], 0.35);
        assert_eq!(clusters.len(), 2, "clusters: {clusters:?}");
        assert_eq!(clusters[0], vec![0, 1, 4]); // designs 1, 2, 5
        assert_eq!(clusters[1], vec![2, 3]); // designs 3, 4
    }

    #[test]
    fn tight_threshold_gives_singletons() {
        let s = fig3_like_space();
        let clusters = s.cluster(&[AreaUm2, DelayNs], 1e-9);
        assert_eq!(clusters.len(), 5);
    }

    #[test]
    fn coherent_partition_scores_higher_than_incoherent() {
        let s = fig3_like_space();
        // The "generalization" grouping (by evaluation proximity).
        let good = vec![vec![0, 1, 4], vec![2, 3]];
        // An "abstraction-only" grouping that mixes the families.
        let bad = vec![vec![0, 3], vec![1, 2, 4]];
        let cg = s.partition_coherence(&[AreaUm2, DelayNs], &good);
        let cb = s.partition_coherence(&[AreaUm2, DelayNs], &bad);
        assert!(cg > 0.5, "good partition coherence {cg}");
        assert!(cb < 0.0, "bad partition coherence {cb}");
        assert!(cg > cb);
    }

    #[test]
    fn dominance_requires_all_merits_present() {
        let full = point("full", 1.0, 1.0);
        let partial = EvalPoint::new("partial").with(AreaUm2, 0.5);
        assert!(!partial.dominates(&full, &[AreaUm2, DelayNs]));
        assert!(!full.dominates(&partial, &[AreaUm2, DelayNs]));
    }

    #[test]
    fn merit_display_and_units() {
        assert_eq!(AreaUm2.to_string(), "area");
        assert_eq!(AreaUm2.unit(), "µm²");
        assert_eq!(FigureOfMerit::Other("mips".into()).to_string(), "mips");
        assert!(DelayNs.minimize());
    }

    #[test]
    fn provenance_tags_ride_along_with_merits() {
        let est = Figure::estimated(420.0, "BehaviorDelayEstimator");
        let fb = Figure::fallback(10.0, "declared-range");
        let missing = Figure::unavailable("AreaEstimator: boom");
        let p = EvalPoint::new("candidate")
            .with(AreaUm2, 900.0)
            .with_figure(DelayNs, &est)
            .with_figure(FigureOfMerit::ClockNs, &fb)
            .with_figure(FigureOfMerit::PowerMw, &missing);
        assert_eq!(p.provenance(&AreaUm2), Some(Provenance::Exact));
        assert_eq!(p.provenance(&DelayNs), Some(Provenance::Estimated));
        assert_eq!(p.provenance(&FigureOfMerit::ClockNs), Some(Provenance::Fallback));
        // Unavailable: no coordinate, but the tag survives.
        assert_eq!(p.merit(&FigureOfMerit::PowerMw), None);
        assert_eq!(
            p.provenance(&FigureOfMerit::PowerMw),
            Some(Provenance::Unavailable)
        );
        assert_eq!(p.provenance(&FigureOfMerit::EnergyNj), None);
        assert_eq!(p.worst_provenance(), Provenance::Unavailable);
        assert_eq!(
            EvalPoint::new("plain").with(AreaUm2, 1.0).worst_provenance(),
            Provenance::Exact
        );
    }

    #[test]
    fn provenance_roundtrips_through_json() {
        let p = EvalPoint::new("x")
            .with(AreaUm2, 2.0)
            .with_figure(DelayNs, &Figure::fallback(5.0, "range"));
        let json = foundation::json::encode(&p);
        let back: EvalPoint = foundation::json::decode(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn empty_space_behaviour() {
        let s = EvaluationSpace::new();
        assert!(s.is_empty());
        assert_eq!(s.pareto_front(&[AreaUm2]), Vec::<usize>::new());
        assert_eq!(s.cluster(&[AreaUm2], 0.5), Vec::<Vec<usize>>::new());
        assert_eq!(s.partition_coherence(&[AreaUm2], &[]), 0.0);
    }
}
