//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line in, one response per line out. Every request is
//! a JSON object with an `"op"` field; every response is a JSON object
//! with an `"ok"` field. Failures carry a stable `dse::diag`-style code
//! from the `DSL3xx` range (plus `DSL201` surfacing torn-journal
//! recoveries) and a human-readable `"error"` message. A request may
//! carry an `"id"` (string or number), echoed verbatim in its response
//! so pipelining clients can match the two.
//!
//! The full request/response grammar — every op, every error shape — is
//! documented in the repository README's "Server" section; this module
//! is the single place that parses and renders it.

use dse::diag::DiagCode;
use dse::value::Value;
use foundation::json::Json;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a new session (or re-attach/recover with `resume`).
    Open {
        /// Client-chosen session id; the server generates one if absent.
        session: Option<String>,
        /// Snapshot to explore. Optional on resume (the journal's
        /// sidecar metadata names it).
        snapshot: Option<String>,
        /// Recover the session's journal instead of starting fresh.
        resume: bool,
    },
    /// Enter a requirement or decide a design issue (the server
    /// dispatches on the property's kind).
    Decide {
        /// The session.
        session: String,
        /// The property to decide.
        name: String,
        /// The chosen value.
        value: Value,
    },
    /// Undo decisions: the most recent one, or back to and including
    /// `name`.
    Retract {
        /// The session.
        session: String,
        /// Undo down to (and including) this decision; bare retract
        /// undoes one.
        name: Option<String>,
    },
    /// Evaluate: absorb derived values and run ready estimators.
    Eval {
        /// The session.
        session: String,
    },
    /// One page of the cores complying with every decision so far.
    /// The response echoes the exact total (`count`) and the effective
    /// `offset`/`limit`, and flags `truncated` pages clipped by the
    /// wire-frame byte budget — million-core results are fetched page
    /// by page, never as one oversized line.
    SurvivingCores {
        /// The session.
        session: String,
        /// Cap on the number of core names returned per page (count is
        /// always exact).
        limit: Option<usize>,
        /// Number of surviving cores to skip before the page starts.
        offset: Option<usize>,
    },
    /// The still-viable options of a property, proved by the
    /// propagation solver over the session's current bindings.
    Viable {
        /// The session.
        session: String,
        /// The property to probe.
        name: String,
    },
    /// Full session report.
    Report {
        /// The session.
        session: String,
    },
    /// Close the session, removing its journal.
    Close {
        /// The session.
        session: String,
    },
    /// Server-wide counters and cache statistics.
    Stats,
    /// Drop every cached estimate produced by one tool.
    Invalidate {
        /// The estimator tool name.
        tool: String,
    },
    /// Begin graceful drain: refuse new work, finish in-flight
    /// requests, stop.
    Shutdown,
}

/// A protocol-level failure: a stable code plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The stable `DSLnnn` code.
    pub code: DiagCode,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint rendered into the response (`DSL309` carries one):
    /// how long the client should wait before retrying.
    pub retry_after_ms: Option<u64>,
}

impl ProtocolError {
    /// Builds an error.
    pub fn new(code: DiagCode, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `DSL301` malformed-request error.
    pub fn malformed(message: impl Into<String>) -> ProtocolError {
        ProtocolError::new(DiagCode::MalformedRequest, message)
    }

    /// A `DSL309` overloaded error carrying the retry hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> ProtocolError {
        let mut e = ProtocolError::new(DiagCode::Overloaded, message);
        e.retry_after_ms = Some(retry_after_ms);
        e
    }

    /// A `DSL310` deadline-exceeded error.
    pub fn deadline(message: impl Into<String>) -> ProtocolError {
        ProtocolError::new(DiagCode::DeadlineExceeded, message)
    }
}

/// The client correlation id attached to a request, echoed in the
/// response.
pub type RequestId = Option<Json>;

/// Per-request transport metadata that rides alongside the op itself:
/// the correlation `id` (echoed even when the op fails to parse) and
/// the optional cooperative `deadline_ms` budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Envelope {
    /// The correlation id, echoed verbatim in the response.
    pub id: RequestId,
    /// Cooperative deadline for this request, in milliseconds. The
    /// engine converts it to a deterministic `robust::Fuel` step budget
    /// (no wall clock), answering `DSL310` when it runs dry.
    pub deadline_ms: Option<u64>,
}

fn str_field(obj: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ProtocolError::malformed(format!(
            "field {key:?} must be a string, got {}",
            other.kind_name()
        ))),
    }
}

fn require(field: Option<String>, key: &str) -> Result<String, ProtocolError> {
    field.ok_or_else(|| ProtocolError::malformed(format!("missing required field {key:?}")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(other) => Err(ProtocolError::malformed(format!(
            "field {key:?} must be a boolean, got {}",
            other.kind_name()
        ))),
    }
}

fn usize_field(obj: &Json, key: &str) -> Result<Option<usize>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => match j.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n as usize)),
            _ => Err(ProtocolError::malformed(format!(
                "field {key:?} must be a non-negative integer"
            ))),
        },
    }
}

/// Parses a wire value: either a bare JSON scalar (`768`, `"Hardware"`,
/// `true`, `2.5`) or the codec's tagged form (`{"Int":768}`).
pub fn value_from_json(j: &Json) -> Result<Value, ProtocolError> {
    match j {
        Json::Bool(b) => Ok(Value::Flag(*b)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Real(*f)),
        Json::Object(entries) => {
            // The codec's own form is `{"Int":[768]}`; also accept the
            // unwrapped `{"Int":768}` clients naturally write.
            let normalized = match entries.as_slice() {
                [(tag, payload)] if !matches!(payload, Json::Array(_)) => Json::Object(vec![(
                    tag.clone(),
                    Json::Array(vec![payload.clone()]),
                )]),
                _ => j.clone(),
            };
            foundation::json::decode::<Value>(&foundation::json::encode(&normalized))
                .map_err(|e| ProtocolError::malformed(format!("bad tagged value: {e}")))
        }
        other => Err(ProtocolError::malformed(format!(
            "field \"value\" must be a scalar or tagged value, got {}",
            other.kind_name()
        ))),
    }
}

/// Renders a [`Value`] in the friendly scalar wire form.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Real(r) => Json::Float(*r),
        Value::Text(s) => Json::Str(s.clone()),
        Value::Flag(b) => Json::Bool(*b),
        // `Value` is non_exhaustive-proof: fall back to the display form.
        #[allow(unreachable_patterns)]
        other => Json::Str(other.to_string()),
    }
}

/// Parses one request line. Returns the request plus its [`Envelope`];
/// the envelope's id comes back even on a parse error so the client
/// can still match the failure (when the line parsed as JSON at all).
pub fn parse_request(line: &str) -> (Result<Request, ProtocolError>, Envelope) {
    let json = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            return (
                Err(ProtocolError::malformed(format!("invalid JSON: {e}"))),
                Envelope::default(),
            )
        }
    };
    let mut envelope = Envelope {
        id: json.get("id").cloned(),
        deadline_ms: None,
    };
    match json.get("deadline_ms") {
        None | Some(Json::Null) => {}
        Some(j) => match j.as_i64() {
            Some(ms) if ms >= 0 => envelope.deadline_ms = Some(ms as u64),
            _ => {
                return (
                    Err(ProtocolError::malformed(
                        "field \"deadline_ms\" must be a non-negative integer",
                    )),
                    envelope,
                )
            }
        },
    }
    (parse_request_json(&json), envelope)
}

fn parse_request_json(json: &Json) -> Result<Request, ProtocolError> {
    if json.as_object().is_none() {
        return Err(ProtocolError::malformed(format!(
            "request must be a JSON object, got {}",
            json.kind_name()
        )));
    }
    let op = require(str_field(json, "op")?, "op")?;
    match op.as_str() {
        "open" => Ok(Request::Open {
            session: str_field(json, "session")?,
            snapshot: str_field(json, "snapshot")?,
            resume: bool_field(json, "resume")?,
        }),
        "decide" => Ok(Request::Decide {
            session: require(str_field(json, "session")?, "session")?,
            name: require(str_field(json, "name")?, "name")?,
            value: value_from_json(json.get("value").ok_or_else(|| {
                ProtocolError::malformed("missing required field \"value\"")
            })?)?,
        }),
        "retract" => Ok(Request::Retract {
            session: require(str_field(json, "session")?, "session")?,
            name: str_field(json, "name")?,
        }),
        "eval" => Ok(Request::Eval {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "surviving_cores" => Ok(Request::SurvivingCores {
            session: require(str_field(json, "session")?, "session")?,
            limit: usize_field(json, "limit")?,
            offset: usize_field(json, "offset")?,
        }),
        "viable" => Ok(Request::Viable {
            session: require(str_field(json, "session")?, "session")?,
            name: require(str_field(json, "name")?, "name")?,
        }),
        "report" => Ok(Request::Report {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "close" => Ok(Request::Close {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "stats" => Ok(Request::Stats),
        "invalidate" => Ok(Request::Invalidate {
            tool: require(str_field(json, "tool")?, "tool")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            DiagCode::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Builds a success response: `{"ok":true, ...fields}` (plus the echoed
/// `id`).
pub fn ok_response(id: &RequestId, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![("ok".to_owned(), Json::Bool(true))];
    if let Some(id) = id {
        obj.push(("id".to_owned(), id.clone()));
    }
    obj.extend(fields);
    Json::Object(obj)
}

/// Builds a failure response:
/// `{"ok":false,"code":"DSLnnn","error":"..."}` (plus the echoed `id`).
pub fn err_response(id: &RequestId, err: &ProtocolError) -> Json {
    let mut obj = vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("code".to_owned(), Json::Str(err.code.as_str().to_owned())),
        ("error".to_owned(), Json::Str(err.message.clone())),
    ];
    if let Some(ms) = err.retry_after_ms {
        obj.push(("retry_after_ms".to_owned(), Json::Int(ms as i64)));
    }
    if let Some(id) = id {
        obj.insert(1, ("id".to_owned(), id.clone()));
    }
    Json::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_parse_with_scalar_and_tagged_values() {
        let (req, env) =
            parse_request(r#"{"op":"decide","session":"s1","name":"EOL","value":768,"id":7}"#);
        assert_eq!(
            req.unwrap(),
            Request::Decide {
                session: "s1".into(),
                name: "EOL".into(),
                value: Value::Int(768),
            }
        );
        assert_eq!(env.id, Some(Json::Int(7)));
        assert_eq!(env.deadline_ms, None);

        let (req, _) = parse_request(
            r#"{"op":"decide","session":"s1","name":"Algorithm","value":{"Text":"Montgomery"}}"#,
        );
        assert!(
            matches!(req.unwrap(), Request::Decide { value, .. } if value == Value::from("Montgomery"))
        );

        let (req, _) = parse_request(r#"{"op":"viable","session":"s1","name":"Algorithm"}"#);
        assert_eq!(
            req.unwrap(),
            Request::Viable {
                session: "s1".into(),
                name: "Algorithm".into(),
            }
        );

        let (req, _) = parse_request(r#"{"op":"open","snapshot":"crypto","resume":true}"#);
        assert_eq!(
            req.unwrap(),
            Request::Open {
                session: None,
                snapshot: Some("crypto".into()),
                resume: true,
            }
        );
    }

    #[test]
    fn malformed_and_unknown_requests_get_stable_codes() {
        let (req, _) = parse_request("not json");
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request("[1,2]");
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request(r#"{"op":"frobnicate"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::UnknownOp);
        let (req, _) = parse_request(r#"{"op":"decide","session":"s"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request(r#"{"op":"eval","session":5}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
    }

    #[test]
    fn deadlines_parse_and_bad_ones_are_malformed() {
        let (req, env) = parse_request(r#"{"op":"stats","id":1,"deadline_ms":250}"#);
        assert!(req.is_ok());
        assert_eq!(env.deadline_ms, Some(250));

        // The id still comes back when only the deadline is bad.
        let (req, env) = parse_request(r#"{"op":"stats","id":2,"deadline_ms":-5}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        assert_eq!(env.id, Some(Json::Int(2)));
        let (req, _) = parse_request(r#"{"op":"stats","deadline_ms":"soon"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
    }

    #[test]
    fn overload_errors_carry_the_retry_hint() {
        let err = ProtocolError::overloaded("connection cap reached", 200);
        let rendered = err_response(&Some(Json::Int(9)), &err);
        assert_eq!(rendered.get("code").and_then(Json::as_str), Some("DSL309"));
        assert_eq!(
            rendered.get("retry_after_ms").and_then(Json::as_i64),
            Some(200)
        );
        assert_eq!(rendered.get("id").and_then(Json::as_i64), Some(9));
        // Other errors do not grow the field.
        let plain = err_response(&None, &ProtocolError::deadline("budget ran out"));
        assert_eq!(plain.get("code").and_then(Json::as_str), Some("DSL310"));
        assert_eq!(plain.get("retry_after_ms"), None);
    }

    #[test]
    fn responses_echo_the_id() {
        let id = Some(Json::Str("req-1".into()));
        let ok = ok_response(&id, vec![("x".into(), Json::Int(1))]);
        assert_eq!(ok.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response(&id, &ProtocolError::malformed("bad"));
        assert_eq!(err.get("code").and_then(Json::as_str), Some("DSL301"));
        assert_eq!(err.get("id").and_then(Json::as_str), Some("req-1"));
    }

    #[test]
    fn values_roundtrip_through_the_friendly_form() {
        for v in [
            Value::Int(42),
            Value::Real(2.5),
            Value::Text("x".into()),
            Value::Flag(true),
        ] {
            let j = value_to_json(&v);
            assert_eq!(value_from_json(&j).unwrap(), v);
        }
    }
}
