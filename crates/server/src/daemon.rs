//! The TCP front: one thread per connection over
//! [`foundation::net::TcpServer`], with graceful drain and admission
//! control.
//!
//! Each connection reads newline-delimited JSON requests. Whatever the
//! client has pipelined (every complete line already buffered) is
//! handed to [`Engine::handle_batch`] as one batch, so independent
//! sessions on one connection still fan out across the worker pool
//! while responses come back in request order.
//!
//! Overload protection (tunables in [`crate::guard::GuardConfig`]):
//! a connection past `max_connections` is answered with a single
//! `DSL309` line (carrying `retry_after_ms`) and dropped; pipelined
//! requests past `max_inflight_per_conn` in one batch are shed the same
//! way, in request order, so a backed-off client loses nothing silently;
//! a connection idle past `read_timeout` mid-read is reaped — the
//! slow-loris defense. Both registries (socket clones for drain wake-up,
//! thread handles for join) are swept as connections finish, so a
//! long-lived daemon's bookkeeping is bounded by *live* connections,
//! not by every connection it ever accepted.
//!
//! Drain protocol: a `shutdown` request flips the engine's draining
//! flag. The connection that carried it answers, then trips the accept
//! loop's stop flag; [`Server::run`] wakes every blocked reader with
//! `shutdown(Read)` — pending responses still flush, the sockets just
//! stop producing requests — and joins all connection threads before
//! returning.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::{io, thread};

use foundation::net::{self, TcpServer, MAX_WIRE_BYTES};

use crate::engine::Engine;
use crate::protocol::{err_response, parse_request, render_err_into, ProtocolError};

/// Registries of live connections: socket clones (for drain wake-up)
/// and thread handles (for join), both keyed by a per-connection id so
/// finished entries can be swept instead of accumulating forever.
#[derive(Debug, Default)]
struct Registry {
    conns: Mutex<HashMap<u64, TcpStream>>,
    threads: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Connections currently being served (admission-control gauge; the
    /// maps above may briefly lag it during setup/teardown).
    active: AtomicUsize,
}

impl Registry {
    /// Joins every thread whose connection already finished. Called on
    /// each accept, so the handle map is bounded by live connections
    /// plus at most the batch that ended since the last accept.
    fn sweep_finished(&self) {
        let finished: Vec<u64> = {
            let threads = self.threads.lock().unwrap();
            threads
                .iter()
                .filter(|(_, h)| h.is_finished())
                .map(|(&id, _)| id)
                .collect()
        };
        for id in finished {
            let handle = self.threads.lock().unwrap().remove(&id);
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

/// Removes a connection's registry entries when its thread exits, on
/// every path out (EOF, error, reap, drain, panic).
struct ConnGuard {
    registry: Arc<Registry>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.registry.conns.lock().unwrap().remove(&self.id);
        self.registry.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon: the listener thread plus its connection threads.
#[derive(Debug)]
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<io::Result<()>>>,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds and starts accepting (bind to port 0 for an ephemeral
    /// port; see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind error.
    pub fn start(engine: Arc<Engine>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let tcp = TcpServer::bind(addr)?;
        let local = tcp.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::default());
        let next_id = AtomicU64::new(0);

        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                tcp.serve(&stop, |stream, _peer| {
                    if engine.is_draining() {
                        return; // dropping the stream refuses the connection
                    }
                    registry.sweep_finished();
                    let guard_cfg = engine.guard();
                    let admitted =
                        registry.active.fetch_add(1, Ordering::SeqCst) < guard_cfg.max_connections;
                    if !admitted {
                        registry.active.fetch_sub(1, Ordering::SeqCst);
                        engine.note_overload();
                        refuse_connection(stream, guard_cfg.retry_after_ms);
                        return;
                    }
                    let _ = stream.set_read_timeout(guard_cfg.read_timeout);
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        registry.conns.lock().unwrap().insert(id, clone);
                    }
                    let engine = Arc::clone(&engine);
                    let stop = Arc::clone(&stop);
                    let conn_guard = ConnGuard {
                        registry: Arc::clone(&registry),
                        id,
                    };
                    let handle = thread::spawn(move || {
                        let _cleanup = conn_guard;
                        connection(&engine, stream, &stop);
                    });
                    registry.threads.lock().unwrap().insert(id, handle);
                })
            })
        };

        Ok(Server {
            engine,
            addr: local,
            stop,
            accept: Some(accept),
            registry,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the listener.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.registry.active.load(Ordering::SeqCst)
    }

    /// Requests drain from outside the protocol (equivalent to a
    /// `shutdown` request): stops accepting and wakes blocked readers.
    pub fn request_stop(&self) {
        self.engine.begin_drain();
        self.stop.store(true, Ordering::SeqCst);
        for s in self.registry.conns.lock().unwrap().values() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }

    /// Blocks until the daemon drains (a `shutdown` request, or
    /// [`Server::request_stop`] from another thread), then joins every
    /// connection thread.
    ///
    /// # Errors
    ///
    /// A fatal accept-loop error.
    pub fn run(mut self) -> io::Result<()> {
        let result = match self.accept.take() {
            Some(h) => h.join().unwrap_or_else(|_| {
                Err(io::Error::other("accept thread panicked"))
            }),
            None => Ok(()),
        };
        // The accept thread has exited, so both registries are final.
        for s in self.registry.conns.lock().unwrap().values() {
            let _ = s.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self.registry.threads.lock().unwrap();
            threads.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        result
    }
}

/// Answers an over-cap connection with one structured refusal line and
/// drops it.
fn refuse_connection(stream: TcpStream, retry_after_ms: u64) {
    let resp = err_response(
        &None,
        &ProtocolError::overloaded("connection limit reached", retry_after_ms),
    );
    let mut writer = io::BufWriter::new(stream);
    let _ = net::write_line(&mut writer, &foundation::json::encode(&resp));
    let _ = writer.flush();
}

/// Whether a read error means the peer merely went quiet (read timeout:
/// reap the connection) rather than sent something unframeable.
fn is_idle_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One connection: read everything pipelined, answer as a batch, until
/// EOF, error, idle timeout, or drain.
///
/// The hot path is buffer-reuse end to end: one warm scratch buffer
/// absorbs every request line, one warm response buffer absorbs every
/// rendered reply, and a pipelined burst is flushed as coalesced
/// vectored writes — in steady state the wire path allocates nothing.
fn connection(engine: &Engine, stream: TcpStream, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    let mut line_buf: Vec<u8> = Vec::new();
    let mut resp_buf: Vec<u8> = Vec::new();
    loop {
        match net::read_line_into(&mut reader, MAX_WIRE_BYTES, &mut line_buf) {
            Ok(Some(_)) => {}
            Ok(None) => return, // clean EOF
            Err(e) if is_idle_timeout(&e) => return, // reap the idle connection
            Err(e) => {
                // An unframeable line (oversized / not UTF-8): tell the
                // client why, then drop the connection — the stream
                // cannot be resynchronized.
                resp_buf.clear();
                render_err_into(&mut resp_buf, None, &ProtocolError::malformed(e.to_string()));
                resp_buf.push(b'\n');
                let _ = writer.write_all(&resp_buf).and_then(|()| writer.flush());
                return;
            }
        }
        if !reader.buffer().contains(&b'\n') {
            // The common interactive case — one request in, one response
            // out — runs entirely through the reused buffers.
            let line =
                std::str::from_utf8(&line_buf).expect("read_line_into validated UTF-8");
            resp_buf.clear();
            engine.handle_line_into(line, &mut resp_buf);
            resp_buf.push(b'\n');
            if writer
                .write_all(&resp_buf)
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
        } else {
            // Greedily take every complete line the client has already
            // pipelined: they become one parallel batch, answered with
            // one coalesced vectored write per burst.
            let mut batch: Vec<String> = Vec::new();
            batch.push(
                std::str::from_utf8(&line_buf)
                    .expect("read_line_into validated UTF-8")
                    .to_owned(),
            );
            while reader.buffer().contains(&b'\n') {
                match net::read_line_into(&mut reader, MAX_WIRE_BYTES, &mut line_buf) {
                    Ok(Some(line)) => batch.push(line.to_owned()),
                    _ => break,
                }
            }
            // Backpressure: admit up to the per-connection cap, shed the
            // rest with DSL309 so the client can retry after backing
            // off — responses still come back in request order.
            let guard_cfg = engine.guard();
            let cap = guard_cfg.max_inflight_per_conn.max(1).min(batch.len());
            let shed = batch.split_off(cap);
            let mut responses = engine.handle_batch_into(&batch);
            for response in &mut responses {
                response.push(b'\n');
            }
            for line in &shed {
                engine.note_overload();
                let (_, env) = parse_request(line);
                let mut bytes = Vec::new();
                foundation::json::write_json(
                    &mut bytes,
                    &err_response(
                        &env.id,
                        &ProtocolError::overloaded(
                            format!(
                                "batch limit reached ({} in flight on this connection)",
                                guard_cfg.max_inflight_per_conn
                            ),
                            guard_cfg.retry_after_ms,
                        ),
                    ),
                );
                bytes.push(b'\n');
                responses.push(bytes);
            }
            if net::write_lines_coalesced(&mut writer, &responses).is_err() {
                return;
            }
        }
        if engine.is_draining() {
            // Carry the drain to the accept loop; run() wakes the rest.
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}
