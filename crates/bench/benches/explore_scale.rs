//! Million-core scale benchmarks of the columnar core store: cold
//! index builds, AND-merge narrowing queries, and the incremental
//! decide/retract path against the legacy from-scratch scan.

fn main() {
    bench::suites::explore_scale().finish();
}
