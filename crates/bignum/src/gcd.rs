//! Greatest common divisor, extended Euclid, and modular inverse.
//!
//! The Montgomery machinery needs `-M⁻¹ mod r` (the `(r - M₀)⁻¹` factor in
//! line 4 of the paper's Fig. 10) and the RSA demo needs `d = e⁻¹ mod φ(n)`.

use crate::UBig;

/// A signed wrapper used only inside the extended-Euclid loop.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Signed {
    negative: bool,
    magnitude: UBig,
}

impl Signed {
    fn from_ubig(v: UBig) -> Self {
        Signed {
            negative: false,
            magnitude: v,
        }
    }

    fn sub_mul(&self, q: &UBig, other: &Signed) -> Signed {
        // self - q*other with full sign handling.
        let qm = q * &other.magnitude;
        if self.negative == other.negative {
            // same sign: |self| - |q·other| may flip sign
            match self.magnitude.checked_sub(&qm) {
                Some(m) => Signed {
                    negative: self.negative && !m.is_zero(),
                    magnitude: m,
                },
                None => Signed {
                    negative: !self.negative,
                    magnitude: &qm - &self.magnitude,
                },
            }
        } else {
            Signed {
                negative: self.negative,
                magnitude: &self.magnitude + &qm,
            }
        }
    }
}

/// Computes `gcd(a, b)`.
///
/// ```
/// # use bignum::{gcd, UBig};
/// assert_eq!(gcd(&UBig::from(48u64), &UBig::from(36u64)), UBig::from(12u64));
/// ```
pub fn gcd(a: &UBig, b: &UBig) -> UBig {
    let (mut x, mut y) = (a.clone(), b.clone());
    while !y.is_zero() {
        let r = x.rem(&y);
        x = y;
        y = r;
    }
    x
}

/// Extended Euclid: returns `(g, x mod b', y mod a')` such that
/// `a·x + b·y = g = gcd(a, b)`, with `x` reported non-negative modulo
/// `b / g` lifted into `0..b` (and symmetrically for `y`).
///
/// For the common inverse use-case prefer [`mod_inverse`].
pub fn extended_gcd(a: &UBig, b: &UBig) -> (UBig, UBig, UBig) {
    let mut old_r = a.clone();
    let mut r = b.clone();
    let mut old_s = Signed::from_ubig(UBig::one());
    let mut s = Signed::from_ubig(UBig::zero());
    let mut old_t = Signed::from_ubig(UBig::zero());
    let mut t = Signed::from_ubig(UBig::one());

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let new_s = old_s.sub_mul(&q, &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = old_t.sub_mul(&q, &t);
        old_t = std::mem::replace(&mut t, new_t);
    }

    let x = normalize_mod(&old_s, b);
    let y = normalize_mod(&old_t, a);
    (old_r, x, y)
}

fn normalize_mod(v: &Signed, m: &UBig) -> UBig {
    if m.is_zero() {
        return v.magnitude.clone();
    }
    let mag = v.magnitude.rem(m);
    if v.negative && !mag.is_zero() {
        m.checked_sub(&mag).expect("mag < m")
    } else {
        mag
    }
}

/// Computes `a⁻¹ mod m`, or `None` when `gcd(a, m) != 1`.
///
/// ```
/// # use bignum::{mod_inverse, UBig};
/// let inv = mod_inverse(&UBig::from(3u64), &UBig::from(7u64)).unwrap();
/// assert_eq!(inv, UBig::from(5u64)); // 3·5 = 15 ≡ 1 (mod 7)
/// assert!(mod_inverse(&UBig::from(2u64), &UBig::from(4u64)).is_none());
/// ```
pub fn mod_inverse(a: &UBig, m: &UBig) -> Option<UBig> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let (g, x, _) = extended_gcd(&a.rem(m), m);
    if g.is_one() {
        Some(x)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&UBig::zero(), &UBig::from(5u64)), UBig::from(5u64));
        assert_eq!(gcd(&UBig::from(5u64), &UBig::zero()), UBig::from(5u64));
        assert_eq!(
            gcd(&UBig::from(270u64), &UBig::from(192u64)),
            UBig::from(6u64)
        );
    }

    #[test]
    fn bezout_identity_holds() {
        let a = UBig::from(240u64);
        let b = UBig::from(46u64);
        let (g, x, y) = extended_gcd(&a, &b);
        assert_eq!(g, UBig::from(2u64));
        // a·x + b·y ≡ g (mod a·b); check over the integers lifted mod lcm.
        let lhs = (&a * &x + &b * &y).rem(&(&a * &b));
        assert_eq!(lhs.rem(&a), g.rem(&a));
        assert_eq!(lhs.rem(&b), g.rem(&b));
    }

    #[test]
    fn inverse_times_value_is_one() {
        let m = UBig::from_hex("fffffffb").unwrap(); // prime 2^32 - 5
        for v in [2u64, 3, 65537, 0xdeadbeef] {
            let a = UBig::from(v);
            let inv = mod_inverse(&a, &m).expect("prime modulus");
            assert_eq!(a.mod_mul(&inv, &m), UBig::one(), "v = {v}");
        }
    }

    #[test]
    fn non_coprime_has_no_inverse() {
        assert!(mod_inverse(&UBig::from(6u64), &UBig::from(9u64)).is_none());
        assert!(mod_inverse(&UBig::zero(), &UBig::from(9u64)).is_none());
    }

    #[test]
    fn inverse_mod_power_of_two() {
        // Odd values are invertible mod 2^k — the exact precomputation the
        // Montgomery quotient digit needs.
        let r = UBig::power_of_two(32);
        let m0 = UBig::from(0x1234_5677u64); // odd
        let inv = mod_inverse(&m0, &r).unwrap();
        assert_eq!(m0.mod_mul(&inv, &r), UBig::one());
    }

    #[test]
    fn degenerate_moduli() {
        assert!(mod_inverse(&UBig::from(3u64), &UBig::one()).is_none());
        assert!(mod_inverse(&UBig::from(3u64), &UBig::zero()).is_none());
    }
}
