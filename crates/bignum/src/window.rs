//! Windowed (2ᵏ-ary) modular exponentiation.
//!
//! The coprocessor's exponentiation *method* is itself a design issue:
//! left-to-right binary square-and-multiply performs `bits` squarings and
//! ≈`bits/2` multiplications, while a 2ᵏ-ary window trades `2ᵏ − 2` table
//! precomputations for ≈`bits·(2ᵏ−1)/(k·2ᵏ)` multiplications. This module
//! provides the reference implementation and the analytic count model the
//! layer's quantitative constraint uses.

use crate::{MontgomeryContext, MontgomeryError, UBig};

/// Analytic multiplication counts for one `bits`-bit exponentiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCounts {
    /// Squarings performed.
    pub squarings: u64,
    /// Non-square multiplications (window applications).
    pub multiplications: u64,
    /// Table precomputation multiplications.
    pub precomputations: u64,
}

impl WindowCounts {
    /// Total modular multiplications.
    pub fn total(&self) -> u64 {
        self.squarings + self.multiplications + self.precomputations
    }
}

/// Expected operation counts for a `bits`-bit random exponent with window
/// size `k` (`k = 1` is plain binary).
///
/// # Panics
///
/// Panics if `k == 0` or `k > 8`.
pub fn expected_counts(bits: u32, k: u32) -> WindowCounts {
    assert!((1..=8).contains(&k), "window size must be in 1..=8");
    let windows = bits.div_ceil(k) as u64;
    let nonzero_fraction = 1.0 - 1.0 / f64::from(1u32 << k);
    WindowCounts {
        squarings: bits as u64,
        multiplications: (windows as f64 * nonzero_fraction).round() as u64,
        precomputations: if k == 1 { 0 } else { (1u64 << k) - 2 },
    }
}

/// Computes `base^exp mod m` with a 2ᵏ-ary window over Montgomery
/// arithmetic, returning the result and the *actual* operation counts.
///
/// # Errors
///
/// Returns an error for even or tiny moduli.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 8`, or if `base >= m`.
pub fn mod_pow_windowed(
    base: &UBig,
    exp: &UBig,
    m: &UBig,
    k: u32,
) -> Result<(UBig, WindowCounts), MontgomeryError> {
    assert!((1..=8).contains(&k), "window size must be in 1..=8");
    assert!(base < m, "base must be reduced below the modulus");
    let ctx = MontgomeryContext::new(m)?;
    let mut counts = WindowCounts {
        squarings: 0,
        multiplications: 0,
        precomputations: 0,
    };

    // Table of base^i in the Montgomery domain, i in 0..2^k.
    let one_bar = ctx.to_mont(&UBig::one());
    let base_bar = ctx.to_mont(base);
    let table_len = 1usize << k;
    let mut table = Vec::with_capacity(table_len);
    table.push(one_bar.clone());
    table.push(base_bar.clone());
    for i in 2..table_len {
        table.push(ctx.mont_mul(&table[i - 1], &base_bar));
        counts.precomputations += 1;
    }

    let bits = exp.bit_len();
    let windows = bits.div_ceil(k);
    let mut acc = one_bar;
    for w in (0..windows).rev() {
        if w != windows - 1 {
            for _ in 0..k {
                acc = ctx.mont_mul(&acc, &acc);
                counts.squarings += 1;
            }
        } else {
            // Leading window: squarings before the first multiply would be
            // no-ops on acc = 1; real implementations skip them.
        }
        let digit = exp.digit(w, k) as usize;
        if digit != 0 {
            acc = ctx.mont_mul(&acc, &table[digit]);
            counts.multiplications += 1;
        }
    }
    Ok((ctx.from_mont(&acc), counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_below;
    use foundation::rng::{SeedableRng, StdRng};

    fn odd_modulus(bits: u32, rng: &mut StdRng) -> UBig {
        let mut m = uniform_below(&UBig::power_of_two(bits), rng);
        m.set_bit(bits - 1, true);
        m.set_bit(0, true);
        m
    }

    #[test]
    fn windowed_matches_binary_for_all_window_sizes() {
        let mut rng = StdRng::seed_from_u64(71);
        let m = odd_modulus(128, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(96), &mut rng);
        let expect = base.mod_pow(&exp, &m);
        for k in 1..=6 {
            let (got, counts) = mod_pow_windowed(&base, &exp, &m, k).unwrap();
            assert_eq!(got, expect, "k = {k}");
            assert!(counts.total() > 0);
        }
    }

    #[test]
    fn edge_exponents() {
        let m = UBig::from(1000003u64);
        let base = UBig::from(42u64);
        let (got, counts) = mod_pow_windowed(&base, &UBig::zero(), &m, 4).unwrap();
        assert_eq!(got, UBig::one());
        assert_eq!(counts.squarings, 0);
        let (got, _) = mod_pow_windowed(&base, &UBig::one(), &m, 4).unwrap();
        assert_eq!(got, base);
    }

    #[test]
    fn larger_windows_do_fewer_multiplications() {
        let mut rng = StdRng::seed_from_u64(72);
        let m = odd_modulus(256, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(256), &mut rng);
        let (_, k1) = mod_pow_windowed(&base, &exp, &m, 1).unwrap();
        let (_, k4) = mod_pow_windowed(&base, &exp, &m, 4).unwrap();
        assert!(k4.multiplications < k1.multiplications);
        // But the table costs something.
        assert_eq!(k4.precomputations, 14);
        assert_eq!(k1.precomputations, 0);
    }

    #[test]
    fn expected_counts_track_actuals() {
        let mut rng = StdRng::seed_from_u64(73);
        let m = odd_modulus(512, &mut rng);
        let base = uniform_below(&m, &mut rng);
        let exp = uniform_below(&UBig::power_of_two(512), &mut rng);
        for k in [1u32, 2, 4, 6] {
            let (_, actual) = mod_pow_windowed(&base, &exp, &m, k).unwrap();
            let model = expected_counts(512, k);
            assert_eq!(model.precomputations, actual.precomputations, "k={k}");
            let mult_ratio = actual.multiplications as f64 / model.multiplications as f64;
            assert!((0.8..=1.2).contains(&mult_ratio), "k={k}: {mult_ratio}");
            // Squarings: model counts all; the implementation skips the
            // leading window's.
            assert!(actual.squarings <= model.squarings);
            assert!(actual.squarings + k as u64 >= model.squarings.saturating_sub(k as u64));
        }
    }

    #[test]
    fn sweet_spot_exists() {
        // Total multiplications is non-monotone in k: k=4..5 beats both
        // k=1 and k=8 for kilobit exponents.
        let totals: Vec<u64> = (1..=8).map(|k| expected_counts(1024, k).total()).collect();
        let k1 = totals[0];
        let best = *totals.iter().min().unwrap();
        let k8 = totals[7];
        assert!(best < k1);
        assert!(best < k8);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_panics() {
        let _ = expected_counts(64, 0);
    }
}
