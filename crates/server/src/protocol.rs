//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line in, one response per line out. Every request is
//! a JSON object with an `"op"` field; every response is a JSON object
//! with an `"ok"` field. Failures carry a stable `dse::diag`-style code
//! from the `DSL3xx` range (plus `DSL201` surfacing torn-journal
//! recoveries) and a human-readable `"error"` message. A request may
//! carry an `"id"` (string or number), echoed verbatim in its response
//! so pipelining clients can match the two.
//!
//! The full request/response grammar — every op, every error shape — is
//! documented in the repository README's "Server" section; this module
//! is the single place that parses and renders it.

use dse::diag::DiagCode;
use dse::value::Value;
use foundation::json::{Json, Number, Reader, Writer};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a new session (or re-attach/recover with `resume`).
    Open {
        /// Client-chosen session id; the server generates one if absent.
        session: Option<String>,
        /// Snapshot to explore. Optional on resume (the journal's
        /// sidecar metadata names it).
        snapshot: Option<String>,
        /// Recover the session's journal instead of starting fresh.
        resume: bool,
    },
    /// Enter a requirement or decide a design issue (the server
    /// dispatches on the property's kind).
    Decide {
        /// The session.
        session: String,
        /// The property to decide.
        name: String,
        /// The chosen value.
        value: Value,
    },
    /// Undo decisions: the most recent one, or back to and including
    /// `name`.
    Retract {
        /// The session.
        session: String,
        /// Undo down to (and including) this decision; bare retract
        /// undoes one.
        name: Option<String>,
    },
    /// Evaluate: absorb derived values and run ready estimators.
    Eval {
        /// The session.
        session: String,
    },
    /// One page of the cores complying with every decision so far.
    /// The response echoes the exact total (`count`) and the effective
    /// `offset`/`limit`, and flags `truncated` pages clipped by the
    /// wire-frame byte budget — million-core results are fetched page
    /// by page, never as one oversized line.
    SurvivingCores {
        /// The session.
        session: String,
        /// Cap on the number of core names returned per page (count is
        /// always exact).
        limit: Option<usize>,
        /// Number of surviving cores to skip before the page starts.
        offset: Option<usize>,
    },
    /// The still-viable options of a property, proved by the
    /// propagation solver over the session's current bindings.
    Viable {
        /// The session.
        session: String,
        /// The property to probe.
        name: String,
    },
    /// Full session report.
    Report {
        /// The session.
        session: String,
    },
    /// Close the session, removing its journal.
    Close {
        /// The session.
        session: String,
    },
    /// Server-wide counters and cache statistics.
    Stats,
    /// Drop every cached estimate produced by one tool.
    Invalidate {
        /// The estimator tool name.
        tool: String,
    },
    /// Begin graceful drain: refuse new work, finish in-flight
    /// requests, stop.
    Shutdown,
}

/// A protocol-level failure: a stable code plus a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The stable `DSLnnn` code.
    pub code: DiagCode,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint rendered into the response (`DSL309` carries one):
    /// how long the client should wait before retrying.
    pub retry_after_ms: Option<u64>,
}

impl ProtocolError {
    /// Builds an error.
    pub fn new(code: DiagCode, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `DSL301` malformed-request error.
    pub fn malformed(message: impl Into<String>) -> ProtocolError {
        ProtocolError::new(DiagCode::MalformedRequest, message)
    }

    /// A `DSL309` overloaded error carrying the retry hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> ProtocolError {
        let mut e = ProtocolError::new(DiagCode::Overloaded, message);
        e.retry_after_ms = Some(retry_after_ms);
        e
    }

    /// A `DSL310` deadline-exceeded error.
    pub fn deadline(message: impl Into<String>) -> ProtocolError {
        ProtocolError::new(DiagCode::DeadlineExceeded, message)
    }
}

/// The client correlation id attached to a request, echoed in the
/// response.
pub type RequestId = Option<Json>;

/// Per-request transport metadata that rides alongside the op itself:
/// the correlation `id` (echoed even when the op fails to parse) and
/// the optional cooperative `deadline_ms` budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Envelope {
    /// The correlation id, echoed verbatim in the response.
    pub id: RequestId,
    /// Cooperative deadline for this request, in milliseconds. The
    /// engine converts it to a deterministic `robust::Fuel` step budget
    /// (no wall clock), answering `DSL310` when it runs dry.
    pub deadline_ms: Option<u64>,
}

fn str_field(obj: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ProtocolError::malformed(format!(
            "field {key:?} must be a string, got {}",
            other.kind_name()
        ))),
    }
}

fn require(field: Option<String>, key: &str) -> Result<String, ProtocolError> {
    field.ok_or_else(|| ProtocolError::malformed(format!("missing required field {key:?}")))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(other) => Err(ProtocolError::malformed(format!(
            "field {key:?} must be a boolean, got {}",
            other.kind_name()
        ))),
    }
}

fn usize_field(obj: &Json, key: &str) -> Result<Option<usize>, ProtocolError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => match j.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n as usize)),
            _ => Err(ProtocolError::malformed(format!(
                "field {key:?} must be a non-negative integer"
            ))),
        },
    }
}

/// Parses a wire value: either a bare JSON scalar (`768`, `"Hardware"`,
/// `true`, `2.5`) or the codec's tagged form (`{"Int":768}`).
pub fn value_from_json(j: &Json) -> Result<Value, ProtocolError> {
    match j {
        Json::Bool(b) => Ok(Value::Flag(*b)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Real(*f)),
        Json::Object(entries) => {
            // The codec's own form is `{"Int":[768]}`; also accept the
            // unwrapped `{"Int":768}` clients naturally write.
            let normalized = match entries.as_slice() {
                [(tag, payload)] if !matches!(payload, Json::Array(_)) => Json::Object(vec![(
                    tag.clone(),
                    Json::Array(vec![payload.clone()]),
                )]),
                _ => j.clone(),
            };
            foundation::json::decode::<Value>(&foundation::json::encode(&normalized))
                .map_err(|e| ProtocolError::malformed(format!("bad tagged value: {e}")))
        }
        other => Err(ProtocolError::malformed(format!(
            "field \"value\" must be a scalar or tagged value, got {}",
            other.kind_name()
        ))),
    }
}

/// Renders a [`Value`] in the friendly scalar wire form.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Real(r) => Json::Float(*r),
        Value::Text(s) => Json::Str(s.clone()),
        Value::Flag(b) => Json::Bool(*b),
        // `Value` is non_exhaustive-proof: fall back to the display form.
        #[allow(unreachable_patterns)]
        other => Json::Str(other.to_string()),
    }
}

/// Parses one request line. Returns the request plus its [`Envelope`];
/// the envelope's id comes back even on a parse error so the client
/// can still match the failure (when the line parsed as JSON at all).
pub fn parse_request(line: &str) -> (Result<Request, ProtocolError>, Envelope) {
    let json = match Json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            return (
                Err(ProtocolError::malformed(format!("invalid JSON: {e}"))),
                Envelope::default(),
            )
        }
    };
    let mut envelope = Envelope {
        id: json.get("id").cloned(),
        deadline_ms: None,
    };
    match json.get("deadline_ms") {
        None | Some(Json::Null) => {}
        Some(j) => match j.as_i64() {
            Some(ms) if ms >= 0 => envelope.deadline_ms = Some(ms as u64),
            _ => {
                return (
                    Err(ProtocolError::malformed(
                        "field \"deadline_ms\" must be a non-negative integer",
                    )),
                    envelope,
                )
            }
        },
    }
    (parse_request_json(&json), envelope)
}

fn parse_request_json(json: &Json) -> Result<Request, ProtocolError> {
    if json.as_object().is_none() {
        return Err(ProtocolError::malformed(format!(
            "request must be a JSON object, got {}",
            json.kind_name()
        )));
    }
    let op = require(str_field(json, "op")?, "op")?;
    match op.as_str() {
        "open" => Ok(Request::Open {
            session: str_field(json, "session")?,
            snapshot: str_field(json, "snapshot")?,
            resume: bool_field(json, "resume")?,
        }),
        "decide" => Ok(Request::Decide {
            session: require(str_field(json, "session")?, "session")?,
            name: require(str_field(json, "name")?, "name")?,
            value: value_from_json(json.get("value").ok_or_else(|| {
                ProtocolError::malformed("missing required field \"value\"")
            })?)?,
        }),
        "retract" => Ok(Request::Retract {
            session: require(str_field(json, "session")?, "session")?,
            name: str_field(json, "name")?,
        }),
        "eval" => Ok(Request::Eval {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "surviving_cores" => Ok(Request::SurvivingCores {
            session: require(str_field(json, "session")?, "session")?,
            limit: usize_field(json, "limit")?,
            offset: usize_field(json, "offset")?,
        }),
        "viable" => Ok(Request::Viable {
            session: require(str_field(json, "session")?, "session")?,
            name: require(str_field(json, "name")?, "name")?,
        }),
        "report" => Ok(Request::Report {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "close" => Ok(Request::Close {
            session: require(str_field(json, "session")?, "session")?,
        }),
        "stats" => Ok(Request::Stats),
        "invalidate" => Ok(Request::Invalidate {
            tool: require(str_field(json, "tool")?, "tool")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            DiagCode::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Builds a success response: `{"ok":true, ...fields}` (plus the echoed
/// `id`).
pub fn ok_response(id: &RequestId, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![("ok".to_owned(), Json::Bool(true))];
    if let Some(id) = id {
        obj.push(("id".to_owned(), id.clone()));
    }
    obj.extend(fields);
    Json::Object(obj)
}

/// Builds a failure response:
/// `{"ok":false,"code":"DSLnnn","error":"..."}` (plus the echoed `id`).
pub fn err_response(id: &RequestId, err: &ProtocolError) -> Json {
    let mut obj = vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("code".to_owned(), Json::Str(err.code.as_str().to_owned())),
        ("error".to_owned(), Json::Str(err.message.clone())),
    ];
    if let Some(ms) = err.retry_after_ms {
        obj.push(("retry_after_ms".to_owned(), Json::Int(ms as i64)));
    }
    if let Some(id) = id {
        obj.insert(1, ("id".to_owned(), id.clone()));
    }
    Json::Object(obj)
}

/// A request value borrowed straight from the wire line — the zero-copy
/// sibling of [`Value`] for the hot-path decoder. Only scalar forms are
/// representable; tagged values force the tree fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// An integer scalar.
    Int(i64),
    /// A real scalar.
    Real(f64),
    /// A text scalar, borrowed from the request line.
    Text(&'a str),
    /// A boolean scalar.
    Flag(bool),
}

impl ValueRef<'_> {
    /// Converts to the owned [`Value`] the engine stores.
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Int(i) => Value::Int(i),
            ValueRef::Real(r) => Value::Real(r),
            ValueRef::Text(s) => Value::Text(s.to_owned()),
            ValueRef::Flag(b) => Value::Flag(b),
        }
    }

    /// Renders the scalar exactly as [`value_to_json`] + the tree
    /// serializer would.
    pub fn write(self, w: &mut Writer<'_>) {
        match self {
            ValueRef::Int(i) => w.int_value(i),
            ValueRef::Real(r) => w.float_value(r),
            ValueRef::Text(s) => w.str_value(s),
            ValueRef::Flag(b) => w.bool_value(b),
        }
    }
}

/// The borrowed envelope of a fast-path request: the correlation id is
/// kept as the *raw request bytes* (only when re-encoding is guaranteed
/// byte-identical) and spliced verbatim into the response.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FastEnvelope<'a> {
    /// Raw id token (`"req-1"`, `42`, `true`, `null`) to echo verbatim,
    /// or `None` when the request carried no id.
    pub id: Option<&'a str>,
    /// Cooperative deadline for this request, in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A hot-path request decoded without building a `Json` tree; every
/// string field borrows from the request line. Ops outside the hot set
/// (`report`, `invalidate`, `shutdown`) take the tree path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FastRequest<'a> {
    /// `open` (hot so pipelined open→work→close batches stay on the
    /// fast path).
    Open {
        /// Client-chosen session id, if any.
        session: Option<&'a str>,
        /// Snapshot to explore, if named.
        snapshot: Option<&'a str>,
        /// Recover from the journal instead of starting fresh.
        resume: bool,
    },
    /// `decide`.
    Decide {
        /// The session.
        session: &'a str,
        /// The property to decide.
        name: &'a str,
        /// The chosen value.
        value: ValueRef<'a>,
    },
    /// `retract`.
    Retract {
        /// The session.
        session: &'a str,
        /// Undo down to (and including) this decision, if named.
        name: Option<&'a str>,
    },
    /// `eval`.
    Eval {
        /// The session.
        session: &'a str,
    },
    /// `surviving_cores`.
    SurvivingCores {
        /// The session.
        session: &'a str,
        /// Page-size cap.
        limit: Option<usize>,
        /// Page offset.
        offset: Option<usize>,
    },
    /// `viable`.
    Viable {
        /// The session.
        session: &'a str,
        /// The property to probe.
        name: &'a str,
    },
    /// `close`.
    Close {
        /// The session.
        session: &'a str,
    },
    /// `stats`.
    Stats,
}

impl FastRequest<'_> {
    /// The session a request targets, for batch grouping — mirrors the
    /// engine's grouping of tree-parsed requests.
    pub fn session(&self) -> Option<&str> {
        match self {
            FastRequest::Open { session, .. } => session.as_deref(),
            FastRequest::Decide { session, .. }
            | FastRequest::Retract { session, .. }
            | FastRequest::Eval { session }
            | FastRequest::SurvivingCores { session, .. }
            | FastRequest::Viable { session, .. }
            | FastRequest::Close { session } => Some(session),
            FastRequest::Stats => None,
        }
    }
}

/// Accumulates fields during the single left-to-right scan. `*_seen`
/// flags implement first-occurrence-wins for duplicate keys, matching
/// `Json::get` on the tree path.
#[derive(Default)]
struct FastFields<'a> {
    op: Option<&'a str>,
    op_seen: bool,
    session: Option<&'a str>,
    session_seen: bool,
    snapshot: Option<&'a str>,
    snapshot_seen: bool,
    name: Option<&'a str>,
    name_seen: bool,
    resume: bool,
    resume_seen: bool,
    value: Option<ValueRef<'a>>,
    value_seen: bool,
    limit: Option<usize>,
    limit_seen: bool,
    offset: Option<usize>,
    offset_seen: bool,
    id: Option<&'a str>,
    id_seen: bool,
    deadline_ms: Option<u64>,
    deadline_seen: bool,
}

/// Reads an optional string field (`null` counts as absent, like
/// `str_field`). Returns `None` (fallback) unless the value is an
/// escape-free borrowed string or `null`.
fn fast_opt_str<'a>(r: &mut Reader<'a>) -> Option<Option<&'a str>> {
    match r.peek()? {
        b'"' => match r.read_str().ok()? {
            std::borrow::Cow::Borrowed(s) => Some(Some(s)),
            std::borrow::Cow::Owned(_) => None,
        },
        b'n' => {
            r.read_null().ok()?;
            Some(None)
        }
        _ => None,
    }
}

/// Reads an optional non-negative integer field (`null` counts as
/// absent, like `usize_field`).
fn fast_opt_usize(r: &mut Reader<'_>) -> Option<Option<usize>> {
    match r.peek()? {
        b'n' => {
            r.read_null().ok()?;
            Some(None)
        }
        b'-' | b'0'..=b'9' => match r.read_number().ok()? {
            Number::Int(n) if n >= 0 => Some(Some(n as usize)),
            _ => None,
        },
        _ => None,
    }
}

/// Captures the raw id token when echoing it verbatim is guaranteed to
/// match the tree path's decode-then-re-encode: escape-free strings,
/// canonical integers, booleans, and `null`. Anything else (floats,
/// escaped strings, arrays) forces the tree fallback.
fn fast_raw_id<'a>(r: &mut Reader<'a>, line: &'a str) -> Option<&'a str> {
    let start = r.pos();
    match r.peek()? {
        b'"' => match r.read_str().ok()? {
            std::borrow::Cow::Borrowed(_) => Some(&line[start..r.pos()]),
            std::borrow::Cow::Owned(_) => None,
        },
        b'-' | b'0'..=b'9' => match r.read_number_with_span().ok()? {
            // `-0` is the one integer token whose re-encode (`0`)
            // differs from its raw bytes.
            (Number::Int(_), span) if span != "-0" => Some(span),
            _ => None,
        },
        b't' | b'f' => {
            let b = r.read_bool().ok()?;
            Some(if b { "true" } else { "false" })
        }
        b'n' => {
            r.read_null().ok()?;
            Some("null")
        }
        _ => None,
    }
}

/// Decodes a hot-path request by borrowing from the line — no `Json`
/// tree, no owned strings. Returns `None` on *any* anomaly (non-hot op,
/// escaped strings, tagged values, wrong types, malformed JSON, missing
/// required fields) so the caller falls back to [`parse_request`] and
/// the tree path produces its byte-identical response or error.
pub fn parse_request_fast(line: &str) -> Option<(FastRequest<'_>, FastEnvelope<'_>)> {
    let mut r = Reader::new(line.as_bytes());
    r.skip_ws();
    if r.peek() != Some(b'{') {
        return None;
    }
    r.begin_object().ok()?;
    let mut f = FastFields::default();
    let mut index = 0;
    while let Some(key) = r.next_key(index).ok()? {
        index += 1;
        match key.as_ref() {
            "op" if !f.op_seen => {
                f.op_seen = true;
                f.op = fast_opt_str(&mut r)?;
            }
            "session" if !f.session_seen => {
                f.session_seen = true;
                f.session = fast_opt_str(&mut r)?;
            }
            "snapshot" if !f.snapshot_seen => {
                f.snapshot_seen = true;
                f.snapshot = fast_opt_str(&mut r)?;
            }
            "name" if !f.name_seen => {
                f.name_seen = true;
                f.name = fast_opt_str(&mut r)?;
            }
            "resume" if !f.resume_seen => {
                f.resume_seen = true;
                f.resume = match r.peek()? {
                    b't' | b'f' => r.read_bool().ok()?,
                    b'n' => {
                        r.read_null().ok()?;
                        false
                    }
                    _ => return None,
                };
            }
            "value" if !f.value_seen => {
                f.value_seen = true;
                f.value = Some(match r.peek()? {
                    b'"' => match r.read_str().ok()? {
                        std::borrow::Cow::Borrowed(s) => ValueRef::Text(s),
                        std::borrow::Cow::Owned(_) => return None,
                    },
                    b't' | b'f' => ValueRef::Flag(r.read_bool().ok()?),
                    b'-' | b'0'..=b'9' => match r.read_number().ok()? {
                        Number::Int(i) => ValueRef::Int(i),
                        Number::Float(x) => ValueRef::Real(x),
                    },
                    // Tagged objects, arrays, and null take the tree
                    // path (which also owns their error messages).
                    _ => return None,
                });
            }
            "limit" if !f.limit_seen => {
                f.limit_seen = true;
                f.limit = fast_opt_usize(&mut r)?;
            }
            "offset" if !f.offset_seen => {
                f.offset_seen = true;
                f.offset = fast_opt_usize(&mut r)?;
            }
            "id" if !f.id_seen => {
                f.id_seen = true;
                f.id = Some(fast_raw_id(&mut r, line)?);
            }
            "deadline_ms" if !f.deadline_seen => {
                f.deadline_seen = true;
                f.deadline_ms = match r.peek()? {
                    b'n' => {
                        r.read_null().ok()?;
                        None
                    }
                    b'0'..=b'9' => match r.read_number().ok()? {
                        Number::Int(ms) if ms >= 0 => Some(ms as u64),
                        _ => return None,
                    },
                    _ => return None,
                };
            }
            // Duplicate occurrences and unknown keys: validate and skip.
            _ => {
                r.skip_value(0).ok()?;
            }
        }
    }
    r.end().ok()?;
    let req = match f.op? {
        "open" => FastRequest::Open {
            session: f.session,
            snapshot: f.snapshot,
            resume: f.resume,
        },
        "decide" => FastRequest::Decide {
            session: f.session?,
            name: f.name?,
            value: f.value?,
        },
        "retract" => FastRequest::Retract {
            session: f.session?,
            name: f.name,
        },
        "eval" => FastRequest::Eval {
            session: f.session?,
        },
        "surviving_cores" => FastRequest::SurvivingCores {
            session: f.session?,
            limit: f.limit,
            offset: f.offset,
        },
        "viable" => FastRequest::Viable {
            session: f.session?,
            name: f.name?,
        },
        "close" => FastRequest::Close {
            session: f.session?,
        },
        "stats" => FastRequest::Stats,
        _ => return None,
    };
    Some((
        req,
        FastEnvelope {
            id: f.id,
            deadline_ms: f.deadline_ms,
        },
    ))
}

/// Opens a success response on the writer: `{"ok":true,"id":…` with the
/// raw id spliced verbatim. The caller appends its fields and closes
/// the object.
pub fn render_ok_prefix(w: &mut Writer<'_>, id: Option<&str>) {
    w.begin_object();
    w.key("ok");
    w.bool_value(true);
    if let Some(raw) = id {
        w.key("id");
        w.raw_value(raw.as_bytes());
    }
}

/// Renders a complete failure response, byte-identical to
/// [`err_response`] + the tree serializer.
pub fn render_err_into(out: &mut Vec<u8>, id: Option<&str>, err: &ProtocolError) {
    let mut w = Writer::new(out);
    w.begin_object();
    w.key("ok");
    w.bool_value(false);
    if let Some(raw) = id {
        w.key("id");
        w.raw_value(raw.as_bytes());
    }
    w.key("code");
    w.str_value(err.code.as_str());
    w.key("error");
    w.str_value(&err.message);
    if let Some(ms) = err.retry_after_ms {
        w.key("retry_after_ms");
        w.int_value(ms as i64);
    }
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_parse_with_scalar_and_tagged_values() {
        let (req, env) =
            parse_request(r#"{"op":"decide","session":"s1","name":"EOL","value":768,"id":7}"#);
        assert_eq!(
            req.unwrap(),
            Request::Decide {
                session: "s1".into(),
                name: "EOL".into(),
                value: Value::Int(768),
            }
        );
        assert_eq!(env.id, Some(Json::Int(7)));
        assert_eq!(env.deadline_ms, None);

        let (req, _) = parse_request(
            r#"{"op":"decide","session":"s1","name":"Algorithm","value":{"Text":"Montgomery"}}"#,
        );
        assert!(
            matches!(req.unwrap(), Request::Decide { value, .. } if value == Value::from("Montgomery"))
        );

        let (req, _) = parse_request(r#"{"op":"viable","session":"s1","name":"Algorithm"}"#);
        assert_eq!(
            req.unwrap(),
            Request::Viable {
                session: "s1".into(),
                name: "Algorithm".into(),
            }
        );

        let (req, _) = parse_request(r#"{"op":"open","snapshot":"crypto","resume":true}"#);
        assert_eq!(
            req.unwrap(),
            Request::Open {
                session: None,
                snapshot: Some("crypto".into()),
                resume: true,
            }
        );
    }

    #[test]
    fn malformed_and_unknown_requests_get_stable_codes() {
        let (req, _) = parse_request("not json");
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request("[1,2]");
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request(r#"{"op":"frobnicate"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::UnknownOp);
        let (req, _) = parse_request(r#"{"op":"decide","session":"s"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        let (req, _) = parse_request(r#"{"op":"eval","session":5}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
    }

    #[test]
    fn deadlines_parse_and_bad_ones_are_malformed() {
        let (req, env) = parse_request(r#"{"op":"stats","id":1,"deadline_ms":250}"#);
        assert!(req.is_ok());
        assert_eq!(env.deadline_ms, Some(250));

        // The id still comes back when only the deadline is bad.
        let (req, env) = parse_request(r#"{"op":"stats","id":2,"deadline_ms":-5}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
        assert_eq!(env.id, Some(Json::Int(2)));
        let (req, _) = parse_request(r#"{"op":"stats","deadline_ms":"soon"}"#);
        assert_eq!(req.unwrap_err().code, DiagCode::MalformedRequest);
    }

    #[test]
    fn overload_errors_carry_the_retry_hint() {
        let err = ProtocolError::overloaded("connection cap reached", 200);
        let rendered = err_response(&Some(Json::Int(9)), &err);
        assert_eq!(rendered.get("code").and_then(Json::as_str), Some("DSL309"));
        assert_eq!(
            rendered.get("retry_after_ms").and_then(Json::as_i64),
            Some(200)
        );
        assert_eq!(rendered.get("id").and_then(Json::as_i64), Some(9));
        // Other errors do not grow the field.
        let plain = err_response(&None, &ProtocolError::deadline("budget ran out"));
        assert_eq!(plain.get("code").and_then(Json::as_str), Some("DSL310"));
        assert_eq!(plain.get("retry_after_ms"), None);
    }

    #[test]
    fn responses_echo_the_id() {
        let id = Some(Json::Str("req-1".into()));
        let ok = ok_response(&id, vec![("x".into(), Json::Int(1))]);
        assert_eq!(ok.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response(&id, &ProtocolError::malformed("bad"));
        assert_eq!(err.get("code").and_then(Json::as_str), Some("DSL301"));
        assert_eq!(err.get("id").and_then(Json::as_str), Some("req-1"));
    }

    #[test]
    fn fast_parser_decodes_hot_ops_borrowing_from_the_line() {
        let line = r#"{"op":"decide","session":"s1","name":"EOL","value":768,"id":7}"#;
        let (req, env) = parse_request_fast(line).unwrap();
        assert_eq!(
            req,
            FastRequest::Decide {
                session: "s1",
                name: "EOL",
                value: ValueRef::Int(768),
            }
        );
        assert_eq!(env.id, Some("7"));
        assert_eq!(env.deadline_ms, None);

        let (req, env) =
            parse_request_fast(r#"{"op":"stats","id":"req-1","deadline_ms":250}"#).unwrap();
        assert_eq!(req, FastRequest::Stats);
        assert_eq!(env.id, Some("\"req-1\""));
        assert_eq!(env.deadline_ms, Some(250));

        let (req, _) =
            parse_request_fast(r#"{"op":"open","snapshot":"crypto","resume":true}"#).unwrap();
        assert_eq!(
            req,
            FastRequest::Open {
                session: None,
                snapshot: Some("crypto"),
                resume: true,
            }
        );
        assert_eq!(req.session(), None);
    }

    #[test]
    fn fast_parser_falls_back_on_anything_unusual() {
        // Non-hot ops, tagged values, escaped strings, exotic ids,
        // malformed JSON: all defer to the tree path.
        for line in [
            r#"{"op":"report","session":"s"}"#,
            r#"{"op":"invalidate","tool":"T"}"#,
            r#"{"op":"shutdown"}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"decide","session":"s","name":"A","value":{"Text":"x"}}"#,
            r#"{"op":"decide","session":"s","name":"A","value":null}"#,
            r#"{"op":"decide","session":"s"}"#,
            r#"{"op":"eval","session":5}"#,
            r#"{"op":"stats","id":1.5}"#,
            r#"{"op":"stats","id":-0}"#,
            r#"{"op":"stats","id":[1]}"#,
            r#"{"op":"stats","deadline_ms":-5}"#,
            r#"{"op":"stats","deadline_ms":"soon"}"#,
            r#"{"op":"stats"} trailing"#,
            r#"[1,2]"#,
            "not json",
        ] {
            assert!(parse_request_fast(line).is_none(), "should fall back: {line}");
        }
        // But null ids and bool ids are exactly re-encodable.
        let (_, env) = parse_request_fast(r#"{"op":"stats","id":null}"#).unwrap();
        assert_eq!(env.id, Some("null"));
        let (_, env) = parse_request_fast(r#"{"op":"stats","id":true}"#).unwrap();
        assert_eq!(env.id, Some("true"));
    }

    #[test]
    fn fast_parser_duplicate_keys_first_occurrence_wins() {
        let (req, env) =
            parse_request_fast(r#"{"op":"eval","session":"a","session":"b","id":1,"id":2}"#)
                .unwrap();
        assert_eq!(req, FastRequest::Eval { session: "a" });
        assert_eq!(env.id, Some("1"));
        // A null first occurrence pins the field to "absent" — the tree
        // path then owns the missing-field error.
        assert!(parse_request_fast(r#"{"op":"eval","session":null,"session":"b"}"#).is_none());
    }

    #[test]
    fn fast_error_rendering_matches_the_tree_serializer() {
        let err = ProtocolError::overloaded("connection cap reached", 200);
        let tree = foundation::json::encode(&err_response(&Some(Json::Int(9)), &err));
        let mut out = Vec::new();
        render_err_into(&mut out, Some("9"), &err);
        assert_eq!(String::from_utf8(out).unwrap(), tree);

        let err = ProtocolError::malformed("bad");
        let tree = foundation::json::encode(&err_response(&Some(Json::Str("r".into())), &err));
        let mut out = Vec::new();
        render_err_into(&mut out, Some("\"r\""), &err);
        assert_eq!(String::from_utf8(out).unwrap(), tree);
    }

    #[test]
    fn values_roundtrip_through_the_friendly_form() {
        for v in [
            Value::Int(42),
            Value::Real(2.5),
            Value::Text("x".into()),
            Value::Flag(true),
        ] {
            let j = value_to_json(&v);
            assert_eq!(value_from_json(&j).unwrap(), v);
        }
    }
}
