//! Static analysis over every shipped design space layer.
//!
//! Runs [`dse::analyze::analyze`] on the crypto, IDCT and FIR layers and
//! prints each report in compiler style. `scripts/verify.sh` runs this as
//! a gate: shipped spaces must be error-free.
//!
//! ```text
//! cargo run --example diagnose            # human-readable reports
//! cargo run --example diagnose -- --json  # machine-readable JSON
//! ```
//!
//! Exits nonzero when any space has an error-severity finding.

use std::process::ExitCode;

use design_space_layer::dse::analyze::analyze;
use design_space_layer::dse::diag::Report;
use design_space_layer::dse_library::load_all_layers;
use design_space_layer::foundation::json::{encode_pretty, Json, ToJson};
use design_space_layer::techlib::Technology;

fn main() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");
    let reports: Vec<(String, Report)> = load_all_layers(&Technology::g10_035())?
        .into_iter()
        .map(|layer| (layer.title.to_owned(), analyze(&layer.space)))
        .collect();

    if json {
        let arr = Json::Array(
            reports
                .iter()
                .map(|(name, report)| {
                    Json::Object(vec![
                        ("space".to_owned(), Json::Str(name.clone())),
                        ("report".to_owned(), report.to_json()),
                    ])
                })
                .collect(),
        );
        println!("{}", encode_pretty(&arr));
    } else {
        for (name, report) in &reports {
            println!("==> {name}");
            println!("{report}");
            println!();
        }
    }

    let failed = reports.iter().any(|(_, r)| r.has_errors());
    if failed {
        eprintln!("diagnose: at least one shipped space has errors");
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
