//! Emits `BENCH_baseline.json`: the repo's performance-trajectory record,
//! combining the `bignum_ops`, `exploration`, `analyze`, `robust`,
//! `cache`, `server` and `wire` suites.
//!
//! ```text
//! cargo run --release -p bench --bin baseline                  # writes BENCH_baseline.json
//! cargo run --release -p bench --bin baseline -- out.json
//! cargo run --release -p bench --bin baseline -- --suite analyze
//! cargo run --release -p bench --bin baseline -- --compare BENCH_baseline.json
//! ```
//!
//! `--suite <name>` (repeatable) restricts the run to the named suites.
//! `--compare <baseline.json>` prints per-entry deltas against a previous
//! report instead of writing one, and exits nonzero when any entry's
//! median regressed by more than 2×.
//!
//! `DSE_BENCH_FAST=1` shortens the run for smoke testing.

use foundation::bench::{combined_report, format_ns, Harness};
use foundation::json::Json;

/// Median regression ratio that fails a `--compare` run.
const REGRESSION_GATE: f64 = 2.0;

/// A named suite constructor in the registry below.
type Suite = (&'static str, fn() -> Harness);

const SUITES: &[Suite] = &[
    ("bignum_ops", bench::suites::bignum_ops),
    ("exploration", bench::suites::exploration),
    ("explore_scale", bench::suites::explore_scale),
    ("analyze", bench::suites::analyze),
    ("solve", bench::suites::solve),
    ("robust", bench::suites::robust),
    ("cache", bench::suites::cache),
    ("server", bench::suites::server),
    ("wire", bench::suites::wire),
];

fn main() {
    let mut out_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => match args.next() {
                Some(name) => selected.push(name),
                None => usage_error("--suite needs a name"),
            },
            "--compare" => match args.next() {
                Some(path) => compare_path = Some(path),
                None => usage_error("--compare needs a baseline path"),
            },
            other if other.starts_with("--") => usage_error(&format!("unknown flag {other}")),
            path => out_path = Some(path.to_string()),
        }
    }
    for name in &selected {
        if !SUITES.iter().any(|(n, _)| n == name) {
            let known: Vec<&str> = SUITES.iter().map(|(n, _)| *n).collect();
            usage_error(&format!(
                "unknown suite {name:?}; known suites: {}",
                known.join(", ")
            ));
        }
    }

    let suites: Vec<Harness> = SUITES
        .iter()
        .filter(|(name, _)| selected.is_empty() || selected.iter().any(|s| s == name))
        .map(|(_, build)| build())
        .collect();
    let reports: Vec<_> = suites.iter().map(|h| h.report_json()).collect();
    for h in &suites {
        print!(
            "{}",
            foundation::bench::render_table(h.suite(), h.entries())
        );
    }

    if let Some(path) = compare_path {
        std::process::exit(compare(&suites, &path));
    }

    let path = out_path.unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let report = combined_report("dse-foundation baseline", &reports).to_string_pretty();
    match std::fs::write(&path, &report) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints per-entry median deltas against the baseline at `path`.
/// Returns the process exit code: nonzero when any entry regressed past
/// [`REGRESSION_GATE`].
fn compare(current: &[Harness], path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return 1;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("baseline {path} is not valid JSON: {e}");
            return 1;
        }
    };
    // (suite, entry name) → baseline median.
    let mut base_medians: Vec<(String, String, f64)> = Vec::new();
    for suite in baseline
        .get("suites")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let Some(suite_name) = suite.get("suite").and_then(Json::as_str) else {
            continue;
        };
        for entry in suite.get("entries").and_then(Json::as_array).unwrap_or(&[]) {
            if let (Some(name), Some(median)) = (
                entry.get("name").and_then(Json::as_str),
                entry.get("median_ns").and_then(Json::as_f64),
            ) {
                base_medians.push((suite_name.to_string(), name.to_string(), median));
            }
        }
    }

    println!("\ncomparison against {path} (gate: >{REGRESSION_GATE}× median)");
    let mut regressions = 0usize;
    for h in current {
        for m in h.entries() {
            let base = base_medians
                .iter()
                .find(|(s, n, _)| s == h.suite() && n == &m.name)
                .map(|(_, _, median)| *median);
            match base {
                Some(b) if b > 0.0 => {
                    let ratio = m.median_ns / b;
                    let verdict = if ratio > REGRESSION_GATE {
                        regressions += 1;
                        "REGRESSED"
                    } else if ratio < 1.0 / REGRESSION_GATE {
                        "improved"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {:<40} {:>12} -> {:>12}  {ratio:>6.2}x  {verdict}",
                        m.name,
                        format_ns(b),
                        format_ns(m.median_ns),
                    );
                }
                _ => println!(
                    "  {:<40} {:>12} -> {:>12}    new",
                    m.name,
                    "-",
                    format_ns(m.median_ns),
                ),
            }
        }
    }
    if regressions > 0 {
        eprintln!("{regressions} entr{} regressed past the {REGRESSION_GATE}x gate",
            if regressions == 1 { "y" } else { "ies" });
        1
    } else {
        println!("no entry regressed past the {REGRESSION_GATE}x gate");
        0
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("baseline: {msg}");
    eprintln!(
        "usage: baseline [OUT.json] [--suite <name>]... [--compare BASELINE.json]"
    );
    std::process::exit(2);
}
