//! The catalog of the paper's eight hardware design families (Table 1).
//!
//! Each family fixes algorithm, radix, adder and multiplier structure;
//! the slice width (8–128 bits in the paper) remains a free design issue,
//! so a family × slice-width pair is what actually lands in the reuse
//! library as a core.

use std::fmt;


use crate::adder::AdderKind;
use crate::design::{Algorithm, ArchitectureError, ModMulArchitecture};
use crate::multiplier::DigitMultiplierKind;

/// One row of the paper's Table 1: a modular-multiplier design family.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignFamily {
    id: u8,
    algorithm: Algorithm,
    radix: u64,
    adder: AdderKind,
    multiplier: DigitMultiplierKind,
}

impl DesignFamily {
    /// The design number as in the paper (1–8).
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Paper-style name, e.g. `"#2"`.
    pub fn name(&self) -> String {
        format!("#{}", self.id)
    }

    /// Paper-style core label for a sliced instance, e.g. `"#2_64"`.
    pub fn core_label(&self, slice_width: u32) -> String {
        format!("#{}_{}", self.id, slice_width)
    }

    /// The algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The radix.
    pub fn radix(&self) -> u64 {
        self.radix
    }

    /// The wide-adder structure.
    pub fn adder(&self) -> AdderKind {
        self.adder
    }

    /// The digit-multiplier structure.
    pub fn multiplier(&self) -> DigitMultiplierKind {
        self.multiplier
    }

    /// Instantiates the family at a slice width.
    ///
    /// # Errors
    ///
    /// Returns an error if the slice width is incompatible with the
    /// family's digit width.
    pub fn architecture(&self, slice_width: u32) -> Result<ModMulArchitecture, ArchitectureError> {
        ModMulArchitecture::new(
            self.algorithm,
            self.radix,
            slice_width,
            self.adder,
            self.multiplier,
        )
    }
}

impl fmt::Display for DesignFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} radix-{} {} {}",
            self.id, self.algorithm, self.radix, self.adder, self.multiplier
        )
    }
}

/// The paper's Table 1 design families, in order (#1–#8).
///
/// | # | Radix | Algorithm  | Adder | Multiplier |
/// |---|-------|------------|-------|------------|
/// | 1 | 2     | Montgomery | CLA   | n/a (AND)  |
/// | 2 | 2     | Montgomery | CSA   | n/a (AND)  |
/// | 3 | 4     | Montgomery | CLA   | array      |
/// | 4 | 4     | Montgomery | CSA   | array      |
/// | 5 | 4     | Montgomery | CSA   | mux        |
/// | 6 | 4     | Montgomery | CLA   | mux        |
/// | 7 | 2     | Brickell   | CLA   | n/a (AND)  |
/// | 8 | 2     | Brickell   | CSA   | n/a (AND)  |
pub fn paper_designs() -> Vec<DesignFamily> {
    use AdderKind::{CarryLookAhead as Cla, CarrySave as Csa};
    use Algorithm::{Brickell, Montgomery};
    use DigitMultiplierKind::{AndRow, Array, MuxTable};
    let spec: [(u8, Algorithm, u64, AdderKind, DigitMultiplierKind); 8] = [
        (1, Montgomery, 2, Cla, AndRow),
        (2, Montgomery, 2, Csa, AndRow),
        (3, Montgomery, 4, Cla, Array),
        (4, Montgomery, 4, Csa, Array),
        (5, Montgomery, 4, Csa, MuxTable),
        (6, Montgomery, 4, Cla, MuxTable),
        (7, Brickell, 2, Cla, AndRow),
        (8, Brickell, 2, Csa, AndRow),
    ];
    spec.into_iter()
        .map(|(id, algorithm, radix, adder, multiplier)| DesignFamily {
            id,
            algorithm,
            radix,
            adder,
            multiplier,
        })
        .collect()
}

/// The slice widths used in the paper's Table 1.
pub const TABLE1_SLICE_WIDTHS: [u32; 5] = [8, 16, 32, 64, 128];

foundation::impl_json_struct!(DesignFamily { id, algorithm, radix, adder, multiplier });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_families_with_correct_structure() {
        let ds = paper_designs();
        assert_eq!(ds.len(), 8);
        assert!(ds
            .iter()
            .take(6)
            .all(|d| d.algorithm() == Algorithm::Montgomery));
        assert!(ds
            .iter()
            .skip(6)
            .all(|d| d.algorithm() == Algorithm::Brickell));
        assert_eq!(ds[1].adder(), AdderKind::CarrySave);
        assert_eq!(ds[4].multiplier(), DigitMultiplierKind::MuxTable);
        assert_eq!(ds[2].radix(), 4);
    }

    #[test]
    fn ids_match_positions() {
        for (i, d) in paper_designs().iter().enumerate() {
            assert_eq!(d.id() as usize, i + 1);
        }
    }

    #[test]
    fn every_family_instantiates_at_every_table1_width() {
        for d in paper_designs() {
            for w in TABLE1_SLICE_WIDTHS {
                assert!(d.architecture(w).is_ok(), "{} at w{w}", d.name());
            }
        }
    }

    #[test]
    fn labels_match_paper_convention() {
        let ds = paper_designs();
        assert_eq!(ds[1].core_label(64), "#2_64");
        assert_eq!(ds[4].core_label(16), "#5_16");
        assert_eq!(ds[7].name(), "#8");
    }
}
