//! Differential property suite for the columnar core store.
//!
//! Seeded random spaces and libraries, driven through random
//! decide/undo/revise trails; after every step, every [`Explorer`]
//! query answered by the columnar engine must be **bit-identical** to
//! the legacy scan oracle (`DSE_EXPLORER_ENGINE=scan` path) — survivor
//! lists, counts, pages, evaluation spaces, merit ranges, Pareto
//! fronts, bound queries, issue-impact rankings and solver-pruned sets
//! — and identical again at every `DSE_THREADS` ∈ {1, 2, 8}.

use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::synthetic::{
    synthetic_core_space, synthetic_cores, CoreSpaceSpec,
};
use design_space_layer::dse_library::{CoreRecord, Explorer, ExplorerEngine, ReuseLibrary};
use design_space_layer::foundation::par;
use design_space_layer::foundation::rng::{Rng, SeedableRng, StdRng};

/// Random spec: large enough to cross the parallel threshold (256
/// cores) on most draws, small enough to keep the suite quick.
fn random_spec(rng: &mut StdRng, seed: u64) -> CoreSpaceSpec {
    CoreSpaceSpec {
        cores: rng.gen_range(40usize..700),
        properties: rng.gen_range(2usize..6),
        arity: rng.gen_range(2usize..5),
        merits: rng.gen_range(1usize..4),
        unbound_permille: rng.gen_range(0u64..400),
        seed,
    }
}

fn names(cores: &[&CoreRecord]) -> Vec<String> {
    cores.iter().map(|c| c.name().to_owned()).collect()
}

/// Every query the explorer answers, snapshotted for comparison.
#[derive(Debug, PartialEq)]
struct QuerySnapshot {
    survivors: Vec<String>,
    count: usize,
    page: Vec<String>,
    eval_len: usize,
    ranges: Vec<Option<(f64, f64)>>,
    pareto: Vec<String>,
    meeting: Vec<Vec<String>>,
    impact: Vec<(String, f64)>,
    pruned: Vec<String>,
}

fn snapshot(exp: &Explorer<'_>, merits: &[FigureOfMerit], page_at: (usize, usize)) -> QuerySnapshot {
    QuerySnapshot {
        survivors: names(&exp.surviving_cores()),
        count: exp.surviving_count(),
        page: names(&exp.surviving_page(page_at.0, page_at.1)),
        eval_len: exp.evaluation_space().len(),
        ranges: merits.iter().map(|m| exp.merit_range(m)).collect(),
        pareto: names(&exp.pareto_cores(merits)),
        meeting: merits
            .iter()
            .map(|m| names(&exp.cores_meeting(m, 5_000.0)))
            .collect(),
        impact: exp.issue_impact(&merits[0]),
        pruned: names(&exp.solver_pruned_cores()),
    }
}

/// Runs one seeded trail, asserting scan/columnar agreement after every
/// step, and returns the per-step snapshots (for cross-thread-count
/// comparison).
fn run_trail(seed: u64) -> Vec<QuerySnapshot> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = random_spec(&mut rng, seed);
    let (space, root) = synthetic_core_space(&spec);
    let library = synthetic_cores(&spec);
    let merits: Vec<FigureOfMerit> = {
        let probe = synthetic_cores(&CoreSpaceSpec { cores: 1, ..spec.clone() });
        probe.cores()[0].merits().keys().copied().collect()
    };
    let mut exp = Explorer::new(&space, root, &library);
    let mut history = Vec::new();

    for _step in 0..12 {
        // One random session op: decide an undecided issue, undo, or
        // revise an already-decided one.
        let p = format!("P{}", rng.gen_range(0..spec.properties));
        let o = Value::from(format!("o{}", rng.gen_range(0..spec.arity)));
        match rng.gen_range(0u32..10) {
            0..=5 => {
                if exp.session.decided(&p).is_none() {
                    exp.session.decide(&p, o).expect("unconstrained decide");
                }
            }
            6..=7 => {
                let _ = exp.session.undo();
            }
            _ => {
                if exp.session.decided(&p).is_some() {
                    exp.session.revise(&p, o).expect("unconstrained revise");
                }
            }
        }

        let page_at = (rng.gen_range(0usize..50), rng.gen_range(1usize..40));
        exp.set_engine(ExplorerEngine::Columnar);
        let columnar = snapshot(&exp, &merits, page_at);
        exp.set_engine(ExplorerEngine::Scan);
        let scan = snapshot(&exp, &merits, page_at);
        assert_eq!(
            columnar, scan,
            "engines diverged (seed {seed}, step {_step})"
        );
        history.push(columnar);
    }
    history
}

#[test]
fn columnar_matches_scan_across_trails_and_thread_counts() {
    for seed in [1u64, 7, 42, 1999, 0xD5E] {
        let baseline = par::with_thread_limit(1, || run_trail(seed));
        for threads in [2usize, 8] {
            let got = par::with_thread_limit(threads, || run_trail(seed));
            assert_eq!(
                baseline, got,
                "thread count {threads} changed results (seed {seed})"
            );
        }
    }
}

/// The env override is honored: `scan` forces the oracle, anything else
/// stays columnar.
#[test]
fn engine_defaults_to_columnar() {
    let spec = CoreSpaceSpec::sized(10);
    let (space, root) = synthetic_core_space(&spec);
    let library = synthetic_cores(&spec);
    let exp = Explorer::new(&space, root, &library);
    if std::env::var("DSE_EXPLORER_ENGINE").as_deref() == Ok("scan") {
        assert_eq!(exp.engine(), ExplorerEngine::Scan);
    } else {
        assert_eq!(exp.engine(), ExplorerEngine::Columnar);
    }
}

/// Duplicate libraries collapse to union semantics in the roster, on
/// both engines.
#[test]
fn duplicate_library_union_is_engine_independent() {
    let spec = CoreSpaceSpec::sized(300);
    let (space, root) = synthetic_core_space(&spec);
    let library = synthetic_cores(&spec);
    let mut exp = Explorer::with_libraries(&space, root, [&library, &library]);
    exp.set_engine(ExplorerEngine::Columnar);
    assert_eq!(exp.surviving_count(), 300);
    exp.set_engine(ExplorerEngine::Scan);
    assert_eq!(exp.surviving_count(), 300);
}

/// A second library only contributes records with novel
/// `(vendor, name)` pairs.
#[test]
fn overlapping_records_keep_first_occurrence() {
    let spec = CoreSpaceSpec::sized(12);
    let (space, root) = synthetic_core_space(&spec);
    let library = synthetic_cores(&spec);
    let mut other = ReuseLibrary::new("other");
    other.push(CoreRecord::new("c3", "synthetic", "shadowed duplicate"));
    other.push(CoreRecord::new("novel", "synthetic", ""));
    let exp = Explorer::with_libraries(&space, root, [&library, &other]);
    let all = exp.surviving_cores();
    assert_eq!(all.len(), 13);
    let c3 = all.iter().find(|c| c.name() == "c3").unwrap();
    assert_eq!(c3.doc(), "", "first occurrence wins");
}
