//! Figs. 2/3: the IDCT organisation experiment. Quantifies the paper's
//! qualitative argument — an abstraction-first organisation scatters
//! evaluation-space neighbours across families, while a
//! generalization-first organisation keeps them together.

use dse::eval::{EvaluationSpace, FigureOfMerit};
use dse_library::idct;

use crate::fmt;

/// The experiment outcome.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Coherence of the generalization-first families (Fig. 3).
    pub coherence_generalization: f64,
    /// Coherence of the abstraction-first families (Fig. 2).
    pub coherence_abstraction: f64,
    /// The clusters found in the raw evaluation space (ground truth).
    pub natural_clusters: Vec<Vec<String>>,
}

const MERITS: [FigureOfMerit; 2] = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];

/// Runs the comparison.
pub fn run() -> Fig3Result {
    let cores = idct::idct_cores();
    let space: EvaluationSpace = cores.iter().map(|c| c.eval_point()).collect();

    let gen = idct::build_layer_generalization().expect("layer builds");
    let abs = idct::build_layer_abstraction().expect("layer builds");
    let coherence_generalization =
        space.partition_coherence(&MERITS, &idct::family_grouping(&gen, &cores));
    let coherence_abstraction =
        space.partition_coherence(&MERITS, &idct::family_grouping(&abs, &cores));

    let natural_clusters = space
        .cluster(&MERITS, 0.35)
        .into_iter()
        .map(|group| {
            group
                .into_iter()
                .map(|i| space.points()[i].label().to_owned())
                .collect()
        })
        .collect();

    Fig3Result {
        coherence_generalization,
        coherence_abstraction,
        natural_clusters,
    }
}

/// Renders the comparison report.
pub fn render() -> String {
    let r = run();
    let cores = idct::idct_cores();
    let rows: Vec<Vec<String>> = cores
        .iter()
        .map(|c| {
            vec![
                c.name().to_owned(),
                c.binding("Algorithm").unwrap().to_string(),
                c.binding("FabricationTechnology").unwrap().to_string(),
                fmt::num(c.merit_value(&FigureOfMerit::AreaUm2).unwrap()),
                fmt::num(c.merit_value(&FigureOfMerit::DelayNs).unwrap()),
            ]
        })
        .collect();
    format!(
        "Figs. 2/3 — IDCT organisation coherence\n\n{}\n\
         natural evaluation-space clusters: {:?}\n\
         coherence, generalization-first (Fig. 3): {:+.3}\n\
         coherence, abstraction-first (Fig. 2):    {:+.3}\n",
        fmt::table(
            &[
                "core",
                "algorithm",
                "technology",
                "area (µm²)",
                "delay (ns)"
            ],
            &rows
        ),
        r.natural_clusters,
        r.coherence_generalization,
        r.coherence_abstraction,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generalization_wins_decisively() {
        let r = run();
        assert!(
            r.coherence_generalization > r.coherence_abstraction + 0.3,
            "gen {} vs abs {}",
            r.coherence_generalization,
            r.coherence_abstraction
        );
    }

    #[test]
    fn natural_clusters_are_the_papers_families() {
        let r = run();
        assert_eq!(r.natural_clusters.len(), 2);
        let mut sizes: Vec<usize> = r.natural_clusters.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![2, 3]); // {3,4} and {1,2,5}
                                       // The pair cluster is the 0.35 µm family.
        let pair = r.natural_clusters.iter().find(|c| c.len() == 2).unwrap();
        assert!(pair.contains(&"IDCT 3".to_owned()));
        assert!(pair.contains(&"IDCT 4".to_owned()));
    }

    #[test]
    fn render_reports_both_scores() {
        let s = render();
        assert!(s.contains("generalization-first"));
        assert!(s.contains("abstraction-first"));
        assert!(s.contains("IDCT 5"));
    }
}
