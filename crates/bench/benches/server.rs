//! Benchmarks of the exploration daemon's engine: dispatch overhead,
//! session lifecycles with and without journaling, and pipelined
//! batches fanned out across the worker pool.

fn main() {
    bench::suites::server().finish();
}
