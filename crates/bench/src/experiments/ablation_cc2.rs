//! Ablation A2: the CC2 heuristic versus the cycle-accurate truth.
//!
//! CC2 states `Latency = 2·EOL/Radix + 1` cycles. For radices 2 and 4 this
//! coincides with the digit-serial datapath's exact count (one cycle per
//! digit plus the extra Montgomery iteration); at radices 8 and 16 the
//! heuristic diverges from both the architectural count and the simulated
//! cycle count — exactly the "relations may be heuristic" caveat the paper
//! attaches to consistency constraints.

use bignum::{uniform_below, UBig};
use hwmodel::{sim, AdderKind, Algorithm, DigitMultiplierKind, ModMulArchitecture};
use foundation::rng::{SeedableRng, StdRng};

use crate::fmt;

/// One radix's three latency figures.
#[derive(Debug, Clone)]
pub struct Cc2Row {
    /// The radix.
    pub radix: u64,
    /// CC2's heuristic: `2·EOL/R + 1`.
    pub cc2_cycles: u64,
    /// The architecture's exact count (digits + fill + setup).
    pub arch_cycles: u64,
    /// Cycles actually consumed by the simulated datapath.
    pub simulated_cycles: u64,
}

/// The operand length used (divisible by 1, 2, 3 and 4-bit digits and by
/// the slice width).
pub const EOL: u32 = 768;
const SLICE: u32 = 48;

/// Runs the comparison across radices 2–16.
pub fn run() -> Vec<Cc2Row> {
    let mut rng = StdRng::seed_from_u64(0xCC2);
    let mut m = uniform_below(&UBig::power_of_two(EOL), &mut rng);
    m.set_bit(EOL - 1, true);
    m.set_bit(0, true);
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);

    [2u64, 4, 8, 16]
        .into_iter()
        .map(|radix| {
            let mult = if radix == 2 {
                DigitMultiplierKind::AndRow
            } else {
                DigitMultiplierKind::MuxTable
            };
            let arch = ModMulArchitecture::new(
                Algorithm::Montgomery,
                radix,
                SLICE,
                AdderKind::CarrySave,
                mult,
            )
            .expect("valid architecture");
            let out = sim::simulate(&arch, &a, &b, &m).expect("valid operands");
            Cc2Row {
                radix,
                cc2_cycles: 2 * EOL as u64 / radix + 1,
                arch_cycles: arch.cycles(EOL).expect("EOL divisible"),
                simulated_cycles: out.cycles,
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render() -> String {
    let rows = run();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let err = (r.cc2_cycles as f64 - r.arch_cycles as f64) / r.arch_cycles as f64 * 100.0;
            vec![
                r.radix.to_string(),
                r.cc2_cycles.to_string(),
                r.arch_cycles.to_string(),
                r.simulated_cycles.to_string(),
                format!("{err:+.1}%"),
            ]
        })
        .collect();
    format!(
        "Ablation A2 — CC2 heuristic vs exact cycle counts (EOL = {EOL}, {SLICE}-bit slices)\n\n{}",
        fmt::table(
            &[
                "radix",
                "CC2 2·EOL/R+1",
                "architectural",
                "simulated",
                "CC2 error"
            ],
            &body
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectural_count_matches_simulation() {
        for r in run() {
            assert_eq!(r.arch_cycles, r.simulated_cycles, "radix {}", r.radix);
        }
    }

    #[test]
    fn cc2_is_exact_for_radix_2_and_4_modulo_slicing() {
        // The only difference at radix 2/4 is pipeline fill and mux setup.
        let slices = (EOL / SLICE) as u64;
        for r in run().iter().filter(|r| r.radix <= 4) {
            let overhead = r.arch_cycles - r.cc2_cycles;
            assert!(
                overhead <= slices + 8,
                "radix {}: overhead {overhead}",
                r.radix
            );
        }
    }

    #[test]
    fn cc2_underestimates_at_high_radix() {
        // 2·EOL/8 < EOL/3 and 2·EOL/16 < EOL/4: the heuristic is optimistic.
        let rows = run();
        let r8 = rows.iter().find(|r| r.radix == 8).unwrap();
        let r16 = rows.iter().find(|r| r.radix == 16).unwrap();
        assert!(r8.cc2_cycles < r8.arch_cycles);
        assert!(r16.cc2_cycles < r16.arch_cycles);
        // ... and the error grows with the radix.
        let err = |r: &Cc2Row| (r.arch_cycles - r.cc2_cycles) as f64 / r.arch_cycles as f64;
        assert!(err(r16) > err(r8));
    }

    #[test]
    fn render_reports_percentages() {
        let s = render();
        assert!(s.contains("CC2 error"));
        assert!(s.contains('%'));
    }
}
