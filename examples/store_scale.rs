//! Million-core scale smoke: seeded library generation, columnar store
//! build, and narrowing queries — the fixed-budget gate run by
//! `scripts/verify.sh`.
//!
//! ```text
//! cargo run --release --example store_scale [-- --cores N]
//! ```
//!
//! Generates `N` synthetic cores (default 1 000 000), builds the
//! columnar index, then runs a decide → count/range → retract round on
//! the incremental cursor and cross-checks the survivor count against
//! the scan oracle.

use std::time::Instant;

use design_space_layer::dse::eval::FigureOfMerit;
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::synthetic::{
    synthetic_core_space, synthetic_cores, CoreSpaceSpec,
};
use design_space_layer::dse_library::{CoreStore, Explorer, ExplorerEngine};

fn main() {
    let mut cores: usize = 1_000_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores needs a number");
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --cores N)");
                std::process::exit(2);
            }
        }
    }

    let spec = CoreSpaceSpec::sized(cores);
    let t = Instant::now();
    let (space, root) = synthetic_core_space(&spec);
    let library = synthetic_cores(&spec);
    println!("generated {} cores in {:?}", library.len(), t.elapsed());

    let t = Instant::now();
    let store = CoreStore::for_libraries(&[&library]);
    println!("built columnar store ({} cores) in {:?}", store.len(), t.elapsed());

    let mut exp = Explorer::new(&space, root, &library);
    exp.set_engine(ExplorerEngine::Columnar);
    let t = Instant::now();
    exp.session
        .decide("P0", Value::from("o1"))
        .expect("unconstrained decide");
    let count = exp.surviving_count();
    let range = exp.merit_range(&FigureOfMerit::AreaUm2);
    println!(
        "decide P0=o1: {count} survivors, area range {range:?} in {:?}",
        t.elapsed()
    );

    let t = Instant::now();
    exp.session.undo().expect("undo");
    let restored = exp.surviving_count();
    println!("retract: {restored} survivors in {:?}", t.elapsed());
    assert_eq!(restored, library.len(), "retract must restore the full set");

    // Cross-check the AND-merge against the scan oracle.
    exp.session
        .decide("P0", Value::from("o1"))
        .expect("unconstrained decide");
    let t = Instant::now();
    exp.set_engine(ExplorerEngine::Scan);
    let oracle = exp.surviving_count();
    println!("scan oracle: {oracle} survivors in {:?}", t.elapsed());
    assert_eq!(count, oracle, "columnar and scan survivor counts differ");

    println!("store_scale: OK");
}
