//! Properties: the meta-data attached to classes of design objects.
//!
//! The paper classifies properties into behavioural/structural
//! descriptions, design requirements, and design decisions/restrictions
//! (design issues). Design issues come in two strengths: *regular* ones
//! support fine-grained trade-off exploration inside a CDO, while a
//! *generalized* one partitions the design space — each of its options
//! spawns a child CDO.

use std::fmt;


use crate::value::{Domain, Value};

/// What role a property plays in conceptual design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PropertyKind {
    /// A problem given or target figure of merit, entered by the designer
    /// from the system specification (the paper's Req1–Req5).
    Requirement,
    /// A regular design issue: an area of design decision explored for
    /// trade-offs within a CDO (the paper's DI2–DI7).
    DesignIssue,
    /// A generalized design issue: partitions the design space; each
    /// option spawns a child CDO (the paper's "Implementation Style",
    /// "Algorithm").
    GeneralizedIssue,
    /// A behavioural/structural description slot (e.g. "Behavioral
    /// Description" selecting among algorithm-level descriptions).
    Description,
    /// A figure the layer *derives* — the output slot of a quantitative
    /// relation or estimator context, never decided by the designer.
    /// Declaring it gives the output a domain (the fallback range the
    /// resilience supervisor resorts to) and a unit for reports.
    Derived,
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PropertyKind::Requirement => "requirement",
            PropertyKind::DesignIssue => "design issue",
            PropertyKind::GeneralizedIssue => "generalized design issue",
            PropertyKind::Description => "description",
            PropertyKind::Derived => "derived figure",
        };
        f.write_str(s)
    }
}

/// A unit annotation (`bits`, `µs`, `µm²`, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Unit(String);

impl Unit {
    /// A custom unit.
    pub fn new(name: impl Into<String>) -> Self {
        Unit(name.into())
    }

    /// Bits.
    pub fn bits() -> Self {
        Unit::new("bits")
    }

    /// Microseconds.
    pub fn micros() -> Self {
        Unit::new("µs")
    }

    /// Nanoseconds.
    pub fn nanos() -> Self {
        Unit::new("ns")
    }

    /// Square micrometres.
    pub fn um2() -> Self {
        Unit::new("µm²")
    }

    /// Milliwatts.
    pub fn milliwatts() -> Self {
        Unit::new("mW")
    }

    /// Clock cycles.
    pub fn cycles() -> Self {
        Unit::new("cycles")
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One property of a class of design objects.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    name: String,
    kind: PropertyKind,
    domain: Domain,
    default: Option<Value>,
    unit: Option<Unit>,
    doc: String,
}

impl Property {
    /// A full-control constructor; prefer the kind-specific shorthands.
    pub fn new(
        name: impl Into<String>,
        kind: PropertyKind,
        domain: Domain,
        default: Option<Value>,
        unit: Option<Unit>,
        doc: impl Into<String>,
    ) -> Self {
        Property {
            name: name.into(),
            kind,
            domain,
            default,
            unit,
            doc: doc.into(),
        }
    }

    /// A requirement (problem given / target figure of merit).
    pub fn requirement(
        name: impl Into<String>,
        domain: Domain,
        unit: Option<Unit>,
        doc: impl Into<String>,
    ) -> Self {
        Property::new(name, PropertyKind::Requirement, domain, None, unit, doc)
    }

    /// A regular design issue.
    pub fn issue(name: impl Into<String>, domain: Domain, doc: impl Into<String>) -> Self {
        Property::new(name, PropertyKind::DesignIssue, domain, None, None, doc)
    }

    /// A regular design issue with a default option.
    pub fn issue_with_default(
        name: impl Into<String>,
        domain: Domain,
        default: Value,
        doc: impl Into<String>,
    ) -> Self {
        Property::new(
            name,
            PropertyKind::DesignIssue,
            domain,
            Some(default),
            None,
            doc,
        )
    }

    /// A generalized design issue (space-partitioning).
    pub fn generalized_issue(
        name: impl Into<String>,
        domain: Domain,
        doc: impl Into<String>,
    ) -> Self {
        Property::new(
            name,
            PropertyKind::GeneralizedIssue,
            domain,
            None,
            None,
            doc,
        )
    }

    /// A description slot.
    pub fn description(name: impl Into<String>, domain: Domain, doc: impl Into<String>) -> Self {
        Property::new(name, PropertyKind::Description, domain, None, None, doc)
    }

    /// A derived figure: the declared output slot of a quantitative or
    /// estimator-context relation. Its domain doubles as the resilience
    /// supervisor's last-resort fallback range.
    pub fn derived(
        name: impl Into<String>,
        domain: Domain,
        unit: Option<Unit>,
        doc: impl Into<String>,
    ) -> Self {
        Property::new(name, PropertyKind::Derived, domain, None, unit, doc)
    }

    /// The property's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The property's role.
    pub fn kind(&self) -> PropertyKind {
        self.kind
    }

    /// The admissible values.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The default value, if any.
    pub fn default(&self) -> Option<&Value> {
        self.default.as_ref()
    }

    /// The unit annotation, if any.
    pub fn unit(&self) -> Option<&Unit> {
        self.unit.as_ref()
    }

    /// The documentation line.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// Whether this is a (regular or generalized) design issue.
    pub fn is_issue(&self) -> bool {
        matches!(
            self.kind,
            PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
        )
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ∈ {}", self.name, self.kind, self.domain)?;
        if let Some(u) = &self.unit {
            write!(f, " ({u})")?;
        }
        if let Some(d) = &self.default {
            write!(f, " default {d}")?;
        }
        Ok(())
    }
}

foundation::impl_json_enum!(PropertyKind { Requirement, DesignIssue, GeneralizedIssue, Description, Derived });
foundation::impl_json_newtype!(Unit);
foundation::impl_json_struct!(Property { name, kind, domain, default, unit, doc });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthand_constructors_set_kinds() {
        assert_eq!(
            Property::requirement("EOL", Domain::Any, Some(Unit::bits()), "").kind(),
            PropertyKind::Requirement
        );
        assert_eq!(
            Property::issue("Radix", Domain::Any, "").kind(),
            PropertyKind::DesignIssue
        );
        assert_eq!(
            Property::generalized_issue("Algorithm", Domain::Any, "").kind(),
            PropertyKind::GeneralizedIssue
        );
        assert_eq!(
            Property::description("BD", Domain::Any, "").kind(),
            PropertyKind::Description
        );
        let d = Property::derived(
            "MaxCombDelayNs",
            Domain::real_range(0.5, 20.0),
            Some(Unit::nanos()),
            "",
        );
        assert_eq!(d.kind(), PropertyKind::Derived);
        assert!(!d.is_issue());
        assert!(d.to_string().contains("derived figure"));
    }

    #[test]
    fn issue_classification() {
        assert!(Property::issue("x", Domain::Any, "").is_issue());
        assert!(Property::generalized_issue("x", Domain::Any, "").is_issue());
        assert!(!Property::requirement("x", Domain::Any, None, "").is_issue());
    }

    #[test]
    fn display_is_self_documenting() {
        let p = Property::issue_with_default(
            "Radix",
            Domain::PowersOfTwo { max_exp: 4 },
            Value::Int(2),
            "digit width",
        );
        let s = p.to_string();
        assert!(s.contains("Radix"));
        assert!(s.contains("design issue"));
        assert!(s.contains("default 2"));
    }

    #[test]
    fn units_have_names() {
        assert_eq!(Unit::bits().name(), "bits");
        assert_eq!(Unit::micros().to_string(), "µs");
        assert_eq!(Unit::um2().name(), "µm²");
    }
}
