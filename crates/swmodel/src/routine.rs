//! Software routines: a variant bound to a processor model, profiled
//! end-to-end.

use std::fmt;

use bignum::UBig;

use crate::counter::OpCounts;
use crate::cpu::ProcessorModel;
use crate::variants::{MontgomeryVariant, WordMontgomery, WordMontgomeryError};

/// A concrete software modular-multiplier core: one Montgomery variant
/// compiled/scheduled for one processor model. These are the "software
/// reusable designs" of the paper's library (e.g. `CIHS ASM`, `CIOS C`).
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareRoutine {
    variant: MontgomeryVariant,
    cpu: ProcessorModel,
}

/// The outcome of profiling one modular multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The computed value.
    pub result: UBig,
    /// Operation counts executed.
    pub counts: OpCounts,
    /// Estimated cycles on the routine's processor.
    pub cycles: f64,
    /// Estimated execution time in microseconds.
    pub time_us: f64,
}

impl SoftwareRoutine {
    /// Binds a variant to a processor model.
    pub fn new(variant: MontgomeryVariant, cpu: ProcessorModel) -> Self {
        SoftwareRoutine { variant, cpu }
    }

    /// The Montgomery variant.
    pub fn variant(&self) -> MontgomeryVariant {
        self.variant
    }

    /// The processor model.
    pub fn cpu(&self) -> &ProcessorModel {
        &self.cpu
    }

    /// Library-style label, e.g. `"CIOS C"` / `"CIHS ASM"`.
    pub fn label(&self) -> String {
        let lang = if self.cpu.name().contains("ASM") {
            "ASM"
        } else if self.cpu.name().contains(" C") {
            "C"
        } else {
            self.cpu.name()
        };
        format!("{} {}", self.variant, lang)
    }

    /// Executes one *Montgomery* product `a·b·W^(−s) mod m` and reports
    /// counts and estimated time. This is the cost relevant inside a
    /// modular exponentiation, where operands stay in the Montgomery
    /// domain (the paper's Fig. 6 footnote makes the same choice for
    /// hardware: loop-only delay).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid modulus or unreduced operands.
    pub fn profile_mont_mul(
        &self,
        a: &UBig,
        b: &UBig,
        m: &UBig,
    ) -> Result<ProfileReport, WordMontgomeryError> {
        let ctx = WordMontgomery::new(m)?;
        let mut counts = OpCounts::new();
        let result = ctx.mont_mul(a, b, self.variant, &mut counts)?;
        Ok(self.report(result, counts))
    }

    /// Executes a full plain product `a·b mod m` (two Montgomery passes).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid modulus or unreduced operands.
    pub fn profile_mod_mul(
        &self,
        a: &UBig,
        b: &UBig,
        m: &UBig,
    ) -> Result<ProfileReport, WordMontgomeryError> {
        let ctx = WordMontgomery::new(m)?;
        let mut counts = OpCounts::new();
        let result = ctx.mod_mul(a, b, self.variant, &mut counts)?;
        Ok(self.report(result, counts))
    }

    /// Estimated time of one Montgomery product for an `eol`-bit modulus,
    /// without executing it (uses the analytic operation counts).
    pub fn estimate_mont_mul_us(&self, eol: u32) -> f64 {
        let s = eol.div_ceil(bignum::LIMB_BITS);
        let counts = crate::analytic::analytic_counts(self.variant, s as u64).as_op_counts();
        self.cpu.time_us(&counts)
    }

    /// Cooperative variant of
    /// [`estimate_mont_mul_us`](Self::estimate_mont_mul_us): the
    /// analytic model prices `s²` inner-loop word products for an
    /// `s`-word modulus, and `step` is consulted once per word product
    /// so a supervised estimation tool can charge its deterministic
    /// fuel budget against the model's own work measure. Returns `None`
    /// as soon as the meter trips.
    pub fn try_estimate_mont_mul_us(
        &self,
        eol: u32,
        mut step: impl FnMut() -> bool,
    ) -> Option<f64> {
        let s = eol.div_ceil(bignum::LIMB_BITS) as u64;
        for _ in 0..s.max(1) * s.max(1) {
            if !step() {
                return None;
            }
        }
        Some(self.estimate_mont_mul_us(eol))
    }

    /// Estimated time of a full modular exponentiation (binary
    /// square-and-multiply, ≈1.5 multiplications per exponent bit plus the
    /// two domain conversions), in µs.
    pub fn estimate_mod_exp_us(&self, eol: u32, exponent_bits: u32) -> f64 {
        let mults = 1.5 * f64::from(exponent_bits) + 2.0;
        mults * self.estimate_mont_mul_us(eol)
    }

    fn report(&self, result: UBig, counts: OpCounts) -> ProfileReport {
        ProfileReport {
            result,
            cycles: self.cpu.cycles(&counts),
            time_us: self.cpu.time_us(&counts),
            counts,
        }
    }
}

impl fmt::Display for SoftwareRoutine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.variant, self.cpu)
    }
}

foundation::impl_json_struct!(SoftwareRoutine { variant, cpu });
foundation::impl_json_struct!(ProfileReport { result, counts, cycles, time_us });

#[cfg(test)]
mod tests {
    use super::*;
    use bignum::uniform_below;
    use foundation::rng::{SeedableRng, StdRng};

    fn odd_modulus(bits: u32, rng: &mut StdRng) -> UBig {
        let mut m = uniform_below(&UBig::power_of_two(bits), rng);
        m.set_bit(bits - 1, true);
        m.set_bit(0, true);
        m
    }

    #[test]
    fn fig6_magnitudes_1024_bits() {
        // Paper Fig. 6 at 1024 bits: CIHS ASM ≈ 799–1037 µs,
        // CIOS C ≈ 5706 µs, CIHS C ≈ 7268 µs. Require the same territory
        // (within ~2×) and the same ordering.
        let mut rng = StdRng::seed_from_u64(7);
        let m = odd_modulus(1024, &mut rng);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);

        let cihs_asm =
            SoftwareRoutine::new(MontgomeryVariant::Cihs, ProcessorModel::pentium60_asm())
                .profile_mont_mul(&a, &b, &m)
                .unwrap();
        let cios_c = SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_c())
            .profile_mont_mul(&a, &b, &m)
            .unwrap();
        let cihs_c = SoftwareRoutine::new(MontgomeryVariant::Cihs, ProcessorModel::pentium60_c())
            .profile_mont_mul(&a, &b, &m)
            .unwrap();

        assert!(
            cihs_asm.time_us > 400.0 && cihs_asm.time_us < 2100.0,
            "CIHS ASM {} µs",
            cihs_asm.time_us
        );
        assert!(
            cios_c.time_us > 2800.0 && cios_c.time_us < 12000.0,
            "CIOS C {} µs",
            cios_c.time_us
        );
        assert!(cihs_c.time_us > cios_c.time_us, "CIHS C slower than CIOS C");
        assert!(cios_c.time_us > 4.0 * cihs_asm.time_us, "C ≫ ASM");
    }

    #[test]
    fn labels_follow_the_papers_convention() {
        let r = SoftwareRoutine::new(MontgomeryVariant::Cihs, ProcessorModel::pentium60_asm());
        assert_eq!(r.label(), "CIHS ASM");
        let r = SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_c());
        assert_eq!(r.label(), "CIOS C");
    }

    #[test]
    fn analytic_estimate_tracks_profiled_time() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = odd_modulus(512, &mut rng);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        for v in MontgomeryVariant::ALL {
            let r = SoftwareRoutine::new(v, ProcessorModel::pentium60_asm());
            let profiled = r.profile_mont_mul(&a, &b, &m).unwrap().time_us;
            let estimated = r.estimate_mont_mul_us(512);
            let ratio = estimated / profiled;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "{v}: estimate {estimated} vs profiled {profiled}"
            );
        }
    }

    #[test]
    fn modexp_estimate_scales_with_exponent_and_operand() {
        let r = SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_asm());
        let base = r.estimate_mod_exp_us(768, 768);
        assert!((r.estimate_mod_exp_us(768, 1536) / base - 2.0).abs() < 0.01);
        assert!(r.estimate_mod_exp_us(1536, 768) > 3.0 * base);
        // A full 768-bit exponentiation in software is hundreds of ms —
        // the coprocessor's raison d'être.
        assert!(base > 100_000.0, "{base} µs");
    }

    #[test]
    fn metered_estimate_charges_one_step_per_word_product() {
        let r = SoftwareRoutine::new(MontgomeryVariant::Cios, ProcessorModel::pentium60_asm());
        let mut steps = 0u64;
        let v = r
            .try_estimate_mont_mul_us(1024, || {
                steps += 1;
                true
            })
            .unwrap();
        // 1024 bits = 32 words, s² = 1024 inner-loop word products.
        assert_eq!(steps, 1024);
        assert_eq!(v, r.estimate_mont_mul_us(1024));
        let mut budget = 10u64;
        let starved = r.try_estimate_mont_mul_us(1024, || {
            if budget == 0 {
                return false;
            }
            budget -= 1;
            true
        });
        assert!(starved.is_none(), "a tripped meter aborts the estimate");
    }

    #[test]
    fn profile_mod_mul_returns_plain_product() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = odd_modulus(96, &mut rng);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let r = SoftwareRoutine::new(MontgomeryVariant::Fips, ProcessorModel::pentium60_c());
        let rep = r.profile_mod_mul(&a, &b, &m).unwrap();
        assert_eq!(rep.result, a.mod_mul(&b, &m));
        assert!(rep.cycles > 0.0);
    }
}
