//! The IDCT motivating example (Figs. 2–4): why organising the design
//! space by abstraction level misleads, and how the generalization
//! hierarchy fixes it.
//!
//! ```text
//! cargo run --example idct_explorer
//! ```

use design_space_layer::dse::eval::{EvaluationSpace, FigureOfMerit};
use design_space_layer::dse::value::Value;
use design_space_layer::dse_library::{idct, Explorer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = idct::idct_cores();
    println!("the five IDCT cores in the reuse library:");
    for c in &cores {
        println!(
            "  {:<8} {:<9} {:<7} area {:>9.0} um^2, delay {:>6.1} ns",
            c.name(),
            c.binding("Algorithm").unwrap(),
            c.binding("FabricationTechnology").unwrap(),
            c.merit_value(&FigureOfMerit::AreaUm2).unwrap(),
            c.merit_value(&FigureOfMerit::DelayNs).unwrap(),
        );
    }

    // The natural clusters in the evaluation space.
    let space: EvaluationSpace = cores.iter().map(|c| c.eval_point()).collect();
    let merits = [FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs];
    let clusters = space.cluster(&merits, 0.35);
    println!("\nnatural evaluation-space clusters:");
    for cl in &clusters {
        let names: Vec<&str> = cl.iter().map(|&i| space.points()[i].label()).collect();
        println!("  {names:?}");
    }

    // Compare the two organisations.
    let gen = idct::build_layer_generalization()?;
    let abs = idct::build_layer_abstraction()?;
    let c_gen = space.partition_coherence(&merits, &idct::family_grouping(&gen, &cores));
    let c_abs = space.partition_coherence(&merits, &idct::family_grouping(&abs, &cores));
    println!("\nfamily coherence (silhouette-style, higher is better):");
    println!("  generalization-first (Fig. 3): {c_gen:+.3}");
    println!("  abstraction-first    (Fig. 2): {c_abs:+.3}");

    // Explore the generalization layer: one decision lands the designer
    // in a coherent performance family.
    let library = idct::build_library();
    let mut exp = Explorer::new(&gen.space, gen.idct, &library);
    exp.session.set_requirement("WordSize", Value::from(16))?;
    exp.session.set_requirement("Precision", Value::from(12))?;
    exp.session
        .decide("ImplementationStyle", Value::from("Hardware"))?;
    exp.session
        .decide("FabricationTechnology", Value::from("0.35um"))?;
    println!("\nafter committing to 0.35um, the surviving family:");
    for core in exp.surviving_cores() {
        println!("  {core}");
    }
    if let Some((lo, hi)) = exp.merit_range(&FigureOfMerit::DelayNs) {
        println!("delay range is now tight: {lo:.0} .. {hi:.0} ns");
    }
    Ok(())
}
