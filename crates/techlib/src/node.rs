//! Fabrication-technology nodes and their scaling laws.

use std::fmt;


/// A fabrication node: maps the technology-independent units (GE, τ) of the
/// cell library to physical area (µm²) and delay (ns).
///
/// The presets follow classical constant-field scaling anchored at the
/// 0.35 µm node of the paper's case study: area per gate ∝ λ², gate delay
/// ∝ λ, supply voltage dropping at finer geometries.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricationNode {
    name: String,
    feature_nm: u32,
    ge_um2: f64,
    tau_ns: f64,
    vdd: f64,
}

/// Calibration anchor: the 0.35 µm node.
const REF_FEATURE_NM: f64 = 350.0;
const REF_GE_UM2: f64 = 9.0;
const REF_TAU_NS: f64 = 0.28;

impl FabricationNode {
    /// Builds a node from explicit parameters.
    pub fn new(
        name: impl Into<String>,
        feature_nm: u32,
        ge_um2: f64,
        tau_ns: f64,
        vdd: f64,
    ) -> Self {
        FabricationNode {
            name: name.into(),
            feature_nm,
            ge_um2,
            tau_ns,
            vdd,
        }
    }

    /// Derives a node from a feature size by classical scaling from the
    /// 0.35 µm anchor (area ∝ λ², delay ∝ λ).
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` is zero.
    pub fn scaled(feature_nm: u32) -> Self {
        assert!(feature_nm > 0, "feature size must be positive");
        let lambda = feature_nm as f64 / REF_FEATURE_NM;
        let vdd = match feature_nm {
            0..=280 => 2.5,
            281..=420 => 3.3,
            _ => 5.0,
        };
        FabricationNode {
            name: format!("{:.2}um", feature_nm as f64 / 1000.0),
            feature_nm,
            ge_um2: REF_GE_UM2 * lambda * lambda,
            tau_ns: REF_TAU_NS * lambda,
            vdd,
        }
    }

    /// The 0.7 µm node (the paper's "older technology" comparison point).
    pub fn n0700() -> Self {
        FabricationNode::scaled(700)
    }

    /// The 0.5 µm node.
    pub fn n0500() -> Self {
        FabricationNode::scaled(500)
    }

    /// The 0.35 µm node (the paper's G10-class target technology).
    pub fn n0350() -> Self {
        FabricationNode::scaled(350)
    }

    /// The 0.25 µm node (a forward-looking option).
    pub fn n0250() -> Self {
        FabricationNode::scaled(250)
    }

    /// Human-readable node name, e.g. `"0.35um"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Drawn feature size in nanometres.
    pub fn feature_nm(&self) -> u32 {
        self.feature_nm
    }

    /// Area of one gate equivalent, in µm².
    pub fn ge_um2(&self) -> f64 {
        self.ge_um2
    }

    /// Duration of one τ (nominal gate delay), in nanoseconds.
    pub fn tau_ns(&self) -> f64 {
        self.tau_ns
    }

    /// Nominal supply voltage, in volts (used by the power model).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }
}

impl fmt::Display for FabricationNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

foundation::impl_json_struct!(FabricationNode { name, feature_nm, ge_um2, tau_ns, vdd });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_node_matches_reference() {
        let n = FabricationNode::n0350();
        assert_eq!(n.feature_nm(), 350);
        assert!((n.ge_um2() - REF_GE_UM2).abs() < 1e-9);
        assert!((n.tau_ns() - REF_TAU_NS).abs() < 1e-9);
        assert_eq!(n.vdd(), 3.3);
    }

    #[test]
    fn scaling_is_quadratic_in_area_linear_in_delay() {
        let a = FabricationNode::n0350();
        let b = FabricationNode::n0700();
        assert!((b.ge_um2() / a.ge_um2() - 4.0).abs() < 1e-9);
        assert!((b.tau_ns() / a.tau_ns() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_steps_down_with_feature_size() {
        assert_eq!(FabricationNode::n0700().vdd(), 5.0);
        assert_eq!(FabricationNode::n0350().vdd(), 3.3);
        assert_eq!(FabricationNode::n0250().vdd(), 2.5);
    }

    #[test]
    fn names_are_formatted() {
        assert_eq!(FabricationNode::n0350().name(), "0.35um");
        assert_eq!(FabricationNode::n0700().to_string(), "0.70um");
    }

    #[test]
    #[should_panic(expected = "feature size must be positive")]
    fn zero_feature_panics() {
        let _ = FabricationNode::scaled(0);
    }
}
