//! Fig. 6: execution delay of one 1024-bit modular multiplication, the
//! hardware designs against the software routines — the range argument
//! that justifies treating "Implementation Style" as a generalized issue.

use hwmodel::designs::paper_designs;
use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};
use techlib::Technology;

use crate::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Point {
    /// Core label.
    pub label: String,
    /// `Hardware` or `Software`.
    pub style: &'static str,
    /// Delay of one 1024-bit modular multiplication, µs.
    pub delay_us: f64,
}

/// The operand length of the figure.
pub const EOL: u32 = 1024;

/// Runs the Fig.-6 comparison.
pub fn run(tech: &Technology) -> Vec<Fig6Point> {
    let mut out = Vec::new();
    // The paper's hardware picks: #5_16, #2_128, #8_64.
    let designs = paper_designs();
    for (idx, w) in [(4usize, 16u32), (1, 128), (7, 64)] {
        let family = &designs[idx];
        let arch = family.architecture(w).expect("valid width");
        let est = arch.estimate(EOL, tech);
        out.push(Fig6Point {
            label: format!("Design {}", family.core_label(w)),
            style: "Hardware",
            delay_us: est.latency_ns / 1000.0,
        });
    }
    // The paper's software picks: two ASM and two C routines.
    for (variant, cpu) in [
        (MontgomeryVariant::Cios, ProcessorModel::pentium60_asm()),
        (MontgomeryVariant::Cihs, ProcessorModel::pentium60_asm()),
        (MontgomeryVariant::Cios, ProcessorModel::pentium60_c()),
        (MontgomeryVariant::Cihs, ProcessorModel::pentium60_c()),
    ] {
        let routine = SoftwareRoutine::new(variant, cpu);
        out.push(Fig6Point {
            label: routine.label(),
            style: "Software",
            delay_us: routine.estimate_mont_mul_us(EOL),
        });
    }
    out.sort_by(|a, b| a.delay_us.total_cmp(&b.delay_us));
    out
}

/// Renders the figure as a table.
pub fn render(tech: &Technology) -> String {
    let points = run(tech);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.label.clone(), p.style.to_owned(), fmt::num(p.delay_us)])
        .collect();
    format!(
        "Fig. 6 — execution delay of a modular multiplication with {EOL}-bit operands\n\n{}",
        fmt::table(&["core", "style", "delay (µs)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_is_orders_of_magnitude_faster() {
        let points = run(&Technology::g10_035());
        let worst_hw = points
            .iter()
            .filter(|p| p.style == "Hardware")
            .map(|p| p.delay_us)
            .fold(0.0f64, f64::max);
        let best_sw = points
            .iter()
            .filter(|p| p.style == "Software")
            .map(|p| p.delay_us)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_sw > 50.0 * worst_hw,
            "software {best_sw} µs vs hardware {worst_hw} µs"
        );
    }

    #[test]
    fn paper_orderings_hold() {
        let points = run(&Technology::g10_035());
        let delay = |label: &str| {
            points
                .iter()
                .find(|p| p.label.contains(label))
                .unwrap()
                .delay_us
        };
        // ASM beats C, CIOS-C beats CIHS-C, #8 (Brickell) is the slowest hw.
        assert!(delay("CIHS ASM") < delay("CIHS C"));
        assert!(delay("CIOS C") < delay("CIHS C"));
        assert!(delay("#5_16") < delay("#8_64"));
        assert!(delay("#2_128") < delay("#8_64"));
    }

    #[test]
    fn magnitudes_land_in_the_papers_territory() {
        // Paper: hw ≈ 2–4.5 µs; ASM ≈ 0.8–1.1 ms; C ≈ 5.7–7.3 ms.
        let points = run(&Technology::g10_035());
        let delay = |label: &str| {
            points
                .iter()
                .find(|p| p.label.contains(label))
                .unwrap()
                .delay_us
        };
        assert!((0.8..=6.0).contains(&delay("#5_16")), "{}", delay("#5_16"));
        assert!(
            (300.0..=2500.0).contains(&delay("CIHS ASM")),
            "{}",
            delay("CIHS ASM")
        );
        assert!(
            (2500.0..=15000.0).contains(&delay("CIHS C")),
            "{}",
            delay("CIHS C")
        );
    }

    #[test]
    fn render_is_sorted_by_delay() {
        let s = render(&Technology::g10_035());
        let hw_pos = s.find("#5_16").unwrap();
        let sw_pos = s.find("CIHS C").unwrap();
        assert!(hw_pos < sw_pos);
    }
}
