//! One place that knows every shipped layer.
//!
//! The diagnose example, the resilience walkthrough, the server daemon
//! and the test suites all need "the shipped layers, built and paired
//! with their reuse libraries". Before this module each binary kept its
//! own hand-rolled list, and the lists drifted; [`load_all_layers`] is
//! now the single source of truth.

use dse::error::DseError;
use dse::hierarchy::{CdoId, DesignSpace};
use techlib::Technology;

use crate::reuse::ReuseLibrary;
use crate::{crypto, fir, idct};

/// The paper's walkthrough operand length, used to size the crypto
/// library's delay/area figures.
pub const PAPER_EOL: u32 = 768;

/// A shipped layer, built and ready to serve: its space, the CDO
/// exploration starts from, and the reuse library it indexes.
#[derive(Debug, Clone)]
pub struct LoadedLayer {
    /// Short machine name (`crypto`, `idct-gen`, …) — stable, used as
    /// the snapshot name on the server wire protocol.
    pub slug: &'static str,
    /// Human-readable name used in reports.
    pub title: &'static str,
    /// The built design space.
    pub space: DesignSpace,
    /// The CDO a fresh exploration session starts focused on.
    pub root: CdoId,
    /// The reuse library the layer indexes.
    pub library: ReuseLibrary,
}

/// Builds every shipped layer with its reuse library — the canonical
/// layer list shared by `diagnose`, `resilient_explore`, the server
/// daemon and the test suites.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn load_all_layers(tech: &Technology) -> Result<Vec<LoadedLayer>, DseError> {
    let crypto_library = crypto::build_library(tech, PAPER_EOL);
    let crypto_layer = crypto::build_layer()?;
    let crypto_tech = crypto::build_layer_technology_first()?;
    let idct_gen = idct::build_layer_generalization()?;
    let idct_abs = idct::build_layer_abstraction()?;
    let fir_layer = fir::build_layer()?;
    Ok(vec![
        LoadedLayer {
            slug: "crypto",
            title: "crypto (generalization hierarchy)",
            root: crypto_layer.omm,
            space: crypto_layer.space,
            library: crypto_library.clone(),
        },
        LoadedLayer {
            slug: "crypto-tech",
            title: "crypto (technology-first view)",
            root: crypto_tech.omm,
            space: crypto_tech.space,
            library: crypto_library,
        },
        LoadedLayer {
            slug: "idct-gen",
            title: "idct (generalization hierarchy)",
            root: idct_gen.idct,
            space: idct_gen.space,
            library: idct::build_library(),
        },
        LoadedLayer {
            slug: "idct-abs",
            title: "idct (abstraction-level view)",
            root: idct_abs.idct,
            space: idct_abs.space,
            library: idct::build_library(),
        },
        LoadedLayer {
            slug: "fir",
            title: "fir",
            root: fir_layer.fir,
            space: fir_layer.space,
            library: fir::build_library(tech),
        },
    ])
}

/// Builds one shipped layer by slug. `None` for an unknown slug.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn load_layer(slug: &str, tech: &Technology) -> Result<Option<LoadedLayer>, DseError> {
    Ok(load_all_layers(tech)?.into_iter().find(|l| l.slug == slug))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layers_load_with_nonempty_libraries() {
        let layers = load_all_layers(&Technology::g10_035()).unwrap();
        let slugs: Vec<&str> = layers.iter().map(|l| l.slug).collect();
        assert_eq!(
            slugs,
            vec!["crypto", "crypto-tech", "idct-gen", "idct-abs", "fir"]
        );
        for layer in &layers {
            assert!(!layer.space.is_empty(), "{}", layer.slug);
            assert!(!layer.library.cores().is_empty(), "{}", layer.slug);
            // The root really is in the space.
            let _ = layer.space.node(layer.root);
        }
    }

    #[test]
    fn load_layer_finds_by_slug() {
        let tech = Technology::g10_035();
        assert!(load_layer("crypto", &tech).unwrap().is_some());
        assert!(load_layer("nope", &tech).unwrap().is_none());
    }
}
