#![warn(missing_docs)]
//! Umbrella crate for the design-space-layer reproduction: re-exports
//! every workspace crate so examples and integration tests can reach the
//! whole stack through one dependency.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use bignum;
pub use coproc;
pub use foundation;
pub use dse;
pub use dse_library;
pub use dse_server;
pub use hwmodel;
pub use swmodel;
pub use techlib;
