//! Library/layer consistency linting.
//!
//! The design space layer indexes cores through their design-option
//! bindings, so a core whose bindings contradict the layer's declared
//! domains (a radix of 3, an unknown adder structure, …) would silently
//! disappear from every exploration. The lint makes such mismatches loud:
//! a design environment should run it whenever it imports a third-party
//! library under its layer.
//!
//! Findings are reported through the shared [`dse::diag`] framework, so
//! core-binding lints (`DSL1xx`) and static space analysis (`DSL0xx`,
//! [`dse::analyze`]) use the same codes, severities and rendering.

use dse::diag::{DiagCode, Diagnostic, Report, Span};
use dse::hierarchy::{CdoId, DesignSpace};
use dse::property::PropertyKind;

use crate::reuse::ReuseLibrary;

/// Checks every core's bindings against the properties visible at `cdo`
/// (the class the library is indexed under):
///
/// * a binding for a property the layer does not know is flagged as
///   `DSL101` (likely a typo that would make filtering silently miss it),
/// * a binding outside the property's declared domain is flagged as
///   `DSL102`,
/// * a binding for a *requirement* is flagged as `DSL103` (cores embody
///   decisions, not application requirements).
pub fn lint_library(space: &DesignSpace, cdo: CdoId, library: &ReuseLibrary) -> Report {
    // Collect every property visible anywhere in the subtree rooted at
    // `cdo` (cores may bind leaf-level issues).
    let mut visible = Vec::new();
    let mut stack = vec![cdo];
    while let Some(id) = stack.pop() {
        for (_, p) in space.effective_properties(id) {
            if !visible.iter().any(|(n, _)| *n == p.name()) {
                visible.push((p.name(), p));
            }
        }
        stack.extend(space.node(id).children().iter().copied());
    }

    let path = space.path_string(cdo);
    let mut report = Report::new();
    for core in library.cores() {
        for (name, value) in core.bindings() {
            let span = Span::at(path.clone()).core(core.name()).property(name);
            match visible.iter().find(|(n, _)| n == name) {
                None => report.push(Diagnostic::new(
                    DiagCode::CoreUnknownProperty,
                    span,
                    "binds a property the layer does not declare",
                )),
                Some((_, prop)) => {
                    if prop.kind() == PropertyKind::Requirement {
                        report.push(Diagnostic::new(
                            DiagCode::CoreBindsRequirement,
                            span,
                            "binds an application requirement",
                        ));
                    } else if !prop.domain().contains(value) {
                        report.push(Diagnostic::new(
                            DiagCode::CoreOutsideDomain,
                            span,
                            format!(
                                "value {value} is outside the declared domain {}",
                                prop.domain()
                            ),
                        ));
                    }
                }
            }
        }
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_record::CoreRecord;
    use crate::crypto;
    use dse::diag::Severity;
    use techlib::Technology;

    #[test]
    fn shipped_crypto_library_lints_clean() {
        let layer = crypto::build_layer().unwrap();
        let lib = crypto::build_library(&Technology::g10_035(), 768);
        let report = lint_library(&layer.space, layer.omm, &lib);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn out_of_domain_binding_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("broken");
        lib.push(
            CoreRecord::new("bad-radix", "vendor", "")
                .bind("ImplementationStyle", "Hardware")
                .bind("Radix", 3), // not a power of two
        );
        let report = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, DiagCode::CoreOutsideDomain);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.property.as_deref(), Some("Radix"));
        assert!(d.message.contains("outside the declared domain"));
    }

    #[test]
    fn unknown_property_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("typo");
        lib.push(CoreRecord::new("typo-core", "vendor", "").bind("Algoritm", "Montgomery"));
        let report = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, DiagCode::CoreUnknownProperty);
        assert!(d.message.contains("does not declare"));
        assert!(d.to_string().contains("typo-core"));
        assert!(d.to_string().contains("DSL101"));
    }

    #[test]
    fn requirement_binding_is_flagged() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("confused");
        lib.push(CoreRecord::new("req-core", "vendor", "").bind("EOL", 768));
        let report = lint_library(&layer.space, layer.omm, &lib);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, DiagCode::CoreBindsRequirement);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("application requirement"));
    }

    #[test]
    fn leaf_level_bindings_are_visible_from_the_root() {
        // AdderStructure is declared at the Montgomery/Brickell leaves,
        // yet cores bound under the OMM root must lint clean.
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("leaf");
        lib.push(CoreRecord::new("leaf-core", "vendor", "").bind("AdderStructure", "carry-save"));
        assert!(lint_library(&layer.space, layer.omm, &lib).is_clean());
    }

    #[test]
    fn findings_serialize_to_json() {
        let layer = crypto::build_layer().unwrap();
        let mut lib = ReuseLibrary::new("typo");
        lib.push(CoreRecord::new("typo-core", "vendor", "").bind("Algoritm", "Montgomery"));
        let report = lint_library(&layer.space, layer.omm, &lib);
        let text = foundation::json::encode(&report);
        assert!(text.contains("\"DSL101\""));
        let back: Report = foundation::json::decode(&text).unwrap();
        assert_eq!(back, report);
    }
}
