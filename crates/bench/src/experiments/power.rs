//! Extension experiment E-P1: power consumption as a figure of merit.
//!
//! The paper closes with "we are currently incorporating power
//! consumption in our case studies"; this experiment is that
//! incorporation. Every Table-1 design is priced with the `techlib`
//! dynamic power model at its own clock rate, exposing the energy story
//! the area/delay plots hide: fast designs burn more power, but finishing
//! sooner can still win on energy per operation.

use hwmodel::designs::paper_designs;
use techlib::{FabricationNode, LayoutStyle, Technology};

use crate::fmt;

/// One design's power/energy figures at 768-bit operands.
#[derive(Debug, Clone)]
pub struct PowerRow {
    /// Core label.
    pub label: String,
    /// Average dynamic power, mW.
    pub power_mw: f64,
    /// Energy per 768-bit modular multiplication, nJ.
    pub energy_nj: f64,
    /// Latency, µs (context).
    pub latency_us: f64,
}

/// The operand length of the experiment.
pub const EOL: u32 = 768;

/// Runs the power sweep over all eight families at 64-bit slices, for a
/// given technology.
pub fn run(tech: &Technology) -> Vec<PowerRow> {
    paper_designs()
        .iter()
        .map(|family| {
            let arch = family.architecture(64).expect("64-bit slices");
            let est = arch.estimate(EOL, tech);
            PowerRow {
                label: family.core_label(64),
                power_mw: est.power_mw,
                energy_nj: est.energy_per_op_nj(),
                latency_us: est.latency_ns / 1000.0,
            }
        })
        .collect()
}

/// Renders the power table for 0.35 µm and, for contrast, 0.7 µm.
pub fn render() -> String {
    let mut out =
        String::from("Extension E-P1 — power and energy per 768-bit modular multiplication\n\n");
    for tech in [
        Technology::g10_035(),
        Technology::new(FabricationNode::n0700(), LayoutStyle::StandardCell),
    ] {
        let rows = run(&tech);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt::num(r.power_mw),
                    fmt::num(r.energy_nj),
                    fmt::num(r.latency_us),
                ]
            })
            .collect();
        out.push_str(&format!(
            "{tech}\n{}\n",
            fmt::table(
                &["core", "power (mW)", "energy/op (nJ)", "latency (µs)"],
                &body
            )
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_designs_burn_more_power_but_can_win_on_energy() {
        let rows = run(&Technology::g10_035());
        let by = |label: &str| rows.iter().find(|r| r.label == label).unwrap().clone();
        let d1 = by("#1_64"); // CLA, slow clock
        let d2 = by("#2_64"); // CSA, fast clock
        assert!(d2.power_mw > d1.power_mw, "CSA runs a faster clock");
        // But #2 finishes in far fewer nanoseconds, so its energy per
        // operation stays competitive (within 2x either way).
        let ratio = d2.energy_nj / d1.energy_nj;
        assert!((0.4..=2.0).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn older_node_needs_more_energy_per_operation() {
        let new = run(&Technology::g10_035());
        let old = run(&Technology::new(
            FabricationNode::n0700(),
            LayoutStyle::StandardCell,
        ));
        for (n, o) in new.iter().zip(&old) {
            assert!(
                o.energy_nj > 2.0 * n.energy_nj,
                "{}: {} vs {}",
                n.label,
                o.energy_nj,
                n.energy_nj
            );
        }
    }

    #[test]
    fn all_eight_designs_have_positive_figures() {
        for r in run(&Technology::g10_035()) {
            assert!(r.power_mw > 0.0 && r.energy_nj > 0.0, "{}", r.label);
        }
    }

    #[test]
    fn render_covers_both_nodes() {
        let s = render();
        assert!(s.contains("0.35um standard-cell"));
        assert!(s.contains("0.70um standard-cell"));
    }
}
