//! Cycle-accurate functional simulation of the modular-multiplier
//! datapaths.
//!
//! The simulator executes the digit-serial register-transfer behaviour of
//! a [`ModMulArchitecture`]: one loop iteration per datapath cycle, with
//! the accumulator held in genuine redundant (sum, carry) form for
//! carry-save designs — including the low-bit resolution needed to shift a
//! redundant value right, which is the classic subtlety of carry-save
//! Montgomery implementations.
//!
//! Every result is checked (in the test suite) against the `bignum` golden
//! models: [`bignum::mont_mul_digit_serial`] for Montgomery datapaths and
//! [`bignum::brickell_mod_mul`] for Brickell datapaths.

use std::fmt;

use bignum::{mod_inverse, UBig};

use crate::adder::{csa3, AdderKind};
use crate::design::{Algorithm, ModMulArchitecture};

/// Errors from driving the simulator with invalid operands.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The modulus is zero or one.
    ModulusTooSmall,
    /// A Montgomery datapath was fed an even modulus (paper CC1).
    EvenModulusForMontgomery,
    /// An operand is not reduced below the modulus.
    UnreducedOperand,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ModulusTooSmall => write!(f, "modulus must be at least 2"),
            SimError::EvenModulusForMontgomery => {
                write!(f, "montgomery datapaths require an odd modulus")
            }
            SimError::UnreducedOperand => {
                write!(f, "operands must be reduced below the modulus")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one simulated modular multiplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutput {
    /// The computed product. For Montgomery datapaths this is the
    /// Montgomery product `A·B·2^(−k·iterations) mod M`; for Brickell it is
    /// the plain product `A·B mod M`.
    pub product: UBig,
    /// Total latency in clock cycles (iterations + pipeline fill + setup).
    pub cycles: u64,
    /// Digit iterations executed.
    pub iterations: u64,
    /// The effective operand length the datapath was configured for.
    pub eol: u32,
}

/// One recorded datapath iteration (for [`simulate_traced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationTrace {
    /// Iteration index.
    pub index: u64,
    /// The operand digit `aᵢ` consumed this cycle.
    pub digit: u64,
    /// The quotient digit `qᵢ` (Montgomery only).
    pub quotient: Option<u64>,
    /// Accumulator sum register after the cycle.
    pub acc_sum: UBig,
    /// Accumulator carry register after the cycle (carry-save designs).
    pub acc_carry: Option<UBig>,
}

/// A full simulation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    /// The final output.
    pub output: SimOutput,
    /// Per-iteration register snapshots.
    pub steps: Vec<IterationTrace>,
}

/// Simulates one modular multiplication on `arch`.
///
/// The effective operand length is the modulus bit-length rounded up to a
/// multiple of the slice width (the datapath is built from whole slices).
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
) -> Result<SimOutput, SimError> {
    run(arch, a, b, m, None)
}

/// Like [`simulate`], additionally recording every iteration.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_traced(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
) -> Result<SimTrace, SimError> {
    let mut steps = Vec::new();
    let output = run(arch, a, b, m, Some(&mut steps))?;
    Ok(SimTrace { output, steps })
}

/// Computes the plain product `A·B mod M` through the datapath.
///
/// For Brickell this is a single pass. For Montgomery it is the standard
/// two-pass trick: a second pass against the precomputed constant
/// `2^(2·k·I) mod M` cancels the `2^(−k·I)` factors, so the whole
/// computation still runs on the modelled hardware.
///
/// # Errors
///
/// See [`SimError`].
pub fn mod_mul_via(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
) -> Result<UBig, SimError> {
    match arch.algorithm() {
        Algorithm::Brickell => Ok(simulate(arch, a, b, m)?.product),
        Algorithm::Montgomery => {
            let eol = effective_eol(arch, m);
            let iters = arch.iterations(eol);
            let shift = arch.digit_bits() as u64 * iters;
            let correction = UBig::power_of_two(2 * shift as u32).rem(m);
            let pass1 = simulate(arch, a, b, m)?.product;
            Ok(simulate(arch, &pass1, &correction, m)?.product)
        }
    }
}

/// The effective operand length used for `m` on `arch`: the modulus
/// bit-length rounded up to a whole number of slices.
pub fn effective_eol(arch: &ModMulArchitecture, m: &UBig) -> u32 {
    let w = arch.slice_width();
    m.bit_len().max(1).div_ceil(w) * w
}

/// Renders a trace as a fixed-width register dump — one line per datapath
/// iteration, useful when debugging a mismatching configuration.
pub fn render_trace(trace: &SimTrace) -> String {
    let mut out = format!(
        "eol={} iterations={} cycles={} product=0x{:x}\n",
        trace.output.eol, trace.output.iterations, trace.output.cycles, trace.output.product
    );
    out.push_str("  it  digit  q    accumulator (sum / carry)\n");
    for step in &trace.steps {
        let q = step
            .quotient
            .map(|q| q.to_string())
            .unwrap_or_else(|| "-".to_owned());
        match &step.acc_carry {
            Some(c) => out.push_str(&format!(
                "{:>4}  {:>5}  {:<3}  0x{:x} / 0x{:x}\n",
                step.index, step.digit, q, step.acc_sum, c
            )),
            None => out.push_str(&format!(
                "{:>4}  {:>5}  {:<3}  0x{:x}\n",
                step.index, step.digit, q, step.acc_sum
            )),
        }
    }
    out
}

fn run(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
    trace: Option<&mut Vec<IterationTrace>>,
) -> Result<SimOutput, SimError> {
    if *m <= UBig::one() {
        return Err(SimError::ModulusTooSmall);
    }
    if a >= m || b >= m {
        return Err(SimError::UnreducedOperand);
    }
    let eol = effective_eol(arch, m);
    let cycles = arch
        .cycles(eol)
        .expect("effective_eol is a multiple of the slice width");
    match arch.algorithm() {
        Algorithm::Montgomery => {
            if m.is_even() {
                return Err(SimError::EvenModulusForMontgomery);
            }
            let product = montgomery_pass(arch, a, b, m, eol, trace);
            Ok(SimOutput {
                product,
                cycles,
                iterations: arch.iterations(eol),
                eol,
            })
        }
        Algorithm::Brickell => {
            let product = brickell_pass(arch, a, b, m, eol, trace);
            Ok(SimOutput {
                product,
                cycles,
                iterations: arch.iterations(eol),
                eol,
            })
        }
    }
}

/// LSB-first Montgomery pass (paper Fig. 10), with redundant carry-save
/// state when the architecture uses CSA accumulation.
fn montgomery_pass(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
    eol: u32,
    mut trace: Option<&mut Vec<IterationTrace>>,
) -> UBig {
    let k = arch.digit_bits();
    let r = 1u64 << k;
    let m0 = m.bits(0, k);
    let m0_inv = mod_inverse(&UBig::from(m0), &UBig::from(r))
        .expect("odd modulus digit invertible mod 2^k")
        .to_u64()
        .expect("fits in a digit");
    // The paper's (r − M₀)⁻¹ factor: −M⁻¹ mod 2ᵏ.
    let m_prime = (r - m0_inv) % r;
    let iters = arch.iterations(eol);
    let redundant = arch.adder() == AdderKind::CarrySave;

    // Accumulator: (sum, carry) redundant pair; carry stays zero for
    // non-redundant designs.
    let mut s = UBig::zero();
    let mut c = UBig::zero();

    for i in 0..iters {
        let a_i = a.digit(i as u32, k);
        let addend = b * &UBig::from(a_i);

        if redundant {
            let (ns, nc) = csa3(&s, &c, &addend);
            s = ns;
            c = nc;
        } else {
            // A carry-propagate design resolves the sum each cycle.
            s = &s + &addend;
        }

        // Quotient digit from the low redundant bits: a short resolver
        // adder over 2k bits suffices to know (S + C) mod 2ᵏ.
        let low = (s.low_bits(2 * k).to_u64().expect("2k <= 64 bits")
            + c.low_bits(2 * k).to_u64().expect("2k <= 64 bits"))
            & ((1u64 << k) - 1);
        let q = low.wrapping_mul(m_prime) & (r - 1);
        let q_addend = m * &UBig::from(q);

        if redundant {
            let (ns, nc) = csa3(&s, &c, &q_addend);
            s = ns;
            c = nc;
            // Shift the redundant pair right by k: the low k bits of S+C
            // are zero by construction, but their carry into bit k must be
            // resolved explicitly (a k-bit adder in hardware).
            let low_sum = s.bits(0, k) + c.bits(0, k);
            debug_assert_eq!(low_sum & (r - 1), 0, "montgomery exactness");
            let carry = low_sum >> k;
            s = s.shr(k);
            c = c.shr(k);
            if carry != 0 {
                let (ns, nc) = csa3(&s, &c, &UBig::from(carry));
                s = ns;
                c = nc;
            }
        } else {
            s = &s + &q_addend;
            debug_assert_eq!(s.bits(0, k), 0, "montgomery exactness");
            s = s.shr(k);
        }

        if let Some(steps) = trace.as_deref_mut() {
            steps.push(IterationTrace {
                index: i,
                digit: a_i,
                quotient: Some(q),
                acc_sum: s.clone(),
                acc_carry: redundant.then(|| c.clone()),
            });
        }
    }

    // Final conversion out of redundant form plus the conditional
    // subtraction of Fig. 10 lines 5–6.
    let mut acc = &s + &c;
    while acc >= *m {
        acc = acc.checked_sub(m).expect("acc >= m");
    }
    acc
}

/// MSB-first Brickell pass: shift-accumulate with interleaved reduction by
/// conditional subtraction.
fn brickell_pass(
    arch: &ModMulArchitecture,
    a: &UBig,
    b: &UBig,
    m: &UBig,
    eol: u32,
    mut trace: Option<&mut Vec<IterationTrace>>,
) -> UBig {
    let k = arch.digit_bits();
    let r = 1u64 << k;
    let digits = eol.div_ceil(k) as u64;
    let mut acc = UBig::zero();

    for step in 0..digits {
        let i = digits - 1 - step; // most significant digit first
        let a_i = a.digit(i as u32, k);
        acc = &acc.shl(k) + &(b * &UBig::from(a_i));
        // acc < 2ᵏ·M + 2ᵏ·M = 2ᵏ⁺¹·M before reduction; the reduction unit
        // performs bounded conditional subtraction of multiples of M.
        let mut subtractions = 0u64;
        while acc >= *m {
            acc = acc.checked_sub(m).expect("acc >= m");
            subtractions += 1;
            assert!(
                subtractions <= 2 * r,
                "brickell reduction bound violated: more than {} subtractions",
                2 * r
            );
        }
        if let Some(steps) = trace.as_deref_mut() {
            steps.push(IterationTrace {
                index: step,
                digit: a_i,
                quotient: None,
                acc_sum: acc.clone(),
                acc_carry: None,
            });
        }
    }
    acc
}

foundation::impl_json_struct!(SimOutput { product, cycles, iterations, eol });
foundation::impl_json_struct!(IterationTrace { index, digit, quotient, acc_sum, acc_carry });
foundation::impl_json_struct!(SimTrace { output, steps });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::paper_designs;
    use bignum::{brickell_mod_mul, mont_mul_digit_serial, uniform_below};
    use foundation::rng::{SeedableRng, StdRng};

    fn odd_modulus(bits: u32, rng: &mut StdRng) -> UBig {
        let mut m = uniform_below(&UBig::power_of_two(bits), rng);
        m.set_bit(bits - 1, true);
        m.set_bit(0, true);
        m
    }

    #[test]
    fn montgomery_designs_match_golden_model() {
        let mut rng = StdRng::seed_from_u64(42);
        for d in paper_designs()
            .iter()
            .filter(|d| d.algorithm() == Algorithm::Montgomery)
        {
            for w in [8u32, 32] {
                let arch = d.architecture(w).unwrap();
                let m = odd_modulus(96, &mut rng);
                let eol = effective_eol(&arch, &m);
                let a = uniform_below(&m, &mut rng);
                let b = uniform_below(&m, &mut rng);
                let out = simulate(&arch, &a, &b, &m).unwrap();
                let golden = mont_mul_digit_serial(
                    &a,
                    &b,
                    &m,
                    arch.digit_bits(),
                    arch.iterations(eol) as u32,
                )
                .unwrap();
                assert_eq!(out.product, golden, "{} w{w}", d.name());
            }
        }
    }

    #[test]
    fn brickell_designs_match_golden_model() {
        let mut rng = StdRng::seed_from_u64(43);
        for d in paper_designs()
            .iter()
            .filter(|d| d.algorithm() == Algorithm::Brickell)
        {
            let arch = d.architecture(16).unwrap();
            let m = odd_modulus(80, &mut rng);
            let a = uniform_below(&m, &mut rng);
            let b = uniform_below(&m, &mut rng);
            let out = simulate(&arch, &a, &b, &m).unwrap();
            assert_eq!(out.product, brickell_mod_mul(&a, &b, &m, arch.digit_bits()));
            assert_eq!(out.product, a.mod_mul(&b, &m));
        }
    }

    #[test]
    fn brickell_handles_even_modulus() {
        let arch = paper_designs()[7].architecture(8).unwrap();
        let m = UBig::from(1_000_000u64);
        let a = UBig::from(999_983u64);
        let b = UBig::from(314_159u64);
        let out = simulate(&arch, &a, &b, &m).unwrap();
        assert_eq!(out.product, a.mod_mul(&b, &m));
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        let arch = paper_designs()[1].architecture(8).unwrap();
        let err = simulate(&arch, &UBig::one(), &UBig::one(), &UBig::from(16u64)).unwrap_err();
        assert_eq!(err, SimError::EvenModulusForMontgomery);
    }

    #[test]
    fn rejects_unreduced_operands_and_tiny_moduli() {
        let arch = paper_designs()[1].architecture(8).unwrap();
        let m = UBig::from(101u64);
        assert_eq!(
            simulate(&arch, &UBig::from(101u64), &UBig::one(), &m).unwrap_err(),
            SimError::UnreducedOperand
        );
        assert_eq!(
            simulate(&arch, &UBig::zero(), &UBig::zero(), &UBig::one()).unwrap_err(),
            SimError::ModulusTooSmall
        );
    }

    #[test]
    fn mod_mul_via_gives_plain_product_for_all_designs() {
        let mut rng = StdRng::seed_from_u64(44);
        let m = odd_modulus(64, &mut rng);
        let a = uniform_below(&m, &mut rng);
        let b = uniform_below(&m, &mut rng);
        let expect = a.mod_mul(&b, &m);
        for d in paper_designs() {
            let arch = d.architecture(16).unwrap();
            assert_eq!(
                mod_mul_via(&arch, &a, &b, &m).unwrap(),
                expect,
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn trace_records_every_iteration() {
        let arch = paper_designs()[1].architecture(8).unwrap(); // #2 CSA
        let m = UBig::from(251u64);
        let t = simulate_traced(&arch, &UBig::from(200u64), &UBig::from(123u64), &m).unwrap();
        assert_eq!(t.steps.len() as u64, t.output.iterations);
        // CSA design: redundant carry register recorded.
        assert!(t.steps[0].acc_carry.is_some());
        assert!(t.steps[0].quotient.is_some());
        // Redundant invariant: sum + carry stays below 2M after reduction steps.
        for step in &t.steps {
            let total = &step.acc_sum + step.acc_carry.as_ref().unwrap();
            assert!(total < (&m + &m), "iteration {}", step.index);
        }
    }

    #[test]
    fn trace_rendering_lists_every_iteration() {
        let arch = paper_designs()[1].architecture(8).unwrap();
        let m = UBig::from(251u64);
        let t = simulate_traced(&arch, &UBig::from(99u64), &UBig::from(123u64), &m).unwrap();
        let rendered = render_trace(&t);
        assert!(rendered.starts_with("eol=8 iterations=9"));
        assert_eq!(rendered.lines().count(), 2 + t.steps.len());
        assert!(rendered.contains(" / 0x"), "redundant pair shown");
        // A CLA trace renders without a carry column.
        let cla = paper_designs()[0].architecture(8).unwrap();
        let t2 = simulate_traced(&cla, &UBig::from(99u64), &UBig::from(123u64), &m).unwrap();
        assert!(!render_trace(&t2).contains(" / 0x"));
    }

    #[test]
    fn cla_trace_has_no_carry_register() {
        let arch = paper_designs()[0].architecture(8).unwrap(); // #1 CLA
        let m = UBig::from(251u64);
        let t = simulate_traced(&arch, &UBig::from(7u64), &UBig::from(9u64), &m).unwrap();
        assert!(t.steps.iter().all(|s| s.acc_carry.is_none()));
    }

    #[test]
    fn effective_eol_rounds_up_to_slices() {
        let arch = paper_designs()[1].architecture(64).unwrap();
        assert_eq!(effective_eol(&arch, &UBig::power_of_two(100)), 128);
        assert_eq!(effective_eol(&arch, &UBig::power_of_two(63)), 64);
        assert_eq!(effective_eol(&arch, &UBig::one()), 64);
    }

    #[test]
    fn zero_operands_produce_zero() {
        let mut rng = StdRng::seed_from_u64(45);
        let m = odd_modulus(40, &mut rng);
        for d in paper_designs() {
            let arch = d.architecture(8).unwrap();
            let out = simulate(&arch, &UBig::zero(), &UBig::zero(), &m).unwrap();
            assert!(out.product.is_zero(), "{}", d.name());
        }
    }

    mod properties {
        use super::*;
        use crate::adder::AdderKind;
        use crate::multiplier::DigitMultiplierKind;
        use foundation::check::{self, Gen};

        /// Rejection-samples a valid architecture from the Table-1 axes.
        fn arb_arch(g: &mut Gen) -> ModMulArchitecture {
            loop {
                let alg = *g.choose(&[Algorithm::Montgomery, Algorithm::Brickell]);
                let k = *g.choose(&[1u32, 2, 3, 4]);
                let adder = *g.choose(&[
                    AdderKind::RippleCarry,
                    AdderKind::CarryLookAhead,
                    AdderKind::CarrySave,
                ]);
                let width = *g.choose(&[8u32, 12, 24]);
                if alg == Algorithm::Brickell && k != 1 {
                    continue;
                }
                let mult = if k == 1 {
                    DigitMultiplierKind::AndRow
                } else {
                    DigitMultiplierKind::MuxTable
                };
                if !width.is_multiple_of(k) {
                    continue;
                }
                if let Ok(arch) = ModMulArchitecture::new(alg, 1 << k, width, adder, mult) {
                    return arch;
                }
            }
        }

        fn arb_odd_modulus(g: &mut Gen) -> UBig {
            let len = g.usize_in(1, 4);
            let mut limbs: Vec<u32> = (0..len).map(|_| g.u32()).collect();
            if let Some(last) = limbs.last_mut() {
                *last |= 0x8000_0000; // full width
            }
            limbs[0] |= 1; // odd
            UBig::from_limbs(limbs)
        }

        #[test]
        fn any_architecture_matches_the_golden_model() {
            check::run_n("any_architecture_matches_the_golden_model", 64, |g| {
                let arch = arb_arch(g);
                let m = arb_odd_modulus(g);
                let a = UBig::from(g.u64()).rem(&m);
                let b = UBig::from(g.u64()).rem(&m);
                let out = simulate(&arch, &a, &b, &m).unwrap();
                let expect = match arch.algorithm() {
                    Algorithm::Montgomery => {
                        let eol = effective_eol(&arch, &m);
                        mont_mul_digit_serial(
                            &a,
                            &b,
                            &m,
                            arch.digit_bits(),
                            arch.iterations(eol) as u32,
                        )
                        .unwrap()
                    }
                    Algorithm::Brickell => brickell_mod_mul(&a, &b, &m, arch.digit_bits()),
                };
                assert_eq!(&out.product, &expect, "{}", arch);
                assert!(out.product < m, "result fully reduced");
                assert_eq!(out.cycles, arch.cycles(out.eol).unwrap());
            });
        }

        #[test]
        fn plain_product_via_any_architecture() {
            check::run_n("plain_product_via_any_architecture", 64, |g| {
                let arch = arb_arch(g);
                let m = arb_odd_modulus(g);
                let a = UBig::from(g.u64()).rem(&m);
                let b = UBig::from(g.u64()).rem(&m);
                let got = mod_mul_via(&arch, &a, &b, &m).unwrap();
                assert_eq!(got, a.mod_mul(&b, &m), "{}", arch);
            });
        }
    }

    #[test]
    fn exhaustive_tiny_modulus_montgomery() {
        // Every operand pair mod 97 through the #2 datapath, cross-checked
        // against the golden digit-serial model.
        let arch = paper_designs()[1].architecture(8).unwrap();
        let m = UBig::from(97u64);
        for a in (0..97u64).step_by(5) {
            for b in (0..97u64).step_by(7) {
                let out = simulate(&arch, &UBig::from(a), &UBig::from(b), &m).unwrap();
                let golden =
                    mont_mul_digit_serial(&UBig::from(a), &UBig::from(b), &m, 1, 9).unwrap();
                assert_eq!(out.product, golden, "a={a} b={b}");
            }
        }
    }
}
