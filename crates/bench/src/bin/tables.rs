//! The table/figure regeneration harness.
//!
//! ```text
//! cargo run -p bench --bin tables -- all
//! cargo run -p bench --bin tables -- table1 fig9
//! ```

use bench::experiments::{
    self, ablation_cc2, ablation_pruning, cdos, fig10, fig12, fig3, fig6, fig9, fir, hierarchy,
    methods, power, table1, walkthrough,
};
use techlib::Technology;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: tables <artifact>... | all\n\nartifacts:");
        for (name, doc) in experiments::ALL {
            eprintln!("  {name:<18} {doc}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let tech = Technology::g10_035();
    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for name in wanted {
        let report = match name {
            "table1" => table1::render(&tech),
            "fig6" => fig6::render(&tech),
            "fig9" => fig9::render(&tech),
            "fig12" => fig12::render(&tech),
            "fig3" => fig3::render(),
            "fig10" => fig10::render(),
            "hierarchy" => hierarchy::render(),
            "cdos" => cdos::render(),
            "fig13" | "walkthrough" => walkthrough::render(),
            "ablation-pruning" => ablation_pruning::render(&tech),
            "ablation-cc2" => ablation_cc2::render(),
            "power" => power::render(),
            "methods" => methods::render(),
            "fir" => fir::render(&tech),
            other => {
                eprintln!("unknown artifact {other:?}; see --help");
                std::process::exit(2);
            }
        };
        println!("{}", "=".repeat(78));
        println!("{report}");
    }
}
