//! Microbenchmarks of the `bignum` substrate: the arithmetic every other
//! layer of the reproduction stands on.

fn main() {
    bench::suites::bignum_ops().finish();
}
