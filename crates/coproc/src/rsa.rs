//! A toy RSA built on the coprocessor — the "public key encryption and
//! decrypting" application the paper's case study motivates.
//!
//! This is demonstration-grade (no padding, no side-channel hygiene); its
//! purpose is to exercise a full application workload through whichever
//! multiplier engine the exploration selected.

use bignum::{mod_inverse, random_prime, UBig};
use foundation::rng::Rng;

use crate::engine::ModMulEngine;
use crate::error::CoprocError;
use crate::exponentiator::ModExp;

/// An RSA key pair, including the CRT private components.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyPair {
    /// Modulus `n = p·q`.
    pub n: UBig,
    /// Public exponent.
    pub e: UBig,
    /// Private exponent.
    pub d: UBig,
    /// First prime factor.
    pub p: UBig,
    /// Second prime factor.
    pub q: UBig,
    /// `d mod (p−1)` — the CRT exponent for the `p` branch.
    pub d_p: UBig,
    /// `d mod (q−1)` — the CRT exponent for the `q` branch.
    pub d_q: UBig,
    /// `q⁻¹ mod p` — the CRT recombination coefficient.
    pub q_inv: UBig,
}

/// Generates a key pair with an `bits`-bit modulus (two `bits/2`-bit
/// primes), public exponent 65537.
///
/// # Panics
///
/// Panics if `bits < 32`.
pub fn generate_keys<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> KeyPair {
    assert!(bits >= 32, "need at least 32 modulus bits");
    let e = UBig::from(65537u64);
    loop {
        let p = random_prime(bits / 2, rng);
        let q = random_prime(bits - bits / 2, rng);
        if p == q {
            continue;
        }
        let n = &p * &q;
        let p_minus_1 = &p - &UBig::one();
        let q_minus_1 = &q - &UBig::one();
        let phi = &p_minus_1 * &q_minus_1;
        let (Some(d), Some(q_inv)) = (mod_inverse(&e, &phi), mod_inverse(&q, &p)) else {
            continue;
        };
        let d_p = d.rem(&p_minus_1);
        let d_q = d.rem(&q_minus_1);
        return KeyPair {
            n,
            e,
            d,
            p,
            q,
            d_p,
            d_q,
            q_inv,
        };
    }
}

/// Encrypts `message` (< n) under the public key with the given engine.
///
/// # Errors
///
/// Returns an error for unreduced messages or engine failures.
pub fn encrypt<E: ModMulEngine>(
    engine: E,
    keys: &KeyPair,
    message: &UBig,
) -> Result<UBig, CoprocError> {
    ModExp::new(engine).mod_pow(message, &keys.e, &keys.n)
}

/// Decrypts `ciphertext` under the private key with the given engine.
///
/// # Errors
///
/// Returns an error for unreduced ciphertexts or engine failures.
pub fn decrypt<E: ModMulEngine>(
    engine: E,
    keys: &KeyPair,
    ciphertext: &UBig,
) -> Result<UBig, CoprocError> {
    ModExp::new(engine).mod_pow(ciphertext, &keys.d, &keys.n)
}

/// CRT-accelerated decryption: two half-size exponentiations (mod `p` and
/// mod `q`) recombined with Garner's formula — roughly a 4× speedup over
/// the plain private-key operation, visible directly in the engines'
/// accumulated cycle counts.
///
/// Each branch runs on its own engine instance (a real coprocessor would
/// either time-multiplex one multiplier or instantiate two).
///
/// # Errors
///
/// Returns an error for unreduced ciphertexts or engine failures.
pub fn decrypt_crt<E: ModMulEngine>(
    engine_p: E,
    engine_q: E,
    keys: &KeyPair,
    ciphertext: &UBig,
) -> Result<(UBig, u64), CoprocError> {
    if ciphertext >= &keys.n {
        return Err(CoprocError::UnreducedOperand);
    }
    let mut exp_p = ModExp::new(engine_p);
    let mut exp_q = ModExp::new(engine_q);
    let c_p = ciphertext.rem(&keys.p);
    let c_q = ciphertext.rem(&keys.q);
    let rep_p = exp_p.mod_pow_report(&c_p, &keys.d_p, &keys.p)?;
    let rep_q = exp_q.mod_pow_report(&c_q, &keys.d_q, &keys.q)?;
    // Garner recombination: m = m_q + q·(q_inv·(m_p − m_q) mod p).
    let diff = rep_p.result.mod_sub(&rep_q.result, &keys.p);
    let h = keys.q_inv.mod_mul(&diff, &keys.p);
    let m = &rep_q.result + &(&keys.q * &h);
    Ok((m, rep_p.cycles + rep_q.cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HardwareEngine, ReferenceEngine, SoftwareEngine};
    use bignum::uniform_below;
    use hwmodel::paper_designs;
    use foundation::rng::{SeedableRng, StdRng};
    use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};

    #[test]
    fn roundtrip_with_reference_engine() {
        let mut rng = StdRng::seed_from_u64(31);
        let keys = generate_keys(128, &mut rng);
        let msg = uniform_below(&keys.n, &mut rng);
        let ct = encrypt(ReferenceEngine::new(), &keys, &msg).unwrap();
        let pt = decrypt(ReferenceEngine::new(), &keys, &ct).unwrap();
        assert_eq!(pt, msg);
        assert_ne!(ct, msg, "encryption should change the message");
    }

    #[test]
    fn roundtrip_with_hardware_engine() {
        let mut rng = StdRng::seed_from_u64(32);
        let keys = generate_keys(64, &mut rng);
        let msg = uniform_below(&keys.n, &mut rng);
        // n = p·q with odd primes is odd, so the Montgomery datapath works.
        let arch = paper_designs()[1].architecture(16).unwrap();
        let ct = encrypt(HardwareEngine::new(arch.clone(), 3.0), &keys, &msg).unwrap();
        let pt = decrypt(HardwareEngine::new(arch, 3.0), &keys, &ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn roundtrip_with_software_engine() {
        let mut rng = StdRng::seed_from_u64(33);
        let keys = generate_keys(96, &mut rng);
        let msg = uniform_below(&keys.n, &mut rng);
        let make = || {
            SoftwareEngine::new(SoftwareRoutine::new(
                MontgomeryVariant::Cios,
                ProcessorModel::pentium60_asm(),
            ))
        };
        let ct = encrypt(make(), &keys, &msg).unwrap();
        let pt = decrypt(make(), &keys, &ct).unwrap();
        assert_eq!(pt, msg);
    }

    #[test]
    fn crt_decryption_matches_plain_decryption() {
        let mut rng = StdRng::seed_from_u64(35);
        let keys = generate_keys(96, &mut rng);
        let msg = uniform_below(&keys.n, &mut rng);
        let ct = encrypt(ReferenceEngine::new(), &keys, &msg).unwrap();
        let plain = decrypt(ReferenceEngine::new(), &keys, &ct).unwrap();
        let (crt, _) =
            decrypt_crt(ReferenceEngine::new(), ReferenceEngine::new(), &keys, &ct).unwrap();
        assert_eq!(plain, msg);
        assert_eq!(crt, msg);
    }

    #[test]
    fn crt_saves_hardware_cycles() {
        let mut rng = StdRng::seed_from_u64(36);
        let keys = generate_keys(64, &mut rng);
        let msg = uniform_below(&keys.n, &mut rng);
        let arch = paper_designs()[1].architecture(8).unwrap();
        let ct = encrypt(HardwareEngine::new(arch.clone(), 3.0), &keys, &msg).unwrap();

        let mut plain = ModExp::new(HardwareEngine::new(arch.clone(), 3.0));
        let plain_report = plain.mod_pow_report(&ct, &keys.d, &keys.n).unwrap();
        let (crt_msg, crt_cycles) = decrypt_crt(
            HardwareEngine::new(arch.clone(), 3.0),
            HardwareEngine::new(arch, 3.0),
            &keys,
            &ct,
        )
        .unwrap();
        assert_eq!(crt_msg, msg);
        assert_eq!(plain_report.result, msg);
        assert!(
            crt_cycles * 2 < plain_report.cycles,
            "CRT {} cycles vs plain {}",
            crt_cycles,
            plain_report.cycles
        );
    }

    #[test]
    fn crt_rejects_unreduced_ciphertext() {
        let mut rng = StdRng::seed_from_u64(37);
        let keys = generate_keys(64, &mut rng);
        let err = decrypt_crt(
            ReferenceEngine::new(),
            ReferenceEngine::new(),
            &keys,
            &keys.n,
        )
        .unwrap_err();
        assert_eq!(err, crate::CoprocError::UnreducedOperand);
    }

    #[test]
    fn keys_are_consistent() {
        let mut rng = StdRng::seed_from_u64(34);
        let keys = generate_keys(64, &mut rng);
        assert!(keys.n.is_odd());
        // Each prime has its top bit set, so n = p·q has 63 or 64 bits.
        assert!((63..=64).contains(&keys.n.bit_len()), "{}", keys.n.bit_len());
        // e·d ≡ 1 (mod φ) implies m^(e·d) ≡ m — spot check.
        let m = UBig::from(42u64);
        assert_eq!(m.mod_pow(&keys.e, &keys.n).mod_pow(&keys.d, &keys.n), m);
    }
}
