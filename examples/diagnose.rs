//! Static analysis over every shipped design space layer.
//!
//! Runs [`dse::analyze::analyze`] on the crypto, IDCT and FIR layers and
//! prints each report in compiler style. `scripts/verify.sh` runs this as
//! a gate: shipped spaces must be error-free.
//!
//! ```text
//! cargo run --example diagnose                 # human-readable reports
//! cargo run --example diagnose -- --json       # machine-readable JSON
//! cargo run --example diagnose -- --stats      # solver counters + wall time
//! cargo run --example diagnose -- --synthetic  # add the ≥10⁶-combination stress space
//! ```
//!
//! `--stats` reports, per space: propagations run, conflicts found,
//! fixpoint iterations, exact-search nodes and wall time. `--synthetic`
//! appends the seeded [`dse_library::synthetic`] stress layer — a space
//! the legacy exhaustive checker cannot finish — which is how the
//! verify-script solver gate times the propagation engine.
//!
//! Exits nonzero when any space has an error-severity finding.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use design_space_layer::dse::analyze::{analyze_detailed, solve::SolveTotals, DomainEngine};
use design_space_layer::dse::diag::Report;
use design_space_layer::dse::hierarchy::DesignSpace;
use design_space_layer::dse_library::load_all_layers;
use design_space_layer::dse_library::synthetic::{build_stress_layer, STRESS_SEED};
use design_space_layer::foundation::json::{encode_pretty, Json, ToJson};
use design_space_layer::techlib::Technology;

/// One analyzed space: its report plus the solver-side counters.
struct Analyzed {
    name: String,
    report: Report,
    totals: SolveTotals,
    elapsed: Duration,
}

fn run(name: String, space: &DesignSpace, engine: DomainEngine) -> Analyzed {
    let start = Instant::now();
    let analysis = analyze_detailed(space, engine);
    Analyzed {
        name,
        report: analysis.report,
        totals: analysis.stats,
        elapsed: start.elapsed(),
    }
}

fn main() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");
    let stats = std::env::args().any(|a| a == "--stats");
    let synthetic = std::env::args().any(|a| a == "--synthetic");
    let engine = DomainEngine::from_env();

    let mut analyzed: Vec<Analyzed> = load_all_layers(&Technology::g10_035())?
        .into_iter()
        .map(|layer| run(layer.title.to_owned(), &layer.space, engine))
        .collect();
    let stress;
    if synthetic {
        stress = build_stress_layer(STRESS_SEED)?;
        analyzed.push(run(
            format!(
                "synthetic solver stress (seed {STRESS_SEED:#x}, {} combinations)",
                stress.combinations()
            ),
            &stress.space,
            engine,
        ));
    }

    if json {
        let arr = Json::Array(
            analyzed
                .iter()
                .map(|a| {
                    let mut fields = vec![
                        ("space".to_owned(), Json::Str(a.name.clone())),
                        ("report".to_owned(), a.report.to_json()),
                    ];
                    if stats {
                        fields.push(("stats".to_owned(), stats_json(a)));
                    }
                    Json::Object(fields)
                })
                .collect(),
        );
        println!("{}", encode_pretty(&arr));
    } else {
        for a in &analyzed {
            println!("==> {}", a.name);
            println!("{}", a.report);
            if stats {
                println!(
                    "    stats: {} propagations, {} conflicts, {} fixpoint iterations, \
                     {} search nodes, {:.1} ms",
                    a.totals.propagations,
                    a.totals.conflicts,
                    a.totals.fixpoint_iterations,
                    a.totals.search_nodes,
                    a.elapsed.as_secs_f64() * 1e3,
                );
            }
            println!();
        }
    }

    let failed = analyzed.iter().any(|a| a.report.has_errors());
    if failed {
        eprintln!("diagnose: at least one space has errors");
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn stats_json(a: &Analyzed) -> Json {
    Json::Object(vec![
        (
            "propagations".to_owned(),
            Json::Int(a.totals.propagations as i64),
        ),
        ("conflicts".to_owned(), Json::Int(a.totals.conflicts as i64)),
        (
            "fixpoint_iterations".to_owned(),
            Json::Int(a.totals.fixpoint_iterations as i64),
        ),
        (
            "search_nodes".to_owned(),
            Json::Int(a.totals.search_nodes as i64),
        ),
        (
            "wall_ms".to_owned(),
            Json::Float(a.elapsed.as_secs_f64() * 1e3),
        ),
    ])
}
