//! Layer diffing: what changed between two revisions of a design space.
//!
//! Design space layers evolve — IP providers add cores, design
//! environments refine issues and constraints. Combined with
//! [`crate::script::SessionScript`] replay, a structural diff tells a
//! designer exactly why an archived exploration no longer applies.

use std::collections::BTreeSet;


use crate::hierarchy::DesignSpace;

/// One structural difference between two layers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LayerChange {
    /// A CDO exists only in the new layer.
    CdoAdded {
        /// Dotted path in the new layer.
        path: String,
    },
    /// A CDO exists only in the old layer.
    CdoRemoved {
        /// Dotted path in the old layer.
        path: String,
    },
    /// A property was added to a shared CDO.
    PropertyAdded {
        /// The CDO's dotted path.
        path: String,
        /// The property's name.
        property: String,
    },
    /// A property was removed from a shared CDO.
    PropertyRemoved {
        /// The CDO's dotted path.
        path: String,
        /// The property's name.
        property: String,
    },
    /// A shared property changed (kind, domain, default or unit).
    PropertyChanged {
        /// The CDO's dotted path.
        path: String,
        /// The property's name.
        property: String,
    },
    /// A constraint was added to a shared CDO.
    ConstraintAdded {
        /// The CDO's dotted path.
        path: String,
        /// The constraint's name.
        constraint: String,
    },
    /// A constraint was removed from a shared CDO.
    ConstraintRemoved {
        /// The CDO's dotted path.
        path: String,
        /// The constraint's name.
        constraint: String,
    },
}

impl std::fmt::Display for LayerChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerChange::CdoAdded { path } => write!(f, "+ CDO {path}"),
            LayerChange::CdoRemoved { path } => write!(f, "- CDO {path}"),
            LayerChange::PropertyAdded { path, property } => {
                write!(f, "+ property {path}::{property}")
            }
            LayerChange::PropertyRemoved { path, property } => {
                write!(f, "- property {path}::{property}")
            }
            LayerChange::PropertyChanged { path, property } => {
                write!(f, "~ property {path}::{property}")
            }
            LayerChange::ConstraintAdded { path, constraint } => {
                write!(f, "+ constraint {path}::{constraint}")
            }
            LayerChange::ConstraintRemoved { path, constraint } => {
                write!(f, "- constraint {path}::{constraint}")
            }
        }
    }
}

/// Computes the structural differences from `old` to `new`, sorted.
pub fn diff(old: &DesignSpace, new: &DesignSpace) -> Vec<LayerChange> {
    let old_paths: BTreeSet<String> = old.iter().map(|(id, _)| old.path_string(id)).collect();
    let new_paths: BTreeSet<String> = new.iter().map(|(id, _)| new.path_string(id)).collect();

    let mut changes = Vec::new();
    for path in new_paths.difference(&old_paths) {
        changes.push(LayerChange::CdoAdded { path: path.clone() });
    }
    for path in old_paths.difference(&new_paths) {
        changes.push(LayerChange::CdoRemoved { path: path.clone() });
    }

    for path in old_paths.intersection(&new_paths) {
        // Paths containing option-dots (e.g. "…Hardware.0.35um") cannot be
        // re-resolved textually; skip gracefully.
        let (Some(old_id), Some(new_id)) = (old.find_by_path(path), new.find_by_path(path)) else {
            continue;
        };
        let old_node = old.node(old_id);
        let new_node = new.node(new_id);

        let old_props: BTreeSet<&str> =
            old_node.own_properties().iter().map(|p| p.name()).collect();
        let new_props: BTreeSet<&str> =
            new_node.own_properties().iter().map(|p| p.name()).collect();
        for &name in new_props.difference(&old_props) {
            changes.push(LayerChange::PropertyAdded {
                path: path.clone(),
                property: name.to_owned(),
            });
        }
        for &name in old_props.difference(&new_props) {
            changes.push(LayerChange::PropertyRemoved {
                path: path.clone(),
                property: name.to_owned(),
            });
        }
        for &name in old_props.intersection(&new_props) {
            let op = old_node.own_properties().iter().find(|p| p.name() == name);
            let np = new_node.own_properties().iter().find(|p| p.name() == name);
            if op != np {
                changes.push(LayerChange::PropertyChanged {
                    path: path.clone(),
                    property: name.to_owned(),
                });
            }
        }

        let old_ccs: BTreeSet<&str> = old_node
            .own_constraints()
            .iter()
            .map(|c| c.name())
            .collect();
        let new_ccs: BTreeSet<&str> = new_node
            .own_constraints()
            .iter()
            .map(|c| c.name())
            .collect();
        for &name in new_ccs.difference(&old_ccs) {
            changes.push(LayerChange::ConstraintAdded {
                path: path.clone(),
                constraint: name.to_owned(),
            });
        }
        for &name in old_ccs.difference(&new_ccs) {
            changes.push(LayerChange::ConstraintRemoved {
                path: path.clone(),
                constraint: name.to_owned(),
            });
        }
    }

    changes.sort();
    changes
}

foundation::impl_json_enum!(LayerChange {
    CdoAdded { path },
    CdoRemoved { path },
    PropertyAdded { path, property },
    PropertyRemoved { path, property },
    PropertyChanged { path, property },
    ConstraintAdded { path, constraint },
    ConstraintRemoved { path, constraint },
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConsistencyConstraint, Relation};
    use crate::expr::Pred;
    use crate::property::Property;
    use crate::value::{Domain, Value};

    fn base() -> DesignSpace {
        let mut s = DesignSpace::new("v1");
        let root = s.add_root("Block", "");
        s.add_property(root, Property::issue("Width", Domain::options([8, 16]), ""))
            .unwrap();
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CC1",
                "",
                ["Width".to_owned()],
                vec![],
                Relation::InconsistentOptions(Pred::is("Width", 8)),
            ),
        ).unwrap();
        s
    }

    #[test]
    fn identical_layers_diff_empty() {
        assert!(diff(&base(), &base()).is_empty());
    }

    #[test]
    fn detects_added_and_removed_cdos() {
        let old = base();
        let mut new = base();
        let root = new.find_by_path("Block").unwrap();
        new.add_child(root, "Sub", "");
        let changes = diff(&old, &new);
        assert_eq!(
            changes,
            vec![LayerChange::CdoAdded {
                path: "Block.Sub".to_owned()
            }]
        );
        // And the reverse direction.
        let reverse = diff(&new, &old);
        assert_eq!(
            reverse,
            vec![LayerChange::CdoRemoved {
                path: "Block.Sub".to_owned()
            }]
        );
    }

    #[test]
    fn detects_property_and_constraint_changes() {
        let old = base();
        let mut new = DesignSpace::new("v2");
        let root = new.add_root("Block", "");
        // Width: domain widened → changed.
        new.add_property(
            root,
            Property::issue("Width", Domain::options([8, 16, 32]), ""),
        )
        .unwrap();
        // New property.
        new.add_property(root, Property::issue("Style", Domain::options(["A"]), ""))
            .unwrap();
        // CC1 dropped, CC2 added.
        new.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CC2",
                "",
                ["Width".to_owned()],
                vec![],
                Relation::InconsistentOptions(Pred::is("Width", Value::Int(32))),
            ),
        ).unwrap();
        let changes = diff(&old, &new);
        assert!(changes.contains(&LayerChange::PropertyChanged {
            path: "Block".to_owned(),
            property: "Width".to_owned()
        }));
        assert!(changes.contains(&LayerChange::PropertyAdded {
            path: "Block".to_owned(),
            property: "Style".to_owned()
        }));
        assert!(changes.contains(&LayerChange::ConstraintRemoved {
            path: "Block".to_owned(),
            constraint: "CC1".to_owned()
        }));
        assert!(changes.contains(&LayerChange::ConstraintAdded {
            path: "Block".to_owned(),
            constraint: "CC2".to_owned()
        }));
    }

    #[test]
    fn display_forms_are_compact() {
        let c = LayerChange::PropertyChanged {
            path: "Block".to_owned(),
            property: "Width".to_owned(),
        };
        assert_eq!(c.to_string(), "~ property Block::Width");
    }
}
