//! Seeded chaos suite for the resilience layer (`dse::robust`).
//!
//! Every test runs under several fixed seeds (plus an optional extra one
//! from `DSE_CHAOS_SEED`) and proves the layer's invariants under
//! injected panics, transient failures, fuel exhaustion and garbage
//! output:
//!
//! * the estimator registry is never poisoned — after any amount of
//!   chaos, healthy calls still answer;
//! * a failed decision leaves the session bit-identical to its
//!   pre-decision state (no partial decisions);
//! * journal recovery replays to the exact original state, and a torn
//!   tail drops only the torn record;
//! * the whole walkthrough completes under fault injection, degrading
//!   figures instead of failing.

use design_space_layer::coproc::spec::KocSpec;
use design_space_layer::coproc::walkthrough;
use design_space_layer::dse::analyze::analyze;
use design_space_layer::dse::diag::DiagCode;
use design_space_layer::dse::prelude::*;
use design_space_layer::dse::robust::fault::silence_injected_panics;
use design_space_layer::dse_library::crypto;
use design_space_layer::dse_library::estimators::full_registry;
use design_space_layer::foundation::par;
use design_space_layer::foundation::rng::{Rng, SeedableRng, StdRng};
use design_space_layer::techlib::Technology;

/// Thread caps the determinism tests sweep. Every parallelized path
/// (analyzer fan-out, explorer compliance checks, walkthrough range
/// reads) must produce bit-identical output at each of them.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

/// The fixed seeds every chaos test runs under, extended by
/// `DSE_CHAOS_SEED` when the environment provides one.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7, 42];
    if let Ok(s) = std::env::var("DSE_CHAOS_SEED") {
        if let Ok(extra) = s.trim().parse::<u64>() {
            if !seeds.contains(&extra) {
                seeds.push(extra);
            }
        }
    }
    seeds
}

/// A session at the point where CC3's estimation context is ready.
fn cc3_ready_session(layer: &crypto::CryptoLayer) -> ExplorationSession<'_> {
    let mut ses = ExplorationSession::new(&layer.space, layer.omm);
    ses.set_requirement("EOL", Value::from(768)).unwrap();
    ses.set_requirement("MaxLatencyUs", Value::from(8.0))
        .unwrap();
    ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    ses.decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
    ses.decide("BehavioralDecomposition", Value::from("use-default"))
        .unwrap();
    ses
}

#[test]
fn registry_survives_repeated_injected_panics() {
    silence_injected_panics();
    let tech = Technology::g10_035();
    let layer = crypto::build_layer().unwrap();
    for seed in chaos_seeds() {
        // Panic-heavy plan: roughly one call in three unwinds.
        let plan = FaultPlan::new(
            seed,
            64,
            FaultRates {
                panic: 0.30,
                transient: 0.10,
                fuel: 0.05,
                nan: 0.05,
                garbage: 0.05,
            },
        );
        let sup = Supervisor::new(plan.wrap_registry(full_registry(tech.clone())));
        let mut ses = cc3_ready_session(&layer);
        for _ in 0..24 {
            // The loop itself not unwinding is the containment proof;
            // every produced figure must carry a coherent provenance.
            for (_, fig) in ses.run_estimators(&sup) {
                match fig.provenance {
                    Provenance::Unavailable => assert_eq!(fig.value, None),
                    _ => assert!(fig.value.is_some(), "{fig:?}"),
                }
            }
        }
        let stats = sup.stats();
        assert!(
            stats.panics_caught > 0,
            "seed {seed}: the plan should have injected panics"
        );
        // The registry is not poisoned: a benign supervisor over the
        // same tool set still answers exactly.
        let clean = Supervisor::new(full_registry(tech.clone()));
        let fig = clean.estimate("BehaviorDelayEstimator", ses.bindings(), None);
        assert_eq!(fig.provenance, Provenance::Estimated);
        assert!(fig.value.unwrap() > 0.0);
    }
}

#[test]
fn chaos_estimation_is_deterministic_per_seed() {
    silence_injected_panics();
    let tech = Technology::g10_035();
    let layer = crypto::build_layer().unwrap();
    for seed in chaos_seeds() {
        let run = || {
            let plan = FaultPlan::new(seed, 32, FaultRates::chaos());
            let sup = Supervisor::new(plan.wrap_registry(full_registry(tech.clone())));
            let mut ses = cc3_ready_session(&layer);
            let mut figures = Vec::new();
            for _ in 0..12 {
                figures.extend(ses.run_estimators(&sup));
            }
            (figures, sup.stats())
        };
        assert_eq!(run(), run(), "seed {seed}: chaos must be replayable");
    }
}

#[test]
fn failed_operations_leave_the_session_bit_identical() {
    let layer = crypto::build_layer().unwrap();
    for seed in chaos_seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ses = ExplorationSession::new(&layer.space, layer.omm);
        ses.set_requirement("EOL", Value::from(768)).unwrap();
        ses.set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        // A pool of operations, some valid and some doomed: unknown
        // properties, options outside the domain, and the software
        // family the latency requirement rejects (CC6).
        let mut failures = 0u32;
        for _ in 0..40 {
            let before = ses.clone();
            let outcome = match rng.gen_range(1..=8) {
                1 => ses.decide("ImplementationStyle", Value::from("Hardware")),
                2 => ses.decide("ImplementationStyle", Value::from("Software")),
                3 => ses.decide("Algorithm", Value::from("Montgomery")),
                4 => ses.decide("Algorithm", Value::from("Sieve")),
                5 => ses.decide("NoSuchIssue", Value::from(1)),
                6 => ses.decide("BehavioralDecomposition", Value::from("use-default")),
                7 => ses.revise("EOL", Value::from("not a number")).map(|_| ()),
                _ => ses.undo().map(|_| ()),
            };
            if outcome.is_err() {
                failures += 1;
                assert_eq!(
                    ses, before,
                    "seed {seed}: a rejected operation must not leave a trace"
                );
            }
        }
        assert!(failures > 0, "seed {seed}: the pool should produce failures");
    }
}

#[test]
fn recovery_replays_to_the_exact_original_state() {
    let layer = crypto::build_layer().unwrap();
    for seed in chaos_seeds() {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut js = JournaledSession::new(&layer.space, layer.omm);
        js.set_requirement("EOL", Value::from(768)).unwrap();
        js.set_requirement("MaxLatencyUs", Value::from(8.0)).unwrap();
        js.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        // A seeded mix of decisions, rejections, undos and annotations;
        // rejected operations must never reach the journal.
        for _ in 0..30 {
            let _ = match rng.gen_range(1..=6) {
                1 => js.decide("ImplementationStyle", Value::from("Hardware")),
                2 => js.decide("ImplementationStyle", Value::from("Software")),
                3 => js.decide("Algorithm", Value::from("Montgomery")),
                4 => js.undo(),
                5 => js.annotate("EOL", "chaos note"),
                _ => js.decide("BehavioralDecomposition", Value::from("use-default")),
            };
        }
        let text = js.journal().to_jsonl();
        let (recovered, report) =
            JournaledSession::recover(&layer.space, layer.omm, &text).unwrap();
        assert!(report.is_clean());
        assert_eq!(
            recovered.session(),
            js.session(),
            "seed {seed}: recover(replay(s)) must equal s"
        );
        assert_eq!(recovered.journal(), js.journal());
    }
}

#[test]
fn torn_journal_tail_drops_only_the_torn_record() {
    let layer = crypto::build_layer().unwrap();
    let mut js = JournaledSession::new(&layer.space, layer.omm);
    js.set_requirement("EOL", Value::from(768)).unwrap();
    js.set_requirement("MaxLatencyUs", Value::from(8.0)).unwrap();
    js.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    js.decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    let intact = js.journal().to_jsonl();

    // Crash mid-append: the final record is half-written.
    let torn = format!("{intact}{{\"Decide\":{{\"name\":\"Algo");
    let (recovered, report) = JournaledSession::recover(&layer.space, layer.omm, &torn).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.diagnostics.diagnostics()[0].code, DiagCode::TornJournalTail);
    assert_eq!(recovered.journal().len(), js.journal().len());
    assert_eq!(recovered.session(), js.session());

    // A corrupt record *before* the tail is not recoverable silently.
    let mut lines: Vec<&str> = intact.lines().collect();
    lines.insert(1, "garbage mid-journal");
    let garbled = lines.join("\n");
    let err = JournaledSession::recover(&layer.space, layer.omm, &garbled).unwrap_err();
    assert!(matches!(err, RecoverError::Corrupt { line: 2, .. }), "{err}");
}

#[test]
fn walkthrough_completes_under_fault_injection() {
    silence_injected_panics();
    let tech = Technology::g10_035();
    let spec = KocSpec::paper();
    let baseline = walkthrough::run(&spec, &tech).unwrap();
    let baseline_core = baseline
        .selected
        .as_ref()
        .expect("paper spec selects")
        .name()
        .to_owned();
    for seed in chaos_seeds() {
        let plan = FaultPlan::new(seed, 48, FaultRates::chaos());
        let registry = plan.wrap_registry(full_registry(tech.clone()));
        let report = walkthrough::run_supervised(&spec, &tech, registry)
            .unwrap_or_else(|e| panic!("seed {seed}: walkthrough must survive chaos: {e}"));
        // Faults degrade figures, never the exploration: the same core
        // is selected and verified as in the fault-free run.
        assert_eq!(
            report.selected.as_ref().map(|c| c.name().to_owned()),
            Some(baseline_core.clone()),
            "seed {seed}"
        );
        assert!(report.functionally_verified, "seed {seed}");
        assert!(!report.estimates.is_empty(), "seed {seed}");
    }
}

#[test]
fn analysis_reports_are_bit_identical_across_thread_counts() {
    let layer = crypto::build_layer().unwrap();
    let rendered: Vec<String> = THREAD_SWEEP
        .iter()
        .map(|&n| par::with_thread_limit(n, || analyze(&layer.space).to_string()))
        .collect();
    for (i, r) in rendered.iter().enumerate().skip(1) {
        assert_eq!(
            r, &rendered[0],
            "analyzer output diverged at {} threads",
            THREAD_SWEEP[i]
        );
    }
}

#[test]
fn walkthrough_is_bit_identical_across_thread_counts() {
    let tech = Technology::g10_035();
    let spec = KocSpec::paper();
    let reports: Vec<String> = THREAD_SWEEP
        .iter()
        .map(|&n| {
            par::with_thread_limit(n, || {
                format!("{:?}", walkthrough::run(&spec, &tech).unwrap())
            })
        })
        .collect();
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            r, &reports[0],
            "walkthrough diverged at {} threads",
            THREAD_SWEEP[i]
        );
    }
}

#[test]
fn session_bindings_are_bit_identical_across_thread_counts() {
    let layer = crypto::build_layer().unwrap();
    let tech = Technology::g10_035();
    let run_at = |n: usize| {
        par::with_thread_limit(n, || {
            let sup = Supervisor::new(full_registry(tech.clone()));
            let mut ses = cc3_ready_session(&layer);
            let figures = ses.run_estimators(&sup);
            (ses, figures)
        })
    };
    let (base_ses, base_figs) = run_at(1);
    for &n in &THREAD_SWEEP[1..] {
        let (ses, figs) = run_at(n);
        assert_eq!(ses, base_ses, "session state diverged at {n} threads");
        assert_eq!(
            format!("{figs:?}"),
            format!("{base_figs:?}"),
            "estimated figures diverged at {n} threads"
        );
    }
}

#[test]
fn chaos_walkthrough_is_thread_count_invariant() {
    silence_injected_panics();
    let tech = Technology::g10_035();
    let spec = KocSpec::paper();
    for seed in chaos_seeds() {
        let run_at = |n: usize| {
            par::with_thread_limit(n, || {
                let plan = FaultPlan::new(seed, 48, FaultRates::chaos());
                let registry = plan.wrap_registry(full_registry(tech.clone()));
                format!(
                    "{:?}",
                    walkthrough::run_supervised(&spec, &tech, registry).unwrap()
                )
            })
        };
        let base = run_at(1);
        for &n in &THREAD_SWEEP[1..] {
            assert_eq!(
                run_at(n),
                base,
                "seed {seed}: chaos walkthrough diverged at {n} threads"
            );
        }
    }
}

#[test]
fn pool_never_leaks_worker_threads() {
    // Mirror of `par::default_threads`: the pool is sized from
    // `DSE_THREADS` (or available parallelism) and the caller is one of
    // the lanes, so at most `cap - 1` workers may ever be alive.
    let cap = std::env::var("DSE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let layer = crypto::build_layer().unwrap();
    // Repeated fan-outs at varying caps must reuse the same workers —
    // the live count settles after the first call and never grows.
    // (`par::scope` additionally runs the no-leak debug assertion after
    // every drained scope in debug builds.)
    let _ = par::with_thread_limit(8, || analyze(&layer.space));
    let settled = par::live_worker_threads();
    assert!(
        settled <= cap.saturating_sub(1),
        "{settled} live workers exceed the configured pool of {cap} lanes"
    );
    for &n in &THREAD_SWEEP {
        let _ = par::with_thread_limit(n, || analyze(&layer.space));
        assert_eq!(
            par::live_worker_threads(),
            settled,
            "worker count changed after a fan-out at {n} threads"
        );
    }
}
