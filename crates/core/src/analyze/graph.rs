//! The constraint dependency (derivation) graph — DSL003 / DSL004.
//!
//! Every consistency constraint orders its dependent set after its
//! independent set, so the union of constraints induces a directed graph
//! over property names. A cycle means no decision order can ever satisfy
//! the ordering rule (the session deadlocks); a property derived by two
//! quantitative relations in the same scope is ambiguous.

use std::collections::{BTreeMap, BTreeSet};

use crate::constraint::ConsistencyConstraint;
use crate::diag::{DiagCode, Diagnostic, Span};
use crate::hierarchy::{CdoId, DesignSpace};

/// The dependency graph induced by a set of consistency constraints:
/// nodes are property names, and each constraint contributes an edge
/// `indep → dep` for every pair of its sets.
#[derive(Debug, Clone, Default)]
pub struct DerivationGraph {
    nodes: BTreeSet<String>,
    /// `indep → {dep}` ordering edges.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// derived target → names of the relations producing it.
    derivers: BTreeMap<String, Vec<String>>,
}

impl DerivationGraph {
    /// Builds the graph from a constraint set.
    pub fn from_constraints<'a>(
        constraints: impl IntoIterator<Item = &'a ConsistencyConstraint>,
    ) -> DerivationGraph {
        let mut g = DerivationGraph::default();
        for c in constraints {
            for p in c.indep().iter().chain(c.dep().iter()) {
                g.nodes.insert(p.clone());
            }
            for i in c.indep() {
                for d in c.dep() {
                    g.edges.entry(i.clone()).or_default().insert(d.clone());
                }
            }
            if let Some(target) = super::derived_target(c) {
                g.nodes.insert(target.to_owned());
                g.derivers
                    .entry(target.to_owned())
                    .or_default()
                    .push(c.name().to_owned());
            }
        }
        g
    }

    /// Property names in the graph.
    pub fn properties(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// Successors of `name` under the ordering edges.
    pub fn dependents_of(&self, name: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(name)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// A topological order of all properties (Kahn's algorithm,
    /// deterministic: ties broken alphabetically).
    ///
    /// # Errors
    ///
    /// Returns the set of properties trapped in cycles when no order
    /// exists.
    pub fn topo_order(&self) -> Result<Vec<String>, Vec<String>> {
        let mut indegree: BTreeMap<&str, usize> =
            self.nodes.iter().map(|n| (n.as_str(), 0)).collect();
        for (_, deps) in self.edges.iter() {
            for d in deps {
                if let Some(e) = indegree.get_mut(d.as_str()) {
                    *e += 1;
                }
            }
        }
        let mut ready: BTreeSet<&str> = indegree
            .iter()
            .filter(|(_, &deg)| deg == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(&n) = ready.iter().next() {
            ready.remove(n);
            order.push(n.to_owned());
            if let Some(deps) = self.edges.get(n) {
                for d in deps {
                    let deg = indegree.get_mut(d.as_str()).expect("edge endpoints are nodes");
                    *deg -= 1;
                    if *deg == 0 {
                        ready.insert(d.as_str());
                    }
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            let placed: BTreeSet<&str> = order.iter().map(String::as_str).collect();
            Err(self
                .nodes
                .iter()
                .filter(|n| !placed.contains(n.as_str()))
                .cloned()
                .collect())
        }
    }

    /// One explicit cycle path (`A → B → A`), if the graph has any.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        let mut cyclic: BTreeSet<String> = match self.topo_order() {
            Ok(_) => return None,
            Err(c) => c.into_iter().collect(),
        };
        // `topo_order`'s leftover set also contains nodes that are merely
        // *downstream* of a cycle (they never reach indegree 0 but sit on
        // no cycle themselves). Trim nodes with no successor inside the
        // set until only true cycle members remain, so the walk below
        // cannot start at — or wander into — a dead end.
        loop {
            let dead: Vec<String> = cyclic
                .iter()
                .filter(|n| {
                    !self
                        .edges
                        .get(*n)
                        .is_some_and(|s| s.iter().any(|d| cyclic.contains(d)))
                })
                .cloned()
                .collect();
            if dead.is_empty() {
                break;
            }
            for d in dead {
                cyclic.remove(&d);
            }
        }
        // Walk successors inside the cyclic set until a node repeats.
        let start = cyclic.iter().next()?.clone();
        let mut path = vec![start.clone()];
        let mut cur = start;
        loop {
            let next = self
                .edges
                .get(&cur)?
                .iter()
                .find(|d| cyclic.contains(*d))?
                .clone();
            if let Some(pos) = path.iter().position(|p| *p == next) {
                let mut cycle = path[pos..].to_vec();
                cycle.push(next);
                return Some(cycle);
            }
            path.push(next.clone());
            cur = next;
        }
    }

    /// Targets produced by more than one quantitative/estimator relation,
    /// with the offending relation names.
    pub fn multiply_derived(&self) -> Vec<(&str, &[String])> {
        self.derivers
            .iter()
            .filter(|(_, names)| names.len() > 1)
            .map(|(t, names)| (t.as_str(), names.as_slice()))
            .collect()
    }
}

/// Runs the graph checks at one CDO, over its *effective* constraint set
/// (own + inherited). A finding is attributed to a node only when one of
/// the node's own constraints participates, so a defect among ancestor
/// constraints is reported once, at the ancestor — which also makes this
/// check independent per node, safe for the per-CDO parallel fan-out.
pub(crate) fn check_node(space: &DesignSpace, id: CdoId, out: &mut Vec<Diagnostic>) {
    let node = space.node(id);
    if node.own_constraints().is_empty() {
        return;
    }
    let own_names: BTreeSet<&str> = node.own_constraints().iter().map(|c| c.name()).collect();
    let effective = space.effective_constraints(id);
    let g = DerivationGraph::from_constraints(effective.iter().map(|(_, c)| *c));

    if let Some(cycle) = g.find_cycle() {
        let cyclic: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
        let participants: Vec<&str> = effective
            .iter()
            .map(|(_, c)| *c)
            .filter(|c| {
                c.indep().iter().any(|p| cyclic.contains(p.as_str()))
                    && c.dep().iter().any(|p| cyclic.contains(p.as_str()))
            })
            .map(|c| c.name())
            .collect();
        if participants.iter().any(|n| own_names.contains(n)) {
            out.push(Diagnostic::new(
                DiagCode::DerivationCycle,
                Span::at(space.path_string(id)),
                format!(
                    "ordering cycle {} (constraints {})",
                    cycle.join(" → "),
                    participants.join(", ")
                ),
            ));
        }
    }

    for (target, derivers) in g.multiply_derived() {
        if derivers.iter().any(|n| own_names.contains(n.as_str())) {
            out.push(Diagnostic::new(
                DiagCode::MultiplyDerived,
                Span::at(space.path_string(id)).property(target),
                format!(
                    "{target:?} is derived by {} relations ({})",
                    derivers.len(),
                    derivers.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Fidelity, Relation};
    use crate::expr::{Expr, Pred};

    fn quant(name: &str, indep: &[&str], target: &str) -> ConsistencyConstraint {
        let formula = indep
            .iter()
            .map(|p| Expr::prop(*p))
            .reduce(Expr::add)
            .unwrap_or(Expr::constant(0));
        ConsistencyConstraint::new(
            name,
            "",
            indep.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
            [target.to_owned()],
            Relation::Quantitative {
                target: target.to_owned(),
                formula,
                fidelity: Fidelity::Exact,
            },
        )
    }

    #[test]
    fn topo_order_respects_chains() {
        let cs = [quant("C1", &["A"], "B"), quant("C2", &["B"], "C")];
        let g = DerivationGraph::from_constraints(cs.iter());
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec!["A", "B", "C"]);
        assert!(g.find_cycle().is_none());
        assert_eq!(g.dependents_of("A").collect::<Vec<_>>(), vec!["B"]);
    }

    #[test]
    fn cycle_is_detected_with_a_path() {
        let cs = [
            quant("C1", &["A"], "B"),
            quant("C2", &["B"], "C"),
            quant("C3", &["C"], "A"),
        ];
        let g = DerivationGraph::from_constraints(cs.iter());
        assert!(g.topo_order().is_err());
        let cycle = g.find_cycle().unwrap();
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let c = ConsistencyConstraint::new(
            "Cself",
            "",
            ["A".to_owned()],
            ["A".to_owned()],
            Relation::InconsistentOptions(Pred::is("A", 1)),
        );
        let g = DerivationGraph::from_constraints([&c]);
        assert_eq!(g.topo_order().unwrap_err(), vec!["A".to_owned()]);
    }

    #[test]
    fn multiply_derived_targets_are_listed() {
        let cs = [quant("C1", &["A"], "T"), quant("C2", &["B"], "T")];
        let g = DerivationGraph::from_constraints(cs.iter());
        let md = g.multiply_derived();
        assert_eq!(md.len(), 1);
        assert_eq!(md[0].0, "T");
        assert_eq!(md[0].1, ["C1".to_owned(), "C2".to_owned()]);
    }
}
