//! A seeded synthetic stress layer for the propagation analyzer.
//!
//! The shipped domain layers (crypto, IDCT, FIR) are small enough that
//! the legacy exhaustive checker handles them comfortably. This module
//! builds a design space whose option joint is far beyond the exhaustive
//! engine's `MAX_COMBINATIONS` cap — over 10⁸ combinations in total,
//! with single constraints spanning millions of combinations — so that:
//!
//! * the exhaustive oracle must give up with explicit `DSL111` notes,
//! * the propagation engine ([`dse::analyze::solve`]) still proves every
//!   verdict exactly (the dominated-combination counts, the dead
//!   `Codec = tiny` option, the `DSL110` conflict chains),
//! * benches and `scripts/verify.sh` have a deterministic large space to
//!   time the initial fixpoint and incremental decide/retract against.
//!
//! Everything is derived from a seed through a small LCG, so two builds
//! with the same seed are structurally identical — diagnostics,
//! constraint names and domains included.

use dse::constraint::{ConsistencyConstraint, Relation};
use dse::error::DseError;
use dse::eval::FigureOfMerit;
use dse::expr::{CmpOp, Expr, Pred};
use dse::hierarchy::{CdoId, DesignSpace, Symbol};
use dse::property::Property;
use dse::value::Domain;

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// The default seed used by the `--synthetic` diagnose flag, the solver
/// gate in `scripts/verify.sh` and the `solve/*` benches.
pub const STRESS_SEED: u64 = 0xD5E;

/// Number of flag-valued design issues (`S0`..`S19`). Their joint alone
/// is 2²⁰ ≈ 10⁶ combinations.
const FLAGS: usize = 20;

/// Number of seeded pairwise noise constraints between flags.
const PAIRWISE: usize = 12;

/// The built stress layer.
#[derive(Debug, Clone)]
pub struct StressLayer {
    /// The design space.
    pub space: DesignSpace,
    /// Its single root CDO, `SolverStress`.
    pub root: CdoId,
}

impl StressLayer {
    /// The exact size of the option joint: the product of every
    /// enumerable issue domain at the root.
    pub fn combinations(&self) -> u128 {
        let mut total: u128 = 1;
        for prop in self.space.node(self.root).own_properties() {
            if let Some(options) = prop.domain().enumerate() {
                total *= options.len() as u128;
            } else if let Domain::IntRange { min, max } = prop.domain() {
                total *= (max - min + 1) as u128;
            }
        }
        total
    }
}

/// A minimal deterministic LCG (Knuth's MMIX multiplier); good enough to
/// scatter the pairwise constraints without pulling in a dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds the stress layer from `seed`.
///
/// Constraint inventory (all anchored at the root):
///
/// * `CCwide` — a dominance predicate over all twenty flags *and*
///   `Mode`: a 4 194 304-combination joint the exhaustive engine refuses
///   (cap 4096) but the propagation engine counts exactly (one dominated
///   combination).
/// * `CCarith` — dominance mixing bounds propagation (`Width + Width ≥
///   14`) with ten flags: an 8192-combination joint, again over-cap.
/// * `CCcodec` — eliminates `Codec = tiny` outright (the arithmetic
///   guard is a tautology), producing the deterministic `DSL006` +
///   `DSL110` pair on a joint the memoized exact engine handles.
/// * `P0`..`P11` — seeded pairwise inconsistencies between flags
///   (`Si = true ∧ Sj = true` with `i < j`), none of which kills an
///   option on its own: noise for the chain minimizer to discard.
///
/// No constraint is contradictory, so the layer analyzes error-free
/// under both engines.
///
/// # Errors
///
/// Propagates layer-construction errors (none occur for any seed unless
/// the core crate regresses).
pub fn build_stress_layer(seed: u64) -> Result<StressLayer, DseError> {
    let mut s = DesignSpace::new("solver-stress");
    let root = s.add_root(
        "SolverStress",
        "synthetic joint far beyond the exhaustive cap",
    );

    let flag = |i: usize| format!("S{i}");
    for i in 0..FLAGS {
        s.add_property(
            root,
            Property::issue(flag(i), Domain::Flag, "synthetic flag issue"),
        )?;
    }
    s.add_property(
        root,
        Property::issue(
            "Mode",
            Domain::options(["m0", "m1", "m2", "m3"]),
            "synthetic mode selector",
        ),
    )?;
    s.add_property(
        root,
        Property::issue("Width", Domain::int_range(1, 8), "synthetic datapath width"),
    )?;
    s.add_property(
        root,
        Property::issue(
            "Codec",
            Domain::options(["fast", "small", "tiny"]),
            "synthetic codec choice",
        ),
    )?;

    // CCwide: every flag raised *and* Mode = m3 is dominated. Joint =
    // 2^20 × 4 combinations; exactly one of them fires.
    let mut wide_terms: Vec<Pred> = (0..FLAGS).map(|i| Pred::is(flag(i), true)).collect();
    wide_terms.push(Pred::is("Mode", "m3"));
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCwide",
            "all-flags-raised m3 configurations are dominated",
            (0..FLAGS).map(flag),
            ["Mode".to_owned()],
            Relation::Dominance(Pred::all(wide_terms)),
        ),
    )?;

    // CCarith: bounds propagation joined with flags — Width + Width ≥ 14
    // (i.e. Width ∈ {7, 8}) with the first ten flags raised. Joint =
    // 8 × 2^10 combinations; two of them fire.
    let mut arith_terms: Vec<Pred> = (0..FLAGS / 2).map(|i| Pred::is(flag(i), true)).collect();
    arith_terms.push(Pred::cmp(
        CmpOp::Ge,
        Expr::prop("Width").add(Expr::prop("Width")),
        Expr::constant(14),
    ));
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCarith",
            "wide datapaths with the low flag bank raised are dominated",
            (0..FLAGS / 2).map(flag),
            ["Width".to_owned()],
            Relation::Dominance(Pred::all(arith_terms)),
        ),
    )?;

    // CCcodec: the arithmetic guard always holds (Width + 8 ≥ 8), so
    // every completion of Codec = tiny is eliminated — a provably dead
    // option with a one-constraint conflict chain.
    s.add_constraint(
        root,
        ConsistencyConstraint::new(
            "CCcodec",
            "the tiny codec is inconsistent at every datapath width",
            ["Width".to_owned()],
            ["Codec".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("Codec", "tiny"),
                Pred::cmp(
                    CmpOp::Ge,
                    Expr::prop("Width").add(Expr::constant(8)),
                    Expr::constant(8),
                ),
            ])),
        ),
    )?;

    // Seeded pairwise noise: Si ∧ Sj inconsistent, i < j so the
    // derivation edges stay acyclic. No single flag option dies — each
    // side survives by lowering the other — so these only exercise the
    // eliminator minimization.
    let mut rng = Lcg(seed);
    let mut taken: Vec<(usize, usize)> = Vec::new();
    while taken.len() < PAIRWISE {
        let a = rng.below(FLAGS);
        let b = rng.below(FLAGS);
        if a == b {
            continue;
        }
        let pair = (a.min(b), a.max(b));
        if taken.contains(&pair) {
            continue;
        }
        taken.push(pair);
    }
    for (k, (i, j)) in taken.iter().enumerate() {
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                format!("P{k}"),
                format!("flags S{i} and S{j} cannot both be raised"),
                [flag(*i)],
                [flag(*j)],
                Relation::InconsistentOptions(Pred::all([
                    Pred::is(flag(*i), true),
                    Pred::is(flag(*j), true),
                ])),
            ),
        )?;
    }

    debug_assert!(s.validate().is_empty());
    Ok(StressLayer { space: s, root })
}

// ---------------------------------------------------------------------
// Seeded core-library generator
// ---------------------------------------------------------------------

/// Knobs for the seeded core-library generator ([`synthetic_cores`])
/// and its matching design space ([`synthetic_core_space`]).
///
/// Everything is derived from `seed`, so two builds with equal specs are
/// structurally identical — core names, bindings and merit values
/// included. The exploration scale benches and the 1M-core smoke gate
/// in `scripts/verify.sh` rely on that determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSpaceSpec {
    /// Number of cores to generate (`c0`..).
    pub cores: usize,
    /// Number of design issues (`P0`..), each an option domain.
    pub properties: usize,
    /// Options per issue (`o0`..): the property arity.
    pub arity: usize,
    /// Number of merit axes (built-ins first, then `Other("m…")`).
    pub merits: usize,
    /// Per-(core, property) chance in ‰ of leaving the property
    /// *unbound* — fodder for the layer's lenient compliance.
    pub unbound_permille: u64,
    /// The generator seed.
    pub seed: u64,
}

impl CoreSpaceSpec {
    /// A spec sized for `cores` cores with the default shape used by
    /// the `explore_scale` benches: 8 issues × 8 options, two merit
    /// axes, 12.5 % unbound bindings.
    pub fn sized(cores: usize) -> Self {
        CoreSpaceSpec {
            cores,
            properties: 8,
            arity: 8,
            merits: 2,
            unbound_permille: 125,
            seed: STRESS_SEED,
        }
    }
}

/// The merit axis for index `k`: the built-in figures first, then
/// interned `m{k}` names.
fn merit_axis(k: usize) -> FigureOfMerit {
    const BUILT_IN: [FigureOfMerit; 7] = [
        FigureOfMerit::AreaUm2,
        FigureOfMerit::DelayNs,
        FigureOfMerit::ClockNs,
        FigureOfMerit::LatencyCycles,
        FigureOfMerit::PowerMw,
        FigureOfMerit::TimeUs,
        FigureOfMerit::EnergyNj,
    ];
    if k < BUILT_IN.len() {
        BUILT_IN[k]
    } else {
        FigureOfMerit::Other(Symbol::intern(&format!("m{k}")))
    }
}

/// A design space matching [`synthetic_cores`]: one root with issues
/// `P0`..`P{properties-1}`, each an option domain `o0`..`o{arity-1}`,
/// and no constraints — every decide succeeds, so sessions can walk the
/// space freely.
pub fn synthetic_core_space(spec: &CoreSpaceSpec) -> (DesignSpace, CdoId) {
    let mut s = DesignSpace::new("synthetic-cores");
    let root = s.add_root("SyntheticCores", "seeded core-generator space");
    for p in 0..spec.properties {
        let options: Vec<String> = (0..spec.arity).map(|o| format!("o{o}")).collect();
        s.add_property(
            root,
            Property::issue(
                format!("P{p}"),
                Domain::options(options),
                "synthetic design issue",
            ),
        )
        .expect("synthetic space property");
    }
    (s, root)
}

/// Generates a seeded reuse library of `spec.cores` cores over the
/// [`synthetic_core_space`] vocabulary: each core binds every issue to a
/// pseudo-random option (or leaves it unbound with probability
/// `unbound_permille`), and records every merit axis with a value in
/// `[0, 10000)`.
pub fn synthetic_cores(spec: &CoreSpaceSpec) -> ReuseLibrary {
    let mut rng = Lcg(spec.seed ^ 0xC0DE_5EED);
    let axes: Vec<FigureOfMerit> = (0..spec.merits).map(merit_axis).collect();
    let mut lib = ReuseLibrary::new(format!("synthetic-{}", spec.cores));
    for i in 0..spec.cores {
        let mut core = CoreRecord::new(format!("c{i}"), "synthetic", "");
        for p in 0..spec.properties {
            if rng.next() % 1000 < spec.unbound_permille {
                continue;
            }
            let o = rng.below(spec.arity);
            core = core.bind(format!("P{p}"), format!("o{o}"));
        }
        for &axis in &axes {
            let v = (rng.next() % 1_000_000) as f64 / 100.0;
            core = core.merit(axis, v);
        }
        lib.push(core);
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::analyze::{analyze_detailed, DomainEngine};
    use dse::diag::DiagCode;

    #[test]
    fn core_generator_is_deterministic_and_shaped() {
        let spec = CoreSpaceSpec {
            cores: 200,
            properties: 4,
            arity: 3,
            merits: 9,
            unbound_permille: 250,
            seed: 42,
        };
        let a = synthetic_cores(&spec);
        let b = synthetic_cores(&spec);
        assert_eq!(a.cores(), b.cores());
        assert_eq!(a.len(), 200);
        let c = synthetic_cores(&CoreSpaceSpec { seed: 43, ..spec.clone() });
        assert_ne!(a.cores(), c.cores());

        let (space, root) = synthetic_core_space(&spec);
        assert_eq!(space.node(root).own_properties().len(), 4);
        let mut saw_unbound = false;
        for core in a.cores() {
            assert!(core.bindings().len() <= 4);
            saw_unbound |= core.bindings().len() < 4;
            assert_eq!(core.merits().len(), 9);
            for (p, v) in core.bindings() {
                let prop = space
                    .node(root)
                    .own_properties()
                    .iter()
                    .find(|q| q.name() == p)
                    .expect("binding names a space issue");
                assert!(prop
                    .domain()
                    .enumerate()
                    .unwrap()
                    .iter()
                    .any(|o| o.matches(v)));
            }
        }
        assert!(saw_unbound, "unbound_permille must leave some gaps");
    }

    #[test]
    fn joint_exceeds_a_million_combinations() {
        let layer = build_stress_layer(STRESS_SEED).unwrap();
        assert!(layer.combinations() >= 1_000_000);
        // 2^20 flags × 4 modes × 8 widths × 3 codecs.
        assert_eq!(layer.combinations(), (1u128 << 20) * 4 * 8 * 3);
    }

    #[test]
    fn same_seed_same_layer() {
        let a = build_stress_layer(7).unwrap();
        let b = build_stress_layer(7).unwrap();
        assert_eq!(
            dse::doc::render_markdown(&a.space),
            dse::doc::render_markdown(&b.space)
        );
        let c = build_stress_layer(8).unwrap();
        assert_ne!(
            dse::doc::render_markdown(&a.space),
            dse::doc::render_markdown(&c.space)
        );
    }

    #[test]
    fn propagation_proves_where_the_oracle_gives_up() {
        let layer = build_stress_layer(STRESS_SEED).unwrap();

        let prop = analyze_detailed(&layer.space, DomainEngine::Propagation).report;
        // No errors anywhere: the layer is consistent by construction.
        assert!(
            !prop.has_errors(),
            "synthetic layer must analyze error-free"
        );
        // CCwide's single dominated combination, counted exactly.
        assert!(prop.diagnostics().iter().any(|d| {
            d.code == DiagCode::DominanceHint && d.message.contains("1 of 4194304")
        }));
        // The dead codec option and its one-constraint chain.
        assert!(prop
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::DeadOption && d.message.contains("tiny")));
        assert!(prop.diagnostics().iter().any(|d| {
            d.code == DiagCode::PropagationConflict && d.message.contains("CCcodec")
        }));
        // The propagation engine never needs a too-large escape hatch
        // on this layer.
        assert!(!prop
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::DomainTooLarge));

        let oracle = analyze_detailed(&layer.space, DomainEngine::Exhaustive).report;
        // The exhaustive engine must refuse the wide joints explicitly —
        // the legacy silent skip is gone.
        assert!(oracle.diagnostics().iter().any(|d| {
            d.code == DiagCode::DomainTooLarge && d.message.contains("4194304 joint combinations")
        }));
        // And it cannot produce the wide dominance count.
        assert!(!oracle
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::DominanceHint && d.message.contains("4194304")));
    }
}
