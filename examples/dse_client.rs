//! A scriptable line-in/line-out client for the exploration daemon.
//!
//! ```text
//! cargo run --example dse_client -- HOST:PORT [--pretty] \
//!     [--timeout MS] [--retries N]
//! ```
//!
//! Reads one JSON request per line from stdin, writes the daemon's
//! response for each to stdout, in order. With `--pretty`, responses
//! are re-rendered as indented JSON (for humans); without it they stay
//! single-line (for transcripts and `diff`).
//!
//! Overload-aware retries: `--retries N` retries failed connects and
//! `DSL309 overloaded` responses up to `N` times with jittered
//! exponential backoff, honoring the server's `retry_after_ms` hint
//! when one is present. `--timeout MS` bounds each socket read/write.
//! The exit status is nonzero when the daemon cannot be reached (after
//! all retries), so scripts can tell "server down" from "empty
//! conversation".
//!
//! Blank lines and lines starting with `#` are skipped, so a scripted
//! conversation can be a commented file:
//!
//! ```text
//! # open, decide, evaluate, report, close
//! {"op":"open","session":"demo","snapshot":"crypto"}
//! {"op":"decide","session":"demo","name":"EOL","value":768}
//! {"op":"eval","session":"demo"}
//! {"op":"report","session":"demo"}
//! {"op":"close","session":"demo"}
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use design_space_layer::foundation::json::{encode_pretty, Json};
use design_space_layer::foundation::net;
use design_space_layer::foundation::rng::{Rng, SeedableRng, StdRng};

/// Base backoff for a failed connect (doubles per attempt, plus jitter).
const CONNECT_BACKOFF_MS: u64 = 100;

/// Fallback backoff for a `DSL309` without a `retry_after_ms` hint.
const OVERLOAD_BACKOFF_MS: u64 = 200;

struct Options {
    addr: String,
    pretty: bool,
    timeout: Option<Duration>,
    retries: u32,
}

fn usage() -> &'static str {
    "usage: dse_client HOST:PORT [--pretty] [--timeout MS] [--retries N]"
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut addr: Option<String> = None;
    let mut pretty = false;
    let mut timeout = None;
    let mut retries = 0u32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--pretty" => pretty = true,
            "--timeout" => {
                let ms: u64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
                timeout = Some(Duration::from_millis(ms.max(1)));
            }
            "--retries" => {
                retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if addr.is_none() => addr = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Some(Options {
        addr: addr.ok_or_else(|| usage().to_owned())?,
        pretty,
        timeout,
        retries,
    }))
}

/// Connects with up to `retries` extra attempts under jittered
/// exponential backoff.
fn connect(opts: &Options, rng: &mut StdRng) -> std::io::Result<TcpStream> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(&opts.addr) {
            Ok(stream) => {
                stream.set_read_timeout(opts.timeout)?;
                stream.set_write_timeout(opts.timeout)?;
                return Ok(stream);
            }
            Err(e) if attempt < opts.retries => {
                let base = CONNECT_BACKOFF_MS << attempt.min(6);
                let jitter = rng.gen_range(0u64..base.max(1));
                eprintln!(
                    "connect {} failed ({e}); retry {}/{} in {}ms",
                    opts.addr,
                    attempt + 1,
                    opts.retries,
                    base + jitter
                );
                std::thread::sleep(Duration::from_millis(base + jitter));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Extracts the backoff hint from a `DSL309` response, `None` for every
/// other response.
fn overload_hint(response: &str) -> Option<u64> {
    let Ok(Json::Object(fields)) = Json::parse(response) else {
        return None;
    };
    let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match field("code") {
        Some(Json::Str(code)) if code == "DSL309" => match field("retry_after_ms") {
            Some(Json::Int(ms)) => Some((*ms).max(0) as u64),
            _ => Some(OVERLOAD_BACKOFF_MS),
        },
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Some(opts) = parse_args().map_err(Box::<dyn std::error::Error>::from)? else {
        return Ok(());
    };
    // Seeded, not entropy-based: the jitter schedule is reproducible,
    // which keeps scripted conversations deterministic.
    let mut rng = StdRng::seed_from_u64(0xC11E57);

    let stream = connect(&opts, &mut rng)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let stdout = std::io::stdout();

    // One warm scratch buffer absorbs every response line, so a long
    // scripted conversation does not allocate per response.
    let mut resp_buf: Vec<u8> = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut attempt = 0u32;
        loop {
            net::write_line(&mut writer, line)?;
            let response = net::read_line_into(&mut reader, net::MAX_WIRE_BYTES, &mut resp_buf)?
                .ok_or("server closed the connection")?;
            match overload_hint(response) {
                Some(hint_ms) if attempt < opts.retries => {
                    let jitter = rng.gen_range(0u64..hint_ms.max(1));
                    eprintln!(
                        "overloaded; retry {}/{} in {}ms",
                        attempt + 1,
                        opts.retries,
                        hint_ms + jitter
                    );
                    std::thread::sleep(Duration::from_millis(hint_ms + jitter));
                    attempt += 1;
                }
                _ => break,
            }
        }
        let response =
            std::str::from_utf8(&resp_buf).expect("read_line_into validated UTF-8");
        let mut out = stdout.lock();
        if opts.pretty {
            match Json::parse(response) {
                Ok(json) => writeln!(out, "{}", encode_pretty(&json))?,
                Err(_) => writeln!(out, "{response}")?,
            }
        } else {
            writeln!(out, "{response}")?;
        }
    }
    Ok(())
}
