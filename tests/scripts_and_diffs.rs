//! Session scripts and layer diffs across the shipped layers: the
//! design-process-management story end to end.

use design_space_layer::dse::diff::{diff, LayerChange};
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::{crypto, idct};

#[test]
fn section5_session_roundtrips_through_a_script() {
    let layer = crypto::build_layer().unwrap();
    let mut ses = ExplorationSession::new(&layer.space, layer.omm);
    ses.set_requirement("EOL", Value::from(768)).unwrap();
    ses.set_requirement("MaxLatencyUs", Value::from(8.0))
        .unwrap();
    ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    ses.decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
    ses.decide("AdderStructure", Value::from("carry-save"))
        .unwrap();

    let script = SessionScript::capture(&ses);
    let json = foundation::json::encode_pretty(&script);
    let restored: SessionScript = foundation::json::decode(&json).unwrap();

    let replayed = restored.replay(&layer.space, layer.omm).unwrap();
    assert_eq!(replayed.bindings(), ses.bindings());
    assert_eq!(
        layer.space.path_string(replayed.focus()),
        "Operator.Modular.Multiplier.Hardware.Montgomery"
    );
}

#[test]
fn replay_against_a_stricter_layer_fails_at_the_right_decision() {
    // Capture an exploration that chose a carry-look-ahead adder at a
    // small operand size, then replay it with a revised requirement value
    // that makes CC4 fire.
    let layer = crypto::build_layer().unwrap();
    let mut ses = ExplorationSession::new(&layer.space, layer.omm);
    ses.set_requirement("EOL", Value::from(16)).unwrap();
    ses.set_requirement("MaxLatencyUs", Value::from(100000.0))
        .unwrap();
    ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    ses.decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
    // CC4 allows CLA below 32 bits.
    ses.decide("AdderStructure", Value::from("carry-look-ahead"))
        .unwrap();

    let mut script = SessionScript::capture(&ses);
    // Simulate the archived script being reused for a 768-bit project:
    // rewrite the EOL entry (scripts are plain data).
    let json = foundation::json::encode(&script).replace("{\"Int\":[16]}", "{\"Int\":[768]}");
    script = foundation::json::decode(&json).unwrap();

    let err = script.replay(&layer.space, layer.omm).unwrap_err();
    assert!(
        matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC4"),
        "{err}"
    );
}

#[test]
fn diff_between_the_two_crypto_views_is_structural() {
    let main = crypto::build_layer().unwrap();
    let view = crypto::build_layer_technology_first().unwrap();
    let changes = diff(&main.space, &view.space);
    assert!(!changes.is_empty());
    // The view drops the taxonomy branches the main layer carries...
    assert!(changes.contains(&LayerChange::CdoRemoved {
        path: "Operator.LogicArithmetic".to_owned()
    }));
    // ...and pivots the hardware class onto the technology issue.
    assert!(changes.iter().any(|c| matches!(
        c,
        LayerChange::PropertyChanged { path, property }
            if path == "Operator.Modular.Multiplier.Hardware"
                && property == "FabricationTechnology"
    )));
}

#[test]
fn diff_between_idct_organisations_flags_the_pivot() {
    let gen = idct::build_layer_generalization().unwrap();
    let abs = idct::build_layer_abstraction().unwrap();
    let changes = diff(&gen.space, &abs.space);
    // The generalized issue changed: the generalization layer's children
    // (0.70um/0.35um) vanish, the abstraction layer's (Chen/Lee/Loeffler)
    // appear.
    assert!(changes.contains(&LayerChange::CdoRemoved {
        path: "IDCT.Hardware.0.70um".to_owned()
    }));
    assert!(changes.contains(&LayerChange::CdoAdded {
        path: "IDCT.Hardware.Chen".to_owned()
    }));
}

#[test]
fn identical_layers_have_empty_diffs() {
    let a = crypto::build_layer().unwrap();
    let b = crypto::build_layer().unwrap();
    assert!(diff(&a.space, &b.space).is_empty());
}
