//! Exploring the coprocessor level: the exponentiation-method design
//! issue (binary vs 2ᵏ-ary windows) over the Exponentiator CDO, with the
//! CC7 quantitative constraint and the actual engines cross-checking each
//! other.
//!
//! ```text
//! cargo run --example exponentiation_methods
//! ```

use design_space_layer::bignum::{random_prime, uniform_below, UBig};
use design_space_layer::coproc::engine::{HardwareEngine, ReferenceEngine};
use design_space_layer::coproc::{ExpMethod, ModExp};
use design_space_layer::dse::prelude::*;
use design_space_layer::dse_library::crypto;
use design_space_layer::hwmodel::paper_designs;
use foundation::rng::{SeedableRng, StdRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The layer view: the Exponentiator CDO carries the WindowBits
    //    issue and CC7 derives the expected multiplication count.
    let layer = crypto::build_layer()?;
    let mut session = ExplorationSession::new(&layer.space, layer.exponentiator);
    session.set_requirement("ExponentBits", Value::from(768))?;
    println!("CC7-derived multiplication counts for a 768-bit exponent:");
    for k in [1i64, 2, 4, 6] {
        if session.decided("WindowBits").is_some() {
            session.revise("WindowBits", Value::from(k))?;
        } else {
            session.decide("WindowBits", Value::from(k))?;
        }
        for (prop, value) in session.derived() {
            println!("  WindowBits = {k}: {prop} = {value}");
        }
    }

    // 2. Execute each method for real — on the reference engine and on a
    //    simulated hardware datapath — and compare with CC7.
    let mut rng = StdRng::seed_from_u64(99);
    let m = random_prime(48, &mut rng);
    let base = uniform_below(&m, &mut rng);
    let mut exp_val = uniform_below(&UBig::power_of_two(768), &mut rng);
    exp_val.set_bit(767, true);
    let expect = base.mod_pow(&exp_val, &m);

    println!("\nmethod           CC7    reference    hardware(#2)   verified");
    for method in [ExpMethod::Binary, ExpMethod::Window(4)] {
        let cc7 = method.expected_multiplications(768);
        let mut reference = ModExp::new(ReferenceEngine::new());
        let ref_report = reference.mod_pow_with_method(&base, &exp_val, &m, method)?;

        let arch = paper_designs()[1].architecture(16)?;
        let mut hw = ModExp::new(HardwareEngine::new(arch, 2.78));
        let hw_report = hw.mod_pow_with_method(&base, &exp_val, &m, method)?;

        let ok = ref_report.result == expect && hw_report.result == expect;
        println!(
            "{:<15} {:>5}   {:>7} muls   {:>7} muls   {}",
            method.to_string(),
            cc7,
            ref_report.multiplications,
            hw_report.multiplications,
            ok
        );
    }

    // 3. The trade-off summary: multiplications vs table storage.
    println!("\nstorage/speed trade-off (768-bit exponent):");
    for method in [
        ExpMethod::Binary,
        ExpMethod::Window(2),
        ExpMethod::Window(4),
        ExpMethod::Window(6),
    ] {
        println!(
            "  {:<15} {:>5} expected muls, {:>3} table registers",
            method.to_string(),
            method.expected_multiplications(768),
            method.table_registers()
        );
    }
    Ok(())
}
