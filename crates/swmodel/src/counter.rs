//! Operation-count ledgers for the instrumented software variants.

use std::fmt;
use std::ops::{Add, AddAssign};


/// Word-level operation counts accumulated by one routine execution.
///
/// The categories follow the Koç–Acar–Kaliski accounting: single-precision
/// multiplications dominate, followed by double-word additions and memory
/// traffic (reads/writes of operand and temporary arrays).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// 32×32 → 64-bit word multiplications.
    pub mul: u64,
    /// Word additions (including carry-propagation adds).
    pub add: u64,
    /// Memory reads of operand/temporary words.
    pub load: u64,
    /// Memory writes of operand/temporary words.
    pub store: u64,
    /// Loop-control iterations (branch + index update).
    pub loop_iter: u64,
}

impl OpCounts {
    /// An empty ledger.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Total number of counted events.
    pub fn total(&self) -> u64 {
        self.mul + self.add + self.load + self.store + self.loop_iter
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            loop_iter: self.loop_iter + rhs.loop_iter,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mul={} add={} load={} store={} loop={}",
            self.mul, self.add, self.load, self.store, self.loop_iter
        )
    }
}

foundation::impl_json_struct!(OpCounts { mul, add, load, store, loop_iter });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates_fieldwise() {
        let a = OpCounts {
            mul: 1,
            add: 2,
            load: 3,
            store: 4,
            loop_iter: 5,
        };
        let b = OpCounts {
            mul: 10,
            add: 20,
            load: 30,
            store: 40,
            loop_iter: 50,
        };
        let c = a + b;
        assert_eq!(c.mul, 11);
        assert_eq!(c.total(), 165);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(OpCounts::new().total(), 0);
    }

    #[test]
    fn display_lists_all_fields() {
        let a = OpCounts {
            mul: 1,
            add: 2,
            load: 3,
            store: 4,
            loop_iter: 5,
        };
        assert_eq!(a.to_string(), "mul=1 add=2 load=3 store=4 loop=5");
    }
}
