//! Exploration sessions: the conceptual-design loop over a layer.
//!
//! A session tracks the designer's requirement entries and design
//! decisions against a (read-only) [`DesignSpace`]. Each decision:
//!
//! 1. is validated against the property's domain,
//! 2. is ordered by the consistency constraints (a dependent property may
//!    not be decided before its independents — the paper's partial
//!    ordering of design issues),
//! 3. is checked against every effective constraint (inconsistent or
//!    dominated combinations are rejected with the violated CC), and
//! 4. if it decides a *generalized* issue, descends the hierarchy into the
//!    spawned child CDO — the paper's design space pruning step.
//!
//! Revising an already-decided independent marks all decisions that depend
//! on it as *stale* ("when the independent set is modified, the dependent
//! set needs to be re-assessed").
//!
//! Every mutating operation is **transactional**: it either commits
//! completely or rolls the session back to its pre-operation
//! [`SessionSnapshot`] — a failed decision can never leave partial
//! bindings, a moved focus or a half-written log behind.

use std::collections::BTreeMap;

use crate::analyze::solve::Solver;
use crate::constraint::{ConsistencyConstraint, ConstraintOutcome, Fidelity, Relation};
use crate::error::DseError;
use crate::expr::Bindings;
use crate::hierarchy::{CdoId, DesignSpace, Symbol};
use crate::property::{Property, PropertyKind};
use crate::robust::{Figure, Supervisor};
use crate::value::Value;

/// One entry in the session's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The decided property.
    pub property: String,
    /// The chosen value.
    pub value: Value,
    /// The property's kind at decision time.
    pub kind: PropertyKind,
    /// The focus CDO *before* this decision (for undo).
    pub prev_focus: CdoId,
    /// Whether a later revision of an independent invalidated this
    /// decision (it must be re-assessed).
    pub stale: bool,
    /// The designer's rationale, if recorded (see
    /// [`ExplorationSession::annotate`]).
    pub note: Option<String>,
}

/// A complete copy of a session's mutable state — focus, bindings,
/// decision log, and estimate cache. Mutating operations take one before
/// touching anything and [`ExplorationSession::restore`] it on any error,
/// which is what makes them all-or-nothing.
/// The `Default` state (empty, focused on the id-0 CDO) is a detached
/// placeholder for `std::mem::take`-style handoff; reattach a real
/// state before using it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionSnapshot {
    focus: CdoId,
    bindings: Bindings,
    log: Vec<Decision>,
    estimates: BTreeMap<Symbol, Figure>,
}

/// An in-progress conceptual-design session.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationSession<'a> {
    space: &'a DesignSpace,
    focus: CdoId,
    bindings: Bindings,
    log: Vec<Decision>,
    estimates: BTreeMap<Symbol, Figure>,
}

impl<'a> ExplorationSession<'a> {
    /// Starts a session focused on `root`.
    pub fn new(space: &'a DesignSpace, root: CdoId) -> Self {
        ExplorationSession {
            space,
            focus: root,
            bindings: Bindings::new(),
            log: Vec::new(),
            estimates: BTreeMap::new(),
        }
    }

    /// Reattaches a detached [`SessionSnapshot`] to a space — the
    /// `Arc`-friendly constructor a multi-session server uses: the
    /// per-session state lives in owned snapshots while every live
    /// session borrows one shared, immutable space, so opening or
    /// serving a session never clones the space itself.
    pub fn resume(space: &'a DesignSpace, state: SessionSnapshot) -> Self {
        ExplorationSession {
            space,
            focus: state.focus,
            bindings: state.bindings,
            log: state.log,
            estimates: state.estimates,
        }
    }

    /// Captures the session's full mutable state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            focus: self.focus,
            bindings: self.bindings.clone(),
            log: self.log.clone(),
            estimates: self.estimates.clone(),
        }
    }

    /// Detaches the session's full mutable state without cloning it —
    /// the inverse of [`resume`](Self::resume). A server stashing
    /// per-session state between requests moves it out with this and
    /// back in with `resume`, so a request round-trip copies nothing.
    pub fn into_snapshot(self) -> SessionSnapshot {
        SessionSnapshot {
            focus: self.focus,
            bindings: self.bindings,
            log: self.log,
            estimates: self.estimates,
        }
    }

    /// Restores a previously captured state, discarding everything that
    /// happened since.
    pub fn restore(&mut self, snapshot: SessionSnapshot) {
        self.focus = snapshot.focus;
        self.bindings = snapshot.bindings;
        self.log = snapshot.log;
        self.estimates = snapshot.estimates;
    }

    /// The layer being explored.
    pub fn space(&self) -> &DesignSpace {
        self.space
    }

    /// The CDO the session is currently focused on. Deciding generalized
    /// issues descends; the focus path is the pruned design-space region.
    pub fn focus(&self) -> CdoId {
        self.focus
    }

    /// The decided/entered values.
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }

    /// The decision log, oldest first.
    pub fn log(&self) -> &[Decision] {
        &self.log
    }

    /// The decided value of `property`, if any.
    pub fn decided(&self, property: &str) -> Option<&Value> {
        self.bindings.get(property)
    }

    /// The decided value, falling back to the property's default.
    pub fn effective_value(&self, property: &str) -> Option<Value> {
        if let Some(v) = self.bindings.get(property) {
            return Some(v.clone());
        }
        self.space
            .find_property(self.focus, property)
            .and_then(|(_, p)| p.default().cloned())
    }

    /// Enters a requirement value (the paper's Req1–Req5 step).
    ///
    /// # Errors
    ///
    /// Domain violations, ordering violations, constraint violations, or
    /// re-deciding an already-entered requirement.
    pub fn set_requirement(&mut self, name: &str, value: Value) -> Result<(), DseError> {
        self.apply(name, value, &[PropertyKind::Requirement], "requirement")
    }

    /// Decides a design issue (regular or generalized) or selects a
    /// description. Deciding a generalized issue moves the focus into the
    /// spawned child CDO.
    ///
    /// # Errors
    ///
    /// Domain violations, ordering violations, constraint violations,
    /// re-deciding, or a generalized option whose child was never
    /// specialized by the layer author.
    pub fn decide(&mut self, issue: &str, option: Value) -> Result<(), DseError> {
        self.apply(
            issue,
            option,
            &[
                PropertyKind::DesignIssue,
                PropertyKind::GeneralizedIssue,
                PropertyKind::Description,
            ],
            "design issue",
        )
    }

    fn apply(
        &mut self,
        name: &str,
        value: Value,
        kinds: &[PropertyKind],
        expected: &'static str,
    ) -> Result<(), DseError> {
        // All-or-nothing without a pre-state snapshot: `apply_inner`
        // mutates at most the new binding and the focus (the log entry
        // lands last, after every check), and rolls both back itself in
        // its error arm.
        self.apply_inner(name, value, kinds, expected)
    }

    /// Checks every effective constraint at the current focus against the
    /// current bindings; violations and evaluation failures are errors.
    fn check_constraints(&self) -> Result<(), DseError> {
        self.check_constraints_where(|_| true)
    }

    /// Incremental variant: checks only the constraints that mention
    /// `changed`. Sound because committed session states never hold a
    /// violated or failed constraint — re-binding one property can only
    /// change the outcome of constraints that reference it, so the
    /// untouched rest are still known-good. Same error selection as the
    /// full scan: `effective_constraints` order, first violation wins.
    fn check_constraints_touching(&self, changed: &str) -> Result<(), DseError> {
        self.check_constraints_where(|cc| cc.mentions(changed))
    }

    fn check_constraints_where(
        &self,
        relevant: impl Fn(&ConsistencyConstraint) -> bool,
    ) -> Result<(), DseError> {
        for (_, cc) in self.space.effective_constraints(self.focus) {
            if !relevant(cc) {
                continue;
            }
            match cc.evaluate(&self.bindings) {
                ConstraintOutcome::Violated { detail } => {
                    return Err(DseError::ConstraintViolation {
                        constraint: cc.name().to_owned(),
                        detail,
                    });
                }
                ConstraintOutcome::Failed { detail } => {
                    return Err(DseError::EvaluationFailed {
                        constraint: cc.name().to_owned(),
                        detail,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn apply_inner(
        &mut self,
        name: &str,
        value: Value,
        kinds: &[PropertyKind],
        expected: &'static str,
    ) -> Result<(), DseError> {
        if self.bindings.contains_key(name) {
            return Err(DseError::AlreadyDecided(name.to_owned()));
        }
        let (_, prop) = self
            .space
            .find_property(self.focus, name)
            .ok_or_else(|| DseError::UnknownProperty(name.to_owned()))?;
        if !kinds.contains(&prop.kind()) {
            return Err(DseError::WrongPropertyKind {
                property: name.to_owned(),
                expected,
            });
        }
        if !prop.domain().contains(&value) {
            return Err(DseError::ValueOutsideDomain {
                property: name.to_owned(),
                value,
            });
        }
        // Ordering: a dependent property may not precede its independents.
        for (_, cc) in self.space.effective_constraints(self.focus) {
            if let Some(missing) = cc.blocking_dependency(name, &self.bindings) {
                return Err(DseError::DependencyNotReady {
                    constraint: cc.name().to_owned(),
                    missing: missing.to_owned(),
                });
            }
        }

        let kind = prop.kind();
        let prev_focus = self.focus;

        // Tentatively bind and check consistency. The only state this
        // can dirty is the binding itself and (for generalized issues)
        // the focus, so the error arm rolls exactly those back — no
        // full pre-state snapshot. Only constraints mentioning the new
        // binding can have changed outcome, so the check is O(touched),
        // not O(constraints).
        self.bindings.insert(name.to_owned(), value.clone());
        if let Err(e) = self.check_and_descend(name, &value, kind) {
            self.bindings.remove(name);
            self.focus = prev_focus;
            return Err(e);
        }

        self.log.push(Decision {
            property: name.to_owned(),
            value,
            kind,
            prev_focus,
            stale: false,
            note: None,
        });
        Ok(())
    }

    /// The check-and-mutate tail of [`apply_inner`], run after the
    /// tentative binding: incremental constraint check, then (for
    /// generalized issues) the hierarchy descent and the full re-check
    /// the new region requires. The caller rolls back the binding and
    /// the focus if any step errs.
    fn check_and_descend(
        &mut self,
        name: &str,
        value: &Value,
        kind: PropertyKind,
    ) -> Result<(), DseError> {
        self.check_constraints_touching(name)?;
        if kind == PropertyKind::GeneralizedIssue {
            let child = self
                .space
                .node(self.focus)
                .children()
                .iter()
                .copied()
                .find(|&c| {
                    self.space
                        .node(c)
                        .spawned_by()
                        .is_some_and(|(i, v)| i == name && v.matches(value))
                });
            match child {
                Some(c) => self.focus = c,
                None => {
                    return Err(DseError::OptionNotSpecialized {
                        issue: name.to_owned(),
                        option: value.clone(),
                    });
                }
            }
            // Entering the child brings its own constraints into effect;
            // a region already inconsistent with the requirements must be
            // rejected at the descent, not discovered later.
            self.check_constraints()?;
        }
        Ok(())
    }

    /// Records the designer's rationale for an already-made decision —
    /// part of the layer's self-documentation story: an archived session
    /// explains *why*, not just *what*.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::UnknownProperty`] if `property` has not been
    /// decided in this session.
    pub fn annotate(&mut self, property: &str, note: impl Into<String>) -> Result<(), DseError> {
        match self.log.iter_mut().find(|d| d.property == property) {
            Some(d) => {
                d.note = Some(note.into());
                Ok(())
            }
            None => Err(DseError::UnknownProperty(property.to_owned())),
        }
    }

    /// The recorded rationale for a decision, if any.
    pub fn note(&self, property: &str) -> Option<&str> {
        self.log
            .iter()
            .find(|d| d.property == property)
            .and_then(|d| d.note.as_deref())
    }

    /// Undoes the most recent decision, restoring focus if it was a
    /// generalized one.
    ///
    /// # Errors
    ///
    /// [`DseError::NothingToUndo`] on an empty log.
    pub fn undo(&mut self) -> Result<Decision, DseError> {
        let d = self.log.pop().ok_or(DseError::NothingToUndo)?;
        self.bindings.remove(&d.property);
        self.focus = d.prev_focus;
        Ok(d)
    }

    /// Revises an already-decided property to a new value, marking every
    /// decision that depends on it (per the constraints' dependency
    /// ordering) as stale for re-assessment. Returns the names marked.
    ///
    /// Generalized issues cannot be revised in place (the focus would have
    /// to move across the hierarchy); undo back to them instead.
    ///
    /// # Errors
    ///
    /// Unknown/undecided properties, domain violations, constraint
    /// violations, or attempts to revise a generalized issue.
    pub fn revise(&mut self, name: &str, value: Value) -> Result<Vec<String>, DseError> {
        let snapshot = self.snapshot();
        let result = self.revise_inner(name, value);
        if result.is_err() {
            self.restore(snapshot);
        }
        result
    }

    fn revise_inner(&mut self, name: &str, value: Value) -> Result<Vec<String>, DseError> {
        let idx = self
            .log
            .iter()
            .position(|d| d.property == name)
            .ok_or_else(|| DseError::UnknownProperty(name.to_owned()))?;
        if self.log[idx].kind == PropertyKind::GeneralizedIssue {
            return Err(DseError::WrongPropertyKind {
                property: name.to_owned(),
                expected: "revisable (non-generalized) property",
            });
        }
        let (_, prop) = self
            .space
            .find_property(self.focus, name)
            .ok_or_else(|| DseError::UnknownProperty(name.to_owned()))?;
        if !prop.domain().contains(&value) {
            return Err(DseError::ValueOutsideDomain {
                property: name.to_owned(),
                value,
            });
        }
        self.bindings.insert(name.to_owned(), value.clone());
        self.check_constraints_touching(name)?;
        self.log[idx].value = value;

        // Mark dependents stale (transitively).
        let mut stale = Vec::new();
        let mut frontier = vec![name.to_owned()];
        while let Some(cur) = frontier.pop() {
            for (_, cc) in self.space.effective_constraints(self.focus) {
                if cc.indep().contains(&cur) {
                    for dep in cc.dep() {
                        if let Some(d) =
                            self.log.iter_mut().find(|d| &d.property == dep && !d.stale)
                        {
                            d.stale = true;
                            stale.push(dep.clone());
                            frontier.push(dep.clone());
                        }
                    }
                }
            }
        }
        Ok(stale)
    }

    /// A propagation [`Solver`] primed with the session's focus and
    /// bindings: an advisory lookahead over the remaining freedom.
    /// `viable`/`is_viable` on the result answer "which options can
    /// still survive the constraints?" *before* committing a decision —
    /// the wire-visible decide/retract semantics are unchanged (a
    /// rejected decision still reports the violated constraint on
    /// commit, exactly as before).
    pub fn lookahead(&self) -> Solver {
        Solver::with_bindings(self.space, self.focus, &self.bindings)
    }

    /// Decisions currently flagged stale (needing re-assessment).
    pub fn stale(&self) -> Vec<&Decision> {
        self.log.iter().filter(|d| d.stale).collect()
    }

    /// Confirms a stale decision after re-assessment.
    pub fn reaffirm(&mut self, property: &str) {
        if let Some(d) = self.log.iter_mut().find(|d| d.property == property) {
            d.stale = false;
        }
    }

    /// The design issues (and description slots) visible at the focus that
    /// have not been decided yet — what the designer should look at next.
    pub fn open_issues(&self) -> Vec<&'a Property> {
        self.space
            .effective_properties(self.focus)
            .into_iter()
            .map(|(_, p)| p)
            .filter(|p| {
                matches!(
                    p.kind(),
                    PropertyKind::DesignIssue
                        | PropertyKind::GeneralizedIssue
                        | PropertyKind::Description
                ) && !self.bindings.contains_key(p.name())
            })
            .collect()
    }

    /// Requirements visible at the focus that have not been entered yet.
    pub fn open_requirements(&self) -> Vec<&'a Property> {
        self.space
            .effective_properties(self.focus)
            .into_iter()
            .map(|(_, p)| p)
            .filter(|p| {
                p.kind() == PropertyKind::Requirement && !self.bindings.contains_key(p.name())
            })
            .collect()
    }

    /// Values derived by ready quantitative constraints (e.g. CC2's
    /// latency estimate once EOL and radix are known).
    pub fn derived(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        for (_, cc) in self.space.effective_constraints(self.focus) {
            if let ConstraintOutcome::Derived { property, value } = cc.evaluate(&self.bindings) {
                out.push((property, value));
            }
        }
        out
    }

    /// Estimator contexts that are ready to run (CC3-style), as
    /// `(estimator, output)` pairs.
    pub fn ready_estimators(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (_, cc) in self.space.effective_constraints(self.focus) {
            if let ConstraintOutcome::EstimatorReady { estimator, output } =
                cc.evaluate(&self.bindings)
            {
                out.push((estimator, output));
            }
        }
        out
    }

    /// Full constraint diagnostics at the current focus.
    pub fn diagnostics(&self) -> Vec<(String, ConstraintOutcome)> {
        self.space
            .effective_constraints(self.focus)
            .into_iter()
            .map(|(_, cc)| (cc.name().to_owned(), cc.evaluate(&self.bindings)))
            .collect()
    }

    /// Whether any effective constraint has a [`Relation::Quantitative`]
    /// relation targeting `property` (i.e. the layer derives it rather
    /// than asking the designer).
    pub fn is_derived_property(&self, property: &str) -> bool {
        self.space
            .effective_constraints(self.focus)
            .iter()
            .any(|(_, cc)| {
                matches!(cc.relation(), Relation::Quantitative { target, .. } if target == property)
            })
    }

    /// The supervised estimate cache: provenance-tagged figures produced
    /// by [`run_estimators`](Self::run_estimators) and
    /// [`absorb_derived`](Self::absorb_derived), keyed by output property.
    /// The cache is a convenience view, not a binding — revisions and
    /// undos leave it alone; re-run the estimators to refresh it.
    pub fn estimates(&self) -> &BTreeMap<Symbol, Figure> {
        &self.estimates
    }

    /// The cached figure for one derived property, if any.
    pub fn estimate_of(&self, property: &str) -> Option<&Figure> {
        self.estimates.get(property)
    }

    /// Runs every ready estimator context (CC3-style) under `supervisor`,
    /// caching and returning the provenance-tagged figures.
    ///
    /// The output property's declared domain (see [`Property::derived`])
    /// anchors the supervisor's last-resort fallback range, and doubles
    /// as a garbage filter: a tool value outside the declared bounds is
    /// degraded to the range midpoint rather than trusted.
    pub fn run_estimators(&mut self, supervisor: &Supervisor) -> Vec<(String, Figure)> {
        self.run_estimators_budgeted(supervisor, None)
            .expect("unbudgeted estimator run cannot exhaust a deadline")
    }

    /// [`run_estimators`](Self::run_estimators) under a caller-owned
    /// [`Fuel`] budget shared by every ready estimator context — the
    /// request-deadline path.
    ///
    /// # Errors
    ///
    /// [`crate::estimate::EstimateError::FuelExhausted`] when the budget
    /// ran dry mid-run. Figures produced before the cutoff stay cached
    /// (they are real results); the caller decides whether to surface
    /// or roll back.
    pub fn run_estimators_within(
        &mut self,
        supervisor: &Supervisor,
        budget: &crate::robust::Fuel,
    ) -> Result<Vec<(String, Figure)>, crate::estimate::EstimateError> {
        self.run_estimators_budgeted(supervisor, Some(budget))
    }

    fn run_estimators_budgeted(
        &mut self,
        supervisor: &Supervisor,
        budget: Option<&crate::robust::Fuel>,
    ) -> Result<Vec<(String, Figure)>, crate::estimate::EstimateError> {
        let mut out = Vec::new();
        for (estimator, output) in self.ready_estimators() {
            let range = self
                .space
                .find_property(self.focus, &output)
                .and_then(|(_, p)| p.domain().numeric_bounds());
            let mut fig = match budget {
                Some(b) => supervisor.estimate_within(&estimator, &self.bindings, range, b)?,
                None => supervisor.estimate(&estimator, &self.bindings, range),
            };
            if let (Some(v), Some((lo, hi))) = (fig.value, range) {
                if v < lo || v > hi {
                    fig = Figure::fallback(
                        (lo + hi) / 2.0,
                        format!("declared-range (tool value {v} outside [{lo}, {hi}])"),
                    );
                }
            }
            self.estimates.insert(Symbol::from(&output), fig.clone());
            out.push((output, fig));
        }
        Ok(out)
    }

    /// Folds the ready quantitative derivations (see
    /// [`derived`](Self::derived)) into the estimate cache as figures —
    /// exact when the relation's fidelity is exact, estimated otherwise.
    pub fn absorb_derived(&mut self) -> Vec<(String, Figure)> {
        let mut out = Vec::new();
        for (_, cc) in self.space.effective_constraints(self.focus) {
            if let ConstraintOutcome::Derived { property, value } = cc.evaluate(&self.bindings) {
                if let Some(v) = value.as_f64() {
                    let fig = match cc.relation() {
                        Relation::Quantitative {
                            fidelity: Fidelity::Exact,
                            ..
                        } => Figure::exact(v, cc.name()),
                        _ => Figure::estimated(v, cc.name()),
                    };
                    self.estimates.insert(Symbol::from(&property), fig.clone());
                    out.push((property, fig));
                }
            }
        }
        out
    }
}

foundation::impl_json_struct!(Decision { property, value, kind, prev_focus, stale, note });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConsistencyConstraint, Fidelity, Relation};
    use crate::expr::{CmpOp, Expr, Pred};
    use crate::value::Domain;

    /// A miniature of the paper's modular-multiplier layer.
    fn crypto_like_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("omm");
        let omm = s.add_root("ModularMultiplier", "");
        s.add_property(
            omm,
            Property::requirement("EOL", Domain::int_range(8, 4096), None, ""),
        )
        .unwrap();
        s.add_property(
            omm,
            Property::requirement(
                "ModuloIsOdd",
                Domain::options(["Guaranteed", "notGuaranteed"]),
                None,
                "",
            ),
        )
        .unwrap();
        s.add_property(
            omm,
            Property::generalized_issue(
                "ImplementationStyle",
                Domain::options(["Hardware", "Software"]),
                "",
            ),
        )
        .unwrap();
        let kids = s.specialize(omm, "ImplementationStyle").unwrap();
        let hw = kids[0];
        s.add_property(
            hw,
            Property::generalized_issue(
                "Algorithm",
                Domain::options(["Montgomery", "Brickell"]),
                "",
            ),
        )
        .unwrap();
        s.specialize(hw, "Algorithm").unwrap();
        s.add_property(
            hw,
            Property::issue_with_default(
                "Radix",
                Domain::PowersOfTwo { max_exp: 4 },
                Value::Int(2),
                "",
            ),
        )
        .unwrap();
        s.add_property(
            hw,
            Property::issue(
                "Adder",
                Domain::options(["carry-save", "carry-look-ahead"]),
                "",
            ),
        )
        .unwrap();
        // CC1: Montgomery needs odd modulus; ordering ModuloIsOdd -> Algorithm.
        s.add_constraint(
            hw,
            ConsistencyConstraint::new(
                "CC1",
                "Montgomery requires odd modulo",
                vec!["ModuloIsOdd".to_owned()],
                vec!["Algorithm".to_owned()],
                Relation::InconsistentOptions(Pred::all([
                    Pred::is("ModuloIsOdd", "notGuaranteed"),
                    Pred::is("Algorithm", "Montgomery"),
                ])),
            ),
        ).unwrap();
        // CC2: latency formula.
        s.add_constraint(
            hw,
            ConsistencyConstraint::new(
                "CC2",
                "latency from radix",
                vec!["EOL".to_owned(), "Radix".to_owned()],
                vec!["LatencyCycles".to_owned()],
                Relation::Quantitative {
                    target: "LatencyCycles".to_owned(),
                    formula: Expr::constant(2)
                        .mul(Expr::prop("EOL"))
                        .div(Expr::prop("Radix"))
                        .add(Expr::constant(1)),
                    fidelity: Fidelity::Heuristic,
                },
            ),
        ).unwrap();
        // CC4: big Montgomery multipliers must use carry-save adders.
        s.add_constraint(
            hw,
            ConsistencyConstraint::new(
                "CC4",
                "inferior adder choices eliminated",
                vec!["EOL".to_owned(), "Algorithm".to_owned()],
                vec!["Adder".to_owned()],
                Relation::Dominance(Pred::all([
                    Pred::is("Algorithm", "Montgomery"),
                    Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::constant(32)),
                    Pred::is_not("Adder", "carry-save"),
                ])),
            ),
        ).unwrap();
        (s, omm)
    }

    #[test]
    fn walkthrough_descends_the_hierarchy() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        assert_eq!(s.path_string(ses.focus()), "ModularMultiplier.Hardware");
        ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
        assert_eq!(
            s.path_string(ses.focus()),
            "ModularMultiplier.Hardware.Montgomery"
        );
        assert_eq!(ses.log().len(), 4);
    }

    #[test]
    fn cc1_blocks_montgomery_for_even_modulus() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("notGuaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        let err = ses
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC1")
        );
        // Brickell remains legal.
        ses.decide("Algorithm", Value::from("Brickell")).unwrap();
    }

    #[test]
    fn ordering_blocks_algorithm_before_modulo() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        let err = ses
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::DependencyNotReady { ref missing, .. } if missing == "ModuloIsOdd")
        );
    }

    #[test]
    fn cc4_rejects_dominated_adder() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
        let err = ses
            .decide("Adder", Value::from("carry-look-ahead"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC4")
        );
        ses.decide("Adder", Value::from("carry-save")).unwrap();
    }

    #[test]
    fn derived_latency_appears_once_ready() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        assert!(ses.derived().is_empty(), "radix not decided yet");
        ses.decide("Radix", Value::Int(4)).unwrap();
        let derived = ses.derived();
        assert_eq!(derived, vec![("LatencyCycles".to_owned(), Value::Int(385))]);
        assert!(ses.is_derived_property("LatencyCycles"));
        assert!(!ses.is_derived_property("Radix"));
    }

    #[test]
    fn undo_restores_focus_and_bindings() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(64)).unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        assert_ne!(ses.focus(), root);
        let undone = ses.undo().unwrap();
        assert_eq!(undone.property, "ImplementationStyle");
        assert_eq!(ses.focus(), root);
        assert!(ses.decided("ImplementationStyle").is_none());
        ses.undo().unwrap();
        assert!(matches!(ses.undo().unwrap_err(), DseError::NothingToUndo));
    }

    #[test]
    fn revision_marks_dependents_stale() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
        ses.decide("Adder", Value::from("carry-save")).unwrap();
        // Revising the modulus guarantee invalidates the algorithm choice.
        let stale = ses
            .revise("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        assert!(stale.contains(&"Algorithm".to_owned()));
        // ... and transitively the adder choice, which CC4 ties to the
        // algorithm.
        assert!(stale.contains(&"Adder".to_owned()));
        assert!(!ses.stale().is_empty());
        ses.reaffirm("Algorithm");
        ses.reaffirm("Adder");
        assert!(ses.stale().is_empty());
    }

    #[test]
    fn revision_to_violating_value_is_rejected_and_rolled_back() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
        let err = ses
            .revise("ModuloIsOdd", Value::from("notGuaranteed"))
            .unwrap_err();
        assert!(matches!(err, DseError::ConstraintViolation { .. }));
        assert_eq!(
            ses.decided("ModuloIsOdd"),
            Some(&Value::from("Guaranteed")),
            "rolled back"
        );
    }

    #[test]
    fn open_issues_shrink_as_decisions_land() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        assert_eq!(ses.open_issues().len(), 1); // ImplementationStyle
        assert_eq!(ses.open_requirements().len(), 2);
        ses.set_requirement("EOL", Value::Int(64)).unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        let names: Vec<&str> = ses.open_issues().iter().map(|p| p.name()).collect();
        assert!(names.contains(&"Algorithm"));
        assert!(names.contains(&"Radix"));
        assert!(!names.contains(&"ImplementationStyle"));
    }

    #[test]
    fn misc_rejections() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        // Wrong kind.
        assert!(matches!(
            ses.decide("EOL", Value::Int(5)).unwrap_err(),
            DseError::WrongPropertyKind { .. }
        ));
        assert!(matches!(
            ses.set_requirement("ImplementationStyle", Value::from("Hardware"))
                .unwrap_err(),
            DseError::WrongPropertyKind { .. }
        ));
        // Domain violation.
        assert!(matches!(
            ses.set_requirement("EOL", Value::Int(5)).unwrap_err(),
            DseError::ValueOutsideDomain { .. }
        ));
        // Unknown.
        assert!(matches!(
            ses.decide("Nope", Value::Int(1)).unwrap_err(),
            DseError::UnknownProperty(_)
        ));
        // Double decision.
        ses.set_requirement("EOL", Value::Int(64)).unwrap();
        assert!(matches!(
            ses.set_requirement("EOL", Value::Int(64)).unwrap_err(),
            DseError::AlreadyDecided(_)
        ));
    }

    #[test]
    fn descending_into_an_inconsistent_region_is_rejected() {
        // A constraint declared on the *child* CDO fires the moment the
        // generalized decision would enter that region.
        let mut s = DesignSpace::new("descend");
        let root = s.add_root("Block", "");
        s.add_property(
            root,
            Property::requirement("N", Domain::int_range(1, 100), None, ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["fast", "small"]), ""),
        )
        .unwrap();
        let kids = s.specialize(root, "Style").unwrap();
        // The "small" family cannot serve N >= 50.
        s.add_constraint(
            kids[1],
            ConsistencyConstraint::new(
                "CCchild",
                "small blocks cap out at N = 49",
                ["N".to_owned()],
                vec![],
                Relation::InconsistentOptions(Pred::cmp(
                    CmpOp::Ge,
                    Expr::prop("N"),
                    Expr::constant(50),
                )),
            ),
        ).unwrap();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("N", Value::Int(80)).unwrap();
        let err = ses.decide("Style", Value::from("small")).unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CCchild")
        );
        // Focus and bindings rolled back; the other family still works.
        assert_eq!(ses.focus(), root);
        assert!(ses.decided("Style").is_none());
        ses.decide("Style", Value::from("fast")).unwrap();
    }

    #[test]
    fn annotations_record_rationale() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.annotate("EOL", "from the Koç coprocessor spec")
            .unwrap();
        assert_eq!(ses.note("EOL"), Some("from the Koç coprocessor spec"));
        assert_eq!(ses.note("ModuloIsOdd"), None);
        assert!(matches!(
            ses.annotate("Nope", "x").unwrap_err(),
            DseError::UnknownProperty(_)
        ));
    }

    #[test]
    fn failed_decide_restores_the_exact_pre_decision_state() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("notGuaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        let before = ses.clone();
        ses.decide("Algorithm", Value::from("Montgomery"))
            .unwrap_err();
        assert_eq!(ses, before, "rejected decision must be a no-op");
        ses.decide("Nope", Value::Int(1)).unwrap_err();
        assert_eq!(ses, before);
    }

    #[test]
    fn evaluation_failure_rolls_back_and_names_the_constraint() {
        // A quantitative relation that divides by a decidable property:
        // deciding it to zero must fail the decision, not poison the
        // session with a half-applied binding.
        let mut s = DesignSpace::new("div");
        let root = s.add_root("Block", "");
        s.add_property(
            root,
            Property::requirement("N", Domain::int_range(1, 100), None, ""),
        )
        .unwrap();
        s.add_property(root, Property::issue("K", Domain::int_range(0, 8), ""))
            .unwrap();
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCdiv",
                "throughput from K",
                vec!["N".to_owned(), "K".to_owned()],
                vec!["Throughput".to_owned()],
                Relation::Quantitative {
                    target: "Throughput".to_owned(),
                    formula: Expr::prop("N").div(Expr::prop("K")),
                    fidelity: Fidelity::Heuristic,
                },
            ),
        )
        .unwrap();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("N", Value::Int(10)).unwrap();
        let before = ses.clone();
        let err = ses.decide("K", Value::Int(0)).unwrap_err();
        assert!(
            matches!(err, DseError::EvaluationFailed { ref constraint, .. } if constraint == "CCdiv"),
            "{err}"
        );
        assert_eq!(ses, before, "failed evaluation must roll back");
        ses.decide("K", Value::Int(2)).unwrap();
    }

    #[test]
    fn absorb_derived_caches_provenance_tagged_figures() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(768)).unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        assert!(ses.absorb_derived().is_empty());
        ses.decide("Radix", Value::Int(4)).unwrap();
        let figs = ses.absorb_derived();
        assert_eq!(figs.len(), 1);
        let fig = ses.estimate_of("LatencyCycles").unwrap();
        assert_eq!(fig.value, Some(385.0));
        // CC2 is declared heuristic, so the figure is estimated, not exact.
        assert_eq!(fig.provenance, crate::robust::Provenance::Estimated);
        assert_eq!(fig.source, "CC2");
        assert_eq!(ses.estimates().len(), 1);
    }

    #[test]
    fn default_values_are_visible_but_not_binding() {
        let (s, root) = crypto_like_space();
        let mut ses = ExplorationSession::new(&s, root);
        ses.set_requirement("EOL", Value::Int(64)).unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        assert_eq!(ses.effective_value("Radix"), Some(Value::Int(2)));
        assert!(ses.decided("Radix").is_none());
    }
}
