//! Minimal fixed-width text-table rendering for the experiment reports.

/// Renders rows as a fixed-width text table with a header rule.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        out.pop();
        out.pop();
        out.push('\n');
    };
    line(
        &header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// A number formatted with engineering-style precision.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = table(
            &["a", "bbb"],
            &[
                vec!["1".to_owned(), "2".to_owned()],
                vec!["100".to_owned(), "x".to_owned()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table(&["a"], &[vec!["1".to_owned(), "2".to_owned()]]);
    }

    #[test]
    fn number_formatting_tiers() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(3.17159), "3.17");
        assert_eq!(num(42.42), "42.4");
        assert_eq!(num(12345.6), "12346");
    }
}
