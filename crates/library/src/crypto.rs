//! The cryptography design space layer — the paper's Section-5 case
//! study, reconstructed in full.
//!
//! * Fig. 5 — the operator taxonomy (`Operator` → `Logic/Arithmetic`,
//!   `Modular` → `Exponentiator`, `Multiplier`).
//! * Fig. 7 — the generalization hierarchy under the
//!   `Operator-Modular-Multiplier` (OMM) CDO: `Implementation Style`
//!   partitions into Hardware/Software; under Hardware, `Algorithm`
//!   partitions into Montgomery/Brickell.
//! * Fig. 8 — the OMM requirements (Req1–Req5) and DI1.
//! * Fig. 10 — the Montgomery behavioural description with its
//!   behavioural decomposition into `Adder`/`Multiplier` operator CDOs.
//! * Fig. 11 — the OMM-H / OMM-HM design issues (DI2–DI7).
//! * Fig. 13 — the consistency constraints CC1–CC4 (plus the mux-enforcing
//!   companion the paper mentions, and a heuristic software-latency CC).
//!
//! [`build_library`] populates the reuse library with the Table-1 hardware
//! families (priced by `hwmodel`) and the Koç software routines (priced by
//! `swmodel`).

use dse::behavior::{montgomery_fig10_text, BehavioralDescription, OperandCoding, OperatorUse};
use dse::constraint::{ConsistencyConstraint, Fidelity, Relation};
use dse::error::DseError;
use dse::eval::FigureOfMerit;
use dse::expr::{CmpOp, Expr, Pred};
use dse::hierarchy::{CdoId, DesignSpace};
use dse::property::{Property, Unit};
use dse::value::{Domain, Value};
use hwmodel::designs::{paper_designs, TABLE1_SLICE_WIDTHS};
use swmodel::{MontgomeryVariant, ProcessorModel, SoftwareRoutine};
use techlib::Technology;

use crate::core_record::CoreRecord;
use crate::reuse::ReuseLibrary;

/// The built cryptography layer with handles to its key CDOs.
#[derive(Debug, Clone)]
pub struct CryptoLayer {
    /// The whole layer.
    pub space: DesignSpace,
    /// `Operator` (root).
    pub operator: CdoId,
    /// `Operator.LogicArithmetic.Arithmetic.Adder`.
    pub adder: CdoId,
    /// `Operator.LogicArithmetic.Arithmetic.Multiplier`.
    pub multiplier: CdoId,
    /// `Operator.Modular.Exponentiator`.
    pub exponentiator: CdoId,
    /// `Operator.Modular.Multiplier` — the OMM CDO.
    pub omm: CdoId,
    /// `…Multiplier.Hardware` — OMM-H.
    pub omm_hw: CdoId,
    /// `…Multiplier.Software` — OMM-S.
    pub omm_sw: CdoId,
    /// `…Hardware.Montgomery` — OMM-HM (leaf).
    pub omm_hm: CdoId,
    /// `…Hardware.Brickell` — OMM-HB (leaf).
    pub omm_hb: CdoId,
}

/// Builds the cryptography design space layer.
///
/// # Errors
///
/// Propagates layer-construction errors (none occur for this fixed
/// definition unless the crate itself regresses).
pub fn build_layer() -> Result<CryptoLayer, DseError> {
    let mut s = DesignSpace::new("cryptography");

    // ---- Fig. 5: operator taxonomy -------------------------------------
    let operator = s.add_root("Operator", "all operators in the cryptography domain");
    let logic_arith = s.add_child(operator, "LogicArithmetic", "logic/arithmetic operators");
    let _logic = s.add_child(logic_arith, "Logic", "bitwise operators");
    let arithmetic = s.add_child(logic_arith, "Arithmetic", "arithmetic operators");
    let adder = s.add_child(arithmetic, "Adder", "all adder implementations");
    let multiplier = s.add_child(arithmetic, "Multiplier", "all multiplier implementations");
    let modular = s.add_child(operator, "Modular", "modular-arithmetic operators");
    let exponentiator = s.add_child(
        modular,
        "Exponentiator",
        "modular exponentiation (M^E mod N)",
    );
    let omm = s.add_child(modular, "Multiplier", "modular multiplication (A×B mod M)");

    // ---- Adder CDO: the decomposition target of Fig. 10 ----------------
    s.add_property(
        adder,
        Property::requirement(
            "WordSize",
            Domain::int_range(1, 4096),
            Some(Unit::bits()),
            "operand width",
        ),
    )?;
    s.add_property(
        adder,
        Property::issue(
            "LogicStyle",
            Domain::options(["ripple-carry", "carry-look-ahead", "carry-save"]),
            "adder logic structure",
        ),
    )?;
    s.add_property(
        adder,
        Property::issue(
            "AdderLayoutStyle",
            Domain::options(["standard-cell", "gate-array", "full-custom"]),
            "physical style for the adder macro",
        ),
    )?;
    s.add_property(
        multiplier,
        Property::issue(
            "MultiplierStyle",
            Domain::options(["array", "booth", "mux-table"]),
            "multiplier structure",
        ),
    )?;

    // ---- The coprocessor level: the Exponentiator CDO -------------------
    // The paper notes the multiplier exploration "could have been part of
    // the design space exploration performed for the main architectural
    // component"; the same decomposition mechanism carries the transition.
    s.add_property(
        exponentiator,
        Property::requirement(
            "ExponentBits",
            Domain::int_range(8, 4096),
            Some(Unit::bits()),
            "exponent length",
        ),
    )?;
    // The paper: "BUS interface requirements must be specified for each
    // main architectural component of a system-on-a-chip" — they attach to
    // the coprocessor, not to its modular-multiplier block.
    s.add_property(
        exponentiator,
        Property::requirement(
            "BusInterface",
            Domain::options(["VSI-standard", "proprietary"]),
            None,
            "on-chip bus interface protocol for the coprocessor",
        ),
    )?;
    s.add_property(
        exponentiator,
        Property::issue_with_default(
            "WindowBits",
            Domain::options([1, 2, 4, 6]),
            Value::Int(1),
            "exponent-scanning window (1 = binary square-and-multiply)",
        ),
    )?;
    // CC7: worst-case modular multiplications per exponentiation —
    // squarings + one window application per window (all-ones exponent)
    // + table precomputation. The expected-case model lives in
    // `coproc::ExpMethod::expected_multiplications`.
    s.add_constraint(
        exponentiator,
        ConsistencyConstraint::new(
            "CC7",
            "larger windows trade table storage for fewer multiplications (worst-case bound)",
            ["ExponentBits".to_owned(), "WindowBits".to_owned()],
            ["TotalMultiplications".to_owned()],
            Relation::Quantitative {
                target: "TotalMultiplications".to_owned(),
                formula: Expr::prop("ExponentBits")
                    .add(Expr::prop("ExponentBits").div(Expr::prop("WindowBits")))
                    .add(Expr::constant(2).pow(Expr::prop("WindowBits")))
                    .sub(Expr::constant(2)),
                fidelity: Fidelity::Heuristic,
            },
        ),
    )?;
    s.add_behavior(
        exponentiator,
        BehavioralDescription::new(
            "square-and-multiply",
            "1: A := 1\n\
             2: FOR i = n-1 DOWNTO 0\n\
             3:   A := A*A mod N;\n\
             4:   IF Ei = 1 THEN A := A*M mod N;",
            OperandCoding::TwosComplement,
            OperandCoding::TwosComplement,
        )
        .with_operator(OperatorUse::new(
            "oper(modmul, line:3)",
            "Operator.Modular.Multiplier",
        ))
        .with_operator(OperatorUse::new(
            "oper(modmul, line:4)",
            "Operator.Modular.Multiplier",
        )),
    )?;

    // ---- Fig. 8: OMM requirements and DI1 -------------------------------
    s.add_property(
        omm,
        Property::requirement(
            "EOL",
            Domain::int_range(8, 4096),
            Some(Unit::bits()),
            "Req1: effective operand length",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "OperandCoding",
            Domain::options(["2's complement", "signed", "unsigned"]),
            None,
            "Req2: operand coding",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "ResultCoding",
            Domain::options(["2's complement", "signed", "redundant"]),
            None,
            "Req3: result coding",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "ModuloIsOdd",
            Domain::options(["Guaranteed", "notGuaranteed"]),
            None,
            "Req4: is the modulus known to be odd?",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "MaxLatencyUs",
            Domain::real_up_to(1.0e9),
            Some(Unit::micros()),
            "Req5: latency bound for one modular multiplication",
        ),
    )?;
    s.add_property(
        omm,
        Property::generalized_issue(
            "ImplementationStyle",
            Domain::options(["Hardware", "Software"]),
            "DI1: partitions the design space (radically different performance ranges)",
        ),
    )?;
    let hw_sw = s.specialize(omm, "ImplementationStyle")?;
    let (omm_hw, omm_sw) = (hw_sw[0], hw_sw[1]);

    // ---- Fig. 11: OMM-H design issues -----------------------------------
    s.add_property(
        omm_hw,
        Property::issue(
            "LayoutStyle",
            Domain::options(["standard-cell", "gate-array", "full-custom"]),
            "DI5: physical implementation style",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue(
            "FabricationTechnology",
            Domain::options(["0.70um", "0.50um", "0.35um", "0.25um"]),
            "DI6: fabrication node",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue_with_default(
            "Radix",
            Domain::PowersOfTwo { max_exp: 4 },
            Value::Int(2),
            "DI3: digit radix (area/performance trade-off)",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue(
            "SliceWidth",
            Domain::options([8, 16, 32, 64, 128]),
            "DI4a: datapath slice width (sets the sustainable clock)",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue_with_default(
            "NumberOfSlices",
            Domain::int_range(1, 512),
            Value::Int(1),
            "DI4b: number of slices (EOL / SliceWidth must divide exactly)",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::description(
            "BehavioralDecomposition",
            Domain::options(["select-per-operator", "use-default"]),
            "DI7: conceptual design of the critical operators via the Adder/Multiplier CDOs",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::derived(
            "MaxCombDelayNs",
            Domain::real_range(0.1, 50.0),
            Some(Unit::nanos()),
            "CC3 output: maximum combinational delay of the decomposed iteration; \
             the declared range doubles as the supervisor's last-resort fallback",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::generalized_issue(
            "Algorithm",
            Domain::options(["Montgomery", "Brickell"]),
            "DI2 (generalized): Montgomery dominates but needs an odd modulus",
        ),
    )?;
    let algos = s.specialize(omm_hw, "Algorithm")?;
    let (omm_hm, omm_hb) = (algos[0], algos[1]);

    // Leaf-level structural issues.
    for leaf in [omm_hm, omm_hb] {
        s.add_property(
            leaf,
            Property::issue(
                "AdderStructure",
                Domain::options(["ripple-carry", "carry-look-ahead", "carry-save"]),
                "wide-adder structure for the accumulation rows",
            ),
        )?;
        s.add_property(
            leaf,
            Property::issue(
                "MultiplierStructure",
                Domain::options(["and-row", "array", "mux-table"]),
                "digit-multiplier structure",
            ),
        )?;
    }

    // ---- Fig. 10: Montgomery behavioural description --------------------
    s.add_behavior(
        omm_hm,
        BehavioralDescription::new(
            "Montgomery (Fig. 10)",
            montgomery_fig10_text(),
            OperandCoding::TwosComplement,
            OperandCoding::Redundant,
        )
        .with_operator(OperatorUse::new(
            "oper(+, line:3)",
            "Operator.LogicArithmetic.Arithmetic.Adder",
        ))
        .with_operator(OperatorUse::new(
            "oper(*, line:3)",
            "Operator.LogicArithmetic.Arithmetic.Multiplier",
        ))
        .with_operator(OperatorUse::new(
            "oper(*, line:4)",
            "Operator.LogicArithmetic.Arithmetic.Multiplier",
        )),
    )?;

    // ---- Software branch -------------------------------------------------
    s.add_property(
        omm_sw,
        Property::generalized_issue(
            "ProgrammablePlatform",
            Domain::options(["Pentium", "EmbeddedRISC", "EmbeddedDSP"]),
            "execution platform family",
        ),
    )?;
    s.specialize(omm_sw, "ProgrammablePlatform")?;
    s.add_property(
        omm_sw,
        Property::issue(
            "Variant",
            Domain::options(["SOS", "CIOS", "FIOS", "FIPS", "CIHS"]),
            "word-level Montgomery variant (Koç–Acar–Kaliski)",
        ),
    )?;
    s.add_property(
        omm_sw,
        Property::issue(
            "Language",
            Domain::options(["C", "ASM"]),
            "implementation language (compiled C vs hand assembly)",
        ),
    )?;

    // ---- Fig. 13: consistency constraints -------------------------------
    // CC1: Montgomery requires an odd modulus.
    s.add_constraint(
        omm,
        ConsistencyConstraint::new(
            "CC1",
            "Montgomery Algorithm requires odd modulo",
            ["ModuloIsOdd".to_owned()],
            ["Algorithm".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("ModuloIsOdd", "notGuaranteed"),
                Pred::is("Algorithm", "Montgomery"),
            ])),
        ),
    )?;
    // CC2: the greater the radix, the smaller the latency in cycles
    // (defined for Montgomery multipliers with carry-save accumulation).
    s.add_constraint(
        omm_hm,
        ConsistencyConstraint::new(
            "CC2",
            "the greater the Radix, the smaller the latency in #cycles (CSA Montgomery)",
            ["Radix".to_owned(), "EOL".to_owned()],
            ["LatencyCycles".to_owned()],
            Relation::Quantitative {
                target: "LatencyCycles".to_owned(),
                formula: Expr::constant(2)
                    .mul(Expr::prop("EOL"))
                    .div(Expr::prop("Radix"))
                    .add(Expr::constant(1)),
                fidelity: Fidelity::Heuristic,
            },
        ),
    )?;
    // CC3: behavioural decomposition impacts delay — estimation context.
    s.add_constraint(
        omm_hw,
        ConsistencyConstraint::new(
            "CC3",
            "Behavioral Decomposition impacts delay",
            ["BehavioralDecomposition".to_owned()],
            ["MaxCombDelayNs".to_owned()],
            Relation::EstimatorContext {
                estimator: "BehaviorDelayEstimator".to_owned(),
                inputs: vec!["BehavioralDecomposition".to_owned()],
                output: "MaxCombDelayNs".to_owned(),
            },
        ),
    )?;
    // CC4: Montgomery with EOL ≥ 32 must use carry-save adders.
    s.add_constraint(
        omm_hm,
        ConsistencyConstraint::new(
            "CC4",
            "inferior solutions eliminated: wide Montgomery loops need CSA adders",
            ["EOL".to_owned(), "Algorithm".to_owned()],
            ["AdderStructure".to_owned()],
            Relation::Dominance(Pred::all([
                Pred::is("Algorithm", "Montgomery"),
                Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::constant(32)),
                Pred::is_not("AdderStructure", "carry-save"),
            ])),
        ),
    )?;
    // CC5: the paper's companion constraint — mux-based multipliers for the
    // Montgomery loop at any EOL (array digit multipliers are dominated).
    s.add_constraint(
        omm_hm,
        ConsistencyConstraint::new(
            "CC5",
            "mux-based multipliers enforced for the Montgomery loop (any EOL)",
            ["Radix".to_owned()],
            ["MultiplierStructure".to_owned()],
            Relation::Dominance(Pred::all([
                Pred::cmp(CmpOp::Ge, Expr::prop("Radix"), Expr::constant(4)),
                Pred::is("MultiplierStructure", "array"),
            ])),
        ),
    )?;
    // CC6 (heuristic, ours): software cannot reach microsecond-class
    // latency on kilobit operands — the Fig. 6 range argument as a CC.
    s.add_constraint(
        omm,
        ConsistencyConstraint::new(
            "CC6",
            "software platforms cannot meet sub-100µs latency at EOL ≥ 512 (heuristic)",
            ["EOL".to_owned(), "MaxLatencyUs".to_owned()],
            ["ImplementationStyle".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("ImplementationStyle", "Software"),
                Pred::cmp(CmpOp::Ge, Expr::prop("EOL"), Expr::constant(512)),
                Pred::cmp(CmpOp::Le, Expr::prop("MaxLatencyUs"), Expr::constant(100)),
            ])),
        ),
    )?;

    debug_assert!(s.validate().is_empty());
    Ok(CryptoLayer {
        space: s,
        operator,
        adder,
        multiplier,
        exponentiator,
        omm,
        omm_hw,
        omm_sw,
        omm_hm,
        omm_hb,
    })
}

/// An alternative, *coexisting* specialization hierarchy over the same
/// design space and the same reuse libraries — the paper's stated work in
/// progress ("investigating the need for supporting the co-existence of
/// different specialization hierarchies, so as to effectively guide
/// designers based on the specific trade-offs they may be interested in").
///
/// This view puts the fabrication technology first under Hardware (for a
/// designer whose dominant concern is the process node), leaving the
/// algorithm as a regular trade-off issue.
#[derive(Debug, Clone)]
pub struct CryptoTechView {
    /// The view's design space.
    pub space: DesignSpace,
    /// The OMM CDO.
    pub omm: CdoId,
    /// The hardware sub-class.
    pub omm_hw: CdoId,
    /// The per-technology families spawned under Hardware.
    pub tech_families: Vec<CdoId>,
}

/// Builds the technology-first view of the cryptography design space.
///
/// Core records carry the same option bindings regardless of the view, so
/// both hierarchies transparently index the *same* reuse libraries; only
/// the traversal/pruning order differs.
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn build_layer_technology_first() -> Result<CryptoTechView, DseError> {
    let mut s = DesignSpace::new("cryptography (technology-first view)");
    let operator = s.add_root("Operator", "operator taxonomy (shared with the main view)");
    let modular = s.add_child(operator, "Modular", "modular-arithmetic operators");
    let omm = s.add_child(modular, "Multiplier", "modular multiplication");

    s.add_property(
        omm,
        Property::requirement(
            "EOL",
            Domain::int_range(8, 4096),
            Some(Unit::bits()),
            "Req1",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "ModuloIsOdd",
            Domain::options(["Guaranteed", "notGuaranteed"]),
            None,
            "Req4",
        ),
    )?;
    s.add_property(
        omm,
        Property::requirement(
            "MaxLatencyUs",
            Domain::real_up_to(1.0e9),
            Some(Unit::micros()),
            "Req5",
        ),
    )?;
    s.add_property(
        omm,
        Property::generalized_issue(
            "ImplementationStyle",
            Domain::options(["Hardware", "Software"]),
            "DI1",
        ),
    )?;
    let kids = s.specialize(omm, "ImplementationStyle")?;
    let omm_hw = kids[0];

    // The view's pivot: technology partitions the hardware space.
    s.add_property(
        omm_hw,
        Property::generalized_issue(
            "FabricationTechnology",
            Domain::options(["0.70um", "0.50um", "0.35um", "0.25um"]),
            "this view's dominant concern: the process node",
        ),
    )?;
    let tech_families = s.specialize(omm_hw, "FabricationTechnology")?;

    // Everything else becomes regular trade-off issues.
    s.add_property(
        omm_hw,
        Property::issue(
            "Algorithm",
            Domain::options(["Montgomery", "Brickell"]),
            "DI2 as a regular issue",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue_with_default(
            "Radix",
            Domain::PowersOfTwo { max_exp: 4 },
            Value::Int(2),
            "DI3",
        ),
    )?;
    s.add_property(
        omm_hw,
        Property::issue("SliceWidth", Domain::options([8, 16, 32, 64, 128]), "DI4a"),
    )?;
    s.add_property(
        omm_hw,
        Property::issue(
            "AdderStructure",
            Domain::options(["ripple-carry", "carry-look-ahead", "carry-save"]),
            "leaf structure",
        ),
    )?;
    // CC1 applies in any view.
    s.add_constraint(
        omm,
        ConsistencyConstraint::new(
            "CC1",
            "Montgomery Algorithm requires odd modulo",
            ["ModuloIsOdd".to_owned()],
            ["Algorithm".to_owned()],
            Relation::InconsistentOptions(Pred::all([
                Pred::is("ModuloIsOdd", "notGuaranteed"),
                Pred::is("Algorithm", "Montgomery"),
            ])),
        ),
    )?;

    debug_assert!(s.validate().is_empty());
    Ok(CryptoTechView {
        space: s,
        omm,
        omm_hw,
        tech_families,
    })
}

/// Builds the operator-level reuse library for the `Adder` CDO — the
/// exploration target of the Fig.-10 behavioural decomposition (DI7): when
/// the designer selects behavioural descriptions per operator, the adder
/// slot is explored against these cores using the `Adder` class's own
/// design space.
pub fn build_adder_library(tech: &Technology) -> ReuseLibrary {
    use hwmodel::AdderKind;
    let mut lib = ReuseLibrary::new(format!("adder macros @ {tech}"));
    for kind in AdderKind::ALL {
        for width in [8u32, 16, 32, 64, 128] {
            let area_um2 = tech.ge_to_um2(kind.area_ge(width, tech));
            let delay_ns = tech.tau_to_ns(kind.delay_tau(width, tech));
            lib.push(
                CoreRecord::new(
                    format!("{kind}-{width}"),
                    "in-house",
                    format!("{width}-bit {kind} adder macro"),
                )
                .bind("LogicStyle", kind.to_string())
                .bind("WordSize", width as i64)
                .bind("AdderLayoutStyle", tech.layout().to_string())
                .merit(FigureOfMerit::AreaUm2, area_um2)
                .merit(FigureOfMerit::DelayNs, delay_ns),
            );
        }
    }
    lib
}

/// Builds the reuse library for the cryptography layer: the Table-1
/// hardware design families at every compatible slice width, priced for
/// `eol`-bit operands under `tech`, plus the Koç software routines on the
/// Pentium-60 models.
pub fn build_library(tech: &Technology, eol: u32) -> ReuseLibrary {
    let mut lib = ReuseLibrary::new(format!("crypto cores @ EOL={eol}, {tech}"));

    for family in paper_designs() {
        for &w in &TABLE1_SLICE_WIDTHS {
            if !eol.is_multiple_of(w) {
                continue;
            }
            let Ok(arch) = family.architecture(w) else {
                continue;
            };
            let Ok(est) = arch.try_estimate(eol, tech) else {
                continue;
            };
            let core = CoreRecord::new(
                family.core_label(w),
                "in-house",
                format!("{family} at {w}-bit slices"),
            )
            .bind("ImplementationStyle", "Hardware")
            .bind("Algorithm", family.algorithm().to_string())
            .bind("Radix", family.radix() as i64)
            .bind("SliceWidth", w as i64)
            .bind("NumberOfSlices", (eol / w) as i64)
            .bind("AdderStructure", family.adder().to_string())
            .bind("MultiplierStructure", family.multiplier().to_string())
            .bind("LayoutStyle", tech.layout().to_string())
            .bind("FabricationTechnology", tech.node().name())
            .merit(FigureOfMerit::AreaUm2, est.area_um2)
            .merit(FigureOfMerit::DelayNs, est.latency_ns)
            .merit(FigureOfMerit::ClockNs, est.clock_ns)
            .merit(FigureOfMerit::LatencyCycles, est.cycles as f64)
            .merit(FigureOfMerit::PowerMw, est.power_mw)
            .merit(FigureOfMerit::TimeUs, est.latency_ns / 1000.0);
            lib.push(core);
        }
    }

    // The software branch covers all three programmable platforms: the
    // paper's Pentium-60 measurements plus the embedded RISC/DSP options
    // of its "programmable platform" design issue.
    let platform_models = |platform: &str, lang: &str| -> ProcessorModel {
        match (platform, lang) {
            ("Pentium", "ASM") => ProcessorModel::pentium60_asm(),
            ("Pentium", _) => ProcessorModel::pentium60_c(),
            ("EmbeddedRISC", _) => ProcessorModel::embedded_risc(200.0),
            _ => ProcessorModel::embedded_dsp(100.0),
        }
    };
    for platform in ["Pentium", "EmbeddedRISC", "EmbeddedDSP"] {
        for variant in MontgomeryVariant::ALL {
            for lang in ["C", "ASM"] {
                let cpu = platform_models(platform, lang);
                // Embedded platforms: only Pentium differentiates C/ASM in
                // the Koç data; embedded presets carry their own overhead,
                // so skip the duplicate ASM entry.
                if platform != "Pentium" && lang == "ASM" {
                    continue;
                }
                let routine = SoftwareRoutine::new(variant, cpu);
                let time_us = routine.estimate_mont_mul_us(eol);
                let name = if platform == "Pentium" {
                    format!("{variant} {lang}")
                } else {
                    format!("{variant} {platform}")
                };
                let core = CoreRecord::new(
                    name,
                    "Koc-Acar-Kaliski",
                    format!("{variant} Montgomery variant, {lang} on {platform}"),
                )
                .bind("ImplementationStyle", "Software")
                .bind("ProgrammablePlatform", platform)
                .bind("Algorithm", "Montgomery")
                .bind("Variant", variant.to_string())
                .bind("Language", lang)
                .merit(FigureOfMerit::TimeUs, time_us)
                .merit(FigureOfMerit::DelayNs, time_us * 1000.0);
                lib.push(core);
            }
        }
    }

    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use dse::session::ExplorationSession;

    #[test]
    fn layer_structure_matches_fig5_and_fig7() {
        let layer = build_layer().unwrap();
        let s = &layer.space;
        assert_eq!(s.path_string(layer.omm), "Operator.Modular.Multiplier");
        assert_eq!(
            s.path_string(layer.omm_hm),
            "Operator.Modular.Multiplier.Hardware.Montgomery"
        );
        assert_eq!(
            s.path_string(layer.omm_hb),
            "Operator.Modular.Multiplier.Hardware.Brickell"
        );
        assert!(s.validate().is_empty());
        // The software branch spawned its three platforms.
        assert_eq!(s.node(layer.omm_sw).children().len(), 3);
    }

    #[test]
    fn omm_has_the_fig8_requirements() {
        let layer = build_layer().unwrap();
        let names: Vec<&str> = layer
            .space
            .effective_properties(layer.omm)
            .iter()
            .map(|(_, p)| p.name())
            .collect();
        for req in [
            "EOL",
            "OperandCoding",
            "ResultCoding",
            "ModuloIsOdd",
            "MaxLatencyUs",
        ] {
            assert!(names.contains(&req), "{req}");
        }
    }

    #[test]
    fn leaf_inherits_all_ancestor_issues() {
        // The paper: at the leaf the designer may revisit non-generalized
        // issues of all ancestors (Radix, SliceWidth, technology, …).
        let layer = build_layer().unwrap();
        let names: Vec<&str> = layer
            .space
            .effective_properties(layer.omm_hm)
            .iter()
            .map(|(_, p)| p.name())
            .collect();
        for issue in [
            "Radix",
            "SliceWidth",
            "NumberOfSlices",
            "LayoutStyle",
            "FabricationTechnology",
            "AdderStructure",
            "EOL",
        ] {
            assert!(names.contains(&issue), "{issue}");
        }
    }

    #[test]
    fn montgomery_behavior_decomposes_into_operator_cdos() {
        let layer = build_layer().unwrap();
        let behaviors = layer.space.node(layer.omm_hm).behaviors();
        assert_eq!(behaviors.len(), 1);
        let bd = &behaviors[0];
        assert!(bd.text().contains("Qi := (R0*(r-M0)^-1) mod r"));
        assert_eq!(bd.decomposition().len(), 3);
        for op in bd.decomposition() {
            assert!(layer.space.find_by_path(op.cdo_path()).is_some());
        }
    }

    #[test]
    fn library_has_hardware_and_software_cores() {
        let lib = build_library(&Technology::g10_035(), 768);
        // 8 families × 5 widths (all divide 768? 8,16,32,64,128 yes) + 10 sw.
        let hw = lib
            .cores()
            .iter()
            .filter(|c| c.binding("ImplementationStyle") == Some(&Value::from("Hardware")))
            .count();
        let sw = lib.len() - hw;
        assert_eq!(hw, 40);
        assert_eq!(sw, 20); // Pentium C/ASM + embedded RISC + embedded DSP
        assert!(lib.find("#2_64").is_some());
        assert!(lib.find("CIHS ASM").is_some());
        assert!(lib.find("CIOS EmbeddedRISC").is_some());
        assert!(lib.find("FIPS EmbeddedDSP").is_some());
    }

    #[test]
    fn section5_walkthrough_prunes_to_csa_montgomery_hardware() {
        let layer = build_layer().unwrap();
        let lib = build_library(&Technology::g10_035(), 768);
        let mut exp = Explorer::new(&layer.space, layer.omm, &lib);
        let total = exp.surviving_cores().len();

        // Req1–Req5 (Fig. 8 values from the Koç coprocessor spec).
        exp.session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp.session
            .set_requirement("OperandCoding", Value::from("2's complement"))
            .unwrap();
        exp.session
            .set_requirement("ResultCoding", Value::from("redundant"))
            .unwrap();
        exp.session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp.session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();

        // CC6 rejects software outright at this spec.
        let err = exp
            .session
            .decide("ImplementationStyle", Value::from("Software"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC6")
        );

        exp.session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        let after_hw = exp.surviving_cores().len();
        assert!(after_hw < total);
        assert_eq!(after_hw, 40);

        exp.session
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap();
        let after_algo = exp.surviving_cores().len();
        assert_eq!(after_algo, 30); // 6 Montgomery families × 5 widths

        // CC4 forbids non-CSA adders at this operand length.
        assert!(exp
            .session
            .decide("AdderStructure", Value::from("carry-look-ahead"))
            .is_err());
        exp.session
            .decide("AdderStructure", Value::from("carry-save"))
            .unwrap();
        let survivors = exp.surviving_cores();
        assert!(survivors
            .iter()
            .all(|c| { c.binding("AdderStructure") == Some(&Value::from("carry-save")) }));

        // Some surviving core meets the 8 µs bound.
        let meeting = exp.cores_meeting(&FigureOfMerit::TimeUs, 8.0);
        assert!(!meeting.is_empty(), "spec must be satisfiable");
    }

    #[test]
    fn cc2_derives_latency_in_session() {
        let layer = build_layer().unwrap();
        let mut ses = ExplorationSession::new(&layer.space, layer.omm);
        ses.set_requirement("EOL", Value::from(768)).unwrap();
        ses.set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        ses.decide("Algorithm", Value::from("Montgomery")).unwrap();
        ses.decide("Radix", Value::from(4)).unwrap();
        let derived = ses.derived();
        assert!(derived.contains(&("LatencyCycles".to_owned(), Value::Int(385))));
    }

    #[test]
    fn di7_explores_the_adder_cdo_with_its_own_library() {
        // The paper: "This design space exploration step is thus performed
        // using other CDOs in the hierarchy (i.e., the Arithmetic Adders
        // and Multipliers)."
        let layer = build_layer().unwrap();
        let adders = build_adder_library(&Technology::g10_035());
        assert_eq!(adders.len(), 15); // 3 logic styles × 5 widths
        let mut exp = Explorer::new(&layer.space, layer.adder, &adders);
        exp.session
            .set_requirement("WordSize", Value::from(64))
            .unwrap();
        exp.session
            .decide("LogicStyle", Value::from("carry-save"))
            .unwrap();
        let survivors = exp.surviving_cores();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].name(), "carry-save-64");
        // The carry-save macro is the fastest 64-bit option, consistent
        // with CC4's verdict one level up.
        let all = Explorer::new(&layer.space, layer.adder, &adders);
        let fastest = all
            .surviving_cores()
            .into_iter()
            .filter(|c| c.binding("WordSize") == Some(&Value::from(64)))
            .min_by(|a, b| {
                a.merit_value(&FigureOfMerit::DelayNs)
                    .unwrap()
                    .total_cmp(&b.merit_value(&FigureOfMerit::DelayNs).unwrap())
            })
            .unwrap();
        assert_eq!(fastest.name(), "carry-save-64");
    }

    #[test]
    fn adder_library_lints_clean_under_the_adder_cdo() {
        let layer = build_layer().unwrap();
        let adders = build_adder_library(&Technology::g10_035());
        let report = crate::lint::lint_library(&layer.space, layer.adder, &adders);
        // WordSize is a requirement the macros legitimately parameterize
        // on; everything else must be clean.
        assert!(
            report
                .diagnostics()
                .iter()
                .all(|d| d.span.property.as_deref() == Some("WordSize")),
            "{report}"
        );
    }

    #[test]
    fn bus_interface_attaches_to_the_coprocessor_not_the_multiplier() {
        let layer = build_layer().unwrap();
        assert!(layer
            .space
            .find_property(layer.exponentiator, "BusInterface")
            .is_some());
        // The modular multiplier block carries no bus requirement.
        assert!(layer
            .space
            .find_property(layer.omm, "BusInterface")
            .is_none());
    }

    #[test]
    fn exponentiator_cdo_decomposes_into_the_multiplier() {
        // The coprocessor-level transition the paper describes.
        let layer = build_layer().unwrap();
        let behaviors = layer.space.node(layer.exponentiator).behaviors();
        assert_eq!(behaviors.len(), 1);
        assert!(behaviors[0]
            .decomposition()
            .iter()
            .all(|op| op.cdo_path() == "Operator.Modular.Multiplier"));
        assert_eq!(
            layer.space.find_by_path("Operator.Modular.Multiplier"),
            Some(layer.omm)
        );
    }

    #[test]
    fn cc7_derives_multiplication_counts() {
        let layer = build_layer().unwrap();
        let mut ses = ExplorationSession::new(&layer.space, layer.exponentiator);
        ses.set_requirement("ExponentBits", Value::from(1024))
            .unwrap();
        assert!(ses.derived().is_empty(), "window not chosen yet");
        ses.decide("WindowBits", Value::from(4)).unwrap();
        let derived = ses.derived();
        // 1024 + 1024/4 + 2^4 − 2 = 1294.
        assert!(derived.contains(&("TotalMultiplications".to_owned(), Value::Int(1294))));
        // Binary: 1024 + 1024 + 0 = 2048.
        ses.revise("WindowBits", Value::from(1)).unwrap();
        assert!(ses
            .derived()
            .contains(&("TotalMultiplications".to_owned(), Value::Int(2048))));
    }

    #[test]
    fn coexisting_views_index_the_same_library_identically() {
        // Equivalent decision sets must leave the same surviving cores in
        // both hierarchies — the views differ in traversal order only.
        let main = build_layer().unwrap();
        let view = build_layer_technology_first().unwrap();
        let lib = build_library(&Technology::g10_035(), 768);

        let mut exp_main = Explorer::new(&main.space, main.omm, &lib);
        exp_main
            .session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp_main
            .session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        exp_main
            .session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp_main
            .session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        exp_main
            .session
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap();
        exp_main
            .session
            .decide("FabricationTechnology", Value::from("0.35um"))
            .unwrap();

        let mut exp_view = Explorer::new(&view.space, view.omm, &lib);
        exp_view
            .session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp_view
            .session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        exp_view
            .session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp_view
            .session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        // In this view the technology is the generalized descent...
        exp_view
            .session
            .decide("FabricationTechnology", Value::from("0.35um"))
            .unwrap();
        // ...and the algorithm a plain trade-off issue.
        exp_view
            .session
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap();

        let mut names_main: Vec<&str> = exp_main
            .surviving_cores()
            .iter()
            .map(|c| c.name())
            .collect();
        let mut names_view: Vec<&str> = exp_view
            .surviving_cores()
            .iter()
            .map(|c| c.name())
            .collect();
        names_main.sort_unstable();
        names_view.sort_unstable();
        assert_eq!(names_main, names_view);
        assert!(!names_main.is_empty());
        // The view descended into its 0.35um family.
        assert_eq!(
            view.space.path_string(exp_view.session.focus()),
            "Operator.Modular.Multiplier.Hardware.0.35um"
        );
    }

    #[test]
    fn tech_view_still_enforces_cc1() {
        let view = build_layer_technology_first().unwrap();
        let mut ses = ExplorationSession::new(&view.space, view.omm);
        ses.set_requirement("EOL", Value::from(768)).unwrap();
        ses.set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        ses.set_requirement("ModuloIsOdd", Value::from("notGuaranteed"))
            .unwrap();
        ses.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        ses.decide("FabricationTechnology", Value::from("0.35um"))
            .unwrap();
        let err = ses
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap_err();
        assert!(
            matches!(err, DseError::ConstraintViolation { ref constraint, .. } if constraint == "CC1")
        );
    }

    #[test]
    fn self_documentation_renders() {
        let layer = build_layer().unwrap();
        let md = dse::doc::render_markdown(&layer.space);
        assert!(md.contains("Operator"));
        assert!(md.contains("CC1: Montgomery Algorithm requires odd modulo"));
        assert!(md.contains("FOR i=1 TO n+1"));
        assert!(md.contains("[ImplementationStyle = Hardware]"));
    }
}
