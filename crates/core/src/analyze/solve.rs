//! `dse::analyze::solve` — a propagation-based incremental constraint
//! engine over option domains, replacing exhaustive enumeration.
//!
//! Two cooperating layers live here:
//!
//! * An **exact counting engine** ([`count_firing_exact`] /
//!   [`survives_exact`]): a propagation-guided search that returns the
//!   *same numbers* the old odometer enumeration produced, but prunes
//!   with a three-valued abstract evaluation ([`eval3`]) so entire
//!   subspaces are counted (or discarded) without being visited. A
//!   deterministic node budget ([`SEARCH_NODE_BUDGET`]) bounds
//!   adversarial inputs; budget exhaustion is reported, never guessed
//!   around.
//! * An **incremental [`Solver`]**: per-variable domain lattices
//!   (bitsets over finite option sets, integer/real intervals), a
//!   watched-constraint propagation queue (generalized arc consistency
//!   over [`Pred`]s with bounds propagation for arithmetic), a
//!   trail/backtrack API so each [`Solver::decide`] / [`Solver::retract`]
//!   re-solves in O(changed domains), and conflict explanation: the
//!   minimal decisions proving a contradiction, as a "because" chain.
//!
//! Soundness contract: [`eval3`] *over-approximates* the outcome set of
//! `Pred::eval` over all completions of the current domains, modelling
//! its exact short-circuit semantics (`And` stops at the first `false`,
//! errors propagate in element order). The exact engine therefore only
//! takes a cutoff when the abstraction proves it, and resolves every
//! ambiguous leaf with a concrete `Pred::eval` call — which is what
//! makes its counts bit-identical to the exhaustive oracle.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::expr::{Bindings, CmpOp, Expr, Pred};
use crate::hierarchy::{CdoId, DesignSpace};
use crate::value::{Domain, Value};

/// Deterministic per-query search-node budget for the exact engine.
/// Exhaustion surfaces as "unknown" (a skipped check plus a DSL111
/// note), never as a wrong verdict.
pub(crate) const SEARCH_NODE_BUDGET: u64 = 500_000;

/// Endpoint probes per side when shaving integer-interval bounds.
const BOUND_PROBES: u32 = 32;

/// Outcome bit: the predicate can evaluate to `Ok(true)`.
const T: u8 = 0b001;
/// Outcome bit: the predicate can evaluate to `Ok(false)`.
const F: u8 = 0b010;
/// Outcome bit: the predicate can evaluate to `Err(_)`.
const E: u8 = 0b100;

// ---------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------

/// Work counters for one solve/analysis run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolveTotals {
    /// Constraint (re-)evaluations: abstract revisions plus concrete
    /// leaf evaluations.
    pub propagations: u64,
    /// Conflicts proven (definite-fire cutoffs and emptied domains).
    pub conflicts: u64,
    /// Propagation-queue pops across all fixpoints.
    pub fixpoint_iterations: u64,
    /// Nodes visited by the exact counting search.
    pub search_nodes: u64,
}

impl SolveTotals {
    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &SolveTotals) {
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.fixpoint_iterations += other.fixpoint_iterations;
        self.search_nodes += other.search_nodes;
    }
}

/// Thread-safe accumulator for [`SolveTotals`], shared by the per-CDO
/// parallel analysis fan-out.
#[derive(Debug, Default)]
pub(crate) struct SolveStats {
    propagations: AtomicU64,
    conflicts: AtomicU64,
    fixpoint_iterations: AtomicU64,
    search_nodes: AtomicU64,
}

impl SolveStats {
    pub(crate) fn new() -> SolveStats {
        SolveStats::default()
    }

    pub(crate) fn absorb(&self, t: &SolveTotals) {
        self.propagations.fetch_add(t.propagations, Ordering::Relaxed);
        self.conflicts.fetch_add(t.conflicts, Ordering::Relaxed);
        self.fixpoint_iterations
            .fetch_add(t.fixpoint_iterations, Ordering::Relaxed);
        self.search_nodes.fetch_add(t.search_nodes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> SolveTotals {
        SolveTotals {
            propagations: self.propagations.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            fixpoint_iterations: self.fixpoint_iterations.load(Ordering::Relaxed),
            search_nodes: self.search_nodes.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Abstract numeric values: interval + may-error lattice.
// ---------------------------------------------------------------------

/// The abstract result of `Expr::eval` over a set of completions:
/// every achievable `Ok` value lies in `[lo, hi]`; `err` records
/// whether any completion can error (unbound, type mismatch, division
/// by zero, non-finite). `lo > hi` encodes "no `Ok` value achievable".
#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsNum {
    lo: f64,
    hi: f64,
    err: bool,
}

impl AbsNum {
    /// Anything at all: all values, may error.
    fn top() -> AbsNum {
        AbsNum {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            err: true,
        }
    }

    /// Always errors, never a numeric value.
    fn err_only() -> AbsNum {
        AbsNum {
            lo: 1.0,
            hi: 0.0,
            err: true,
        }
    }

    fn point(x: f64) -> AbsNum {
        AbsNum {
            lo: x,
            hi: x,
            err: false,
        }
    }

    fn has_num(&self) -> bool {
        self.lo <= self.hi
    }

    /// The abstraction of one concrete value: finite numerics are
    /// points, everything else (text, flags, NaN/±∞) errors under
    /// `Expr::eval`.
    fn of_value(v: &Value) -> AbsNum {
        match v.as_f64() {
            Some(x) if x.is_finite() => AbsNum::point(x),
            _ => AbsNum::err_only(),
        }
    }

    /// Corner hull for a binary operation monotone-in-corners
    /// (add/sub/mul, and div once the divisor excludes zero). Non-finite
    /// corners stay as interval *bounds* and additionally set `err`,
    /// since the concrete evaluator rejects non-finite results.
    fn join(a: AbsNum, b: AbsNum, f: impl Fn(f64, f64) -> f64) -> AbsNum {
        if !a.has_num() || !b.has_num() {
            return AbsNum::err_only();
        }
        let mut out = AbsNum {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            err: a.err || b.err,
        };
        for x in [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)] {
            if x.is_nan() {
                return AbsNum::top();
            }
            out.lo = out.lo.min(x);
            out.hi = out.hi.max(x);
            if !x.is_finite() {
                out.err = true;
            }
        }
        out
    }

    fn div(self, b: AbsNum) -> AbsNum {
        if !self.has_num() || !b.has_num() {
            return AbsNum::err_only();
        }
        if b.lo <= 0.0 && b.hi >= 0.0 {
            // The divisor interval admits zero: division by zero plus
            // unbounded quotients near it.
            return AbsNum::top();
        }
        AbsNum::join(self, b, |x, y| x / y)
    }

    fn pow(self, b: AbsNum) -> AbsNum {
        if !self.has_num() || !b.has_num() {
            return AbsNum::err_only();
        }
        if self.lo == self.hi && b.lo == b.hi {
            let r = self.lo.powf(b.lo);
            if r.is_finite() {
                return AbsNum {
                    lo: r,
                    hi: r,
                    err: self.err || b.err,
                };
            }
            return AbsNum::err_only();
        }
        // powf over boxes has interior extrema (x = 1, x = 0, NaN for
        // negative bases): stay conservative.
        AbsNum::top()
    }
}

// ---------------------------------------------------------------------
// Variable views: what the abstraction knows about one property.
// ---------------------------------------------------------------------

/// A bitset over the indices of a finite candidate list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    bits: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitSet {
    pub(crate) fn full(len: usize) -> BitSet {
        let words = len.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        BitSet { bits, len, ones: len }
    }

    pub(crate) fn get(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears bit `i`; returns whether it was set.
    pub(crate) fn clear(&mut self, i: usize) -> bool {
        if !self.get(i) {
            return false;
        }
        self.bits[i / 64] &= !(1u64 << (i % 64));
        self.ones -= 1;
        true
    }

    pub(crate) fn count(&self) -> usize {
        self.ones
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

/// What the evaluator knows about one referenced property.
enum VarView<'a> {
    /// Bound to exactly this value.
    Val(&'a Value),
    /// One of a finite candidate list (optionally masked by `live`).
    Finite {
        values: &'a [Value],
        live: Option<&'a BitSet>,
    },
    /// Any integer in `lo..=hi`.
    Int(i64, i64),
    /// Any real in `[lo, hi]`.
    Real(f64, f64),
    /// Could be anything (open domain).
    Open,
    /// Not bound and not enumerable here: evaluation errors.
    Missing,
}

impl VarView<'_> {
    fn abs(&self) -> AbsNum {
        match self {
            VarView::Val(v) => AbsNum::of_value(v),
            VarView::Finite { values, live } => {
                let mut out = AbsNum {
                    lo: f64::INFINITY,
                    hi: f64::NEG_INFINITY,
                    err: false,
                };
                for (i, v) in values.iter().enumerate() {
                    if let Some(l) = live {
                        if !l.get(i) {
                            continue;
                        }
                    }
                    match v.as_f64() {
                        Some(x) if x.is_finite() => {
                            out.lo = out.lo.min(x);
                            out.hi = out.hi.max(x);
                        }
                        _ => out.err = true,
                    }
                }
                out
            }
            VarView::Int(lo, hi) => AbsNum {
                lo: *lo as f64,
                hi: *hi as f64,
                err: false,
            },
            VarView::Real(lo, hi) => {
                if lo.is_finite() && hi.is_finite() && lo <= hi {
                    AbsNum {
                        lo: *lo,
                        hi: *hi,
                        err: false,
                    }
                } else {
                    AbsNum::top()
                }
            }
            VarView::Open => AbsNum::top(),
            VarView::Missing => AbsNum::err_only(),
        }
    }

    /// Outcome set of `Is(prop, lit)` (or `IsNot` when `negate`).
    fn is_outcomes(&self, lit: &Value, negate: bool) -> u8 {
        let base = match self {
            VarView::Val(v) => {
                if v.matches(lit) {
                    T
                } else {
                    F
                }
            }
            VarView::Finite { values, live } => {
                let mut s = 0u8;
                for (i, v) in values.iter().enumerate() {
                    if let Some(l) = live {
                        if !l.get(i) {
                            continue;
                        }
                    }
                    s |= if v.matches(lit) { T } else { F };
                    if s == T | F {
                        break;
                    }
                }
                s
            }
            VarView::Int(lo, hi) => match lit.as_f64() {
                Some(x) => {
                    let mut s = 0u8;
                    if x >= *lo as f64 && x <= *hi as f64 {
                        s |= T;
                    }
                    if !(lo == hi && (*lo as f64) == x) {
                        s |= F;
                    }
                    s
                }
                None => F,
            },
            VarView::Real(lo, hi) => match lit.as_f64() {
                Some(x) => {
                    let mut s = 0u8;
                    if x >= *lo && x <= *hi {
                        s |= T;
                    }
                    if !(lo == hi && *lo == x) {
                        s |= F;
                    }
                    s
                }
                None => F,
            },
            VarView::Open => T | F,
            VarView::Missing => return E,
        };
        if negate {
            let mut out = base & E;
            if base & T != 0 {
                out |= F;
            }
            if base & F != 0 {
                out |= T;
            }
            out
        } else {
            base
        }
    }
}

/// Source of variable views for [`eval3`].
trait Vars {
    fn view(&self, name: &str) -> VarView<'_>;
}

// ---------------------------------------------------------------------
// Three-valued abstract evaluation.
// ---------------------------------------------------------------------

fn abs_expr(e: &Expr, vars: &dyn Vars) -> AbsNum {
    match e {
        Expr::Const(v) => AbsNum::of_value(v),
        Expr::Prop(name) => vars.view(name).abs(),
        Expr::Add(a, b) => AbsNum::join(abs_expr(a, vars), abs_expr(b, vars), |x, y| x + y),
        Expr::Sub(a, b) => AbsNum::join(abs_expr(a, vars), abs_expr(b, vars), |x, y| x - y),
        Expr::Mul(a, b) => AbsNum::join(abs_expr(a, vars), abs_expr(b, vars), |x, y| x * y),
        Expr::Div(a, b) => abs_expr(a, vars).div(abs_expr(b, vars)),
        Expr::Pow(a, b) => abs_expr(a, vars).pow(abs_expr(b, vars)),
    }
}

fn can_true(op: CmpOp, a: &AbsNum, b: &AbsNum) -> bool {
    match op {
        CmpOp::Eq => a.lo <= b.hi && b.lo <= a.hi,
        CmpOp::Ne => !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
        CmpOp::Lt => a.lo < b.hi,
        CmpOp::Le => a.lo <= b.hi,
        CmpOp::Gt => a.hi > b.lo,
        CmpOp::Ge => a.hi >= b.lo,
    }
}

fn can_false(op: CmpOp, a: &AbsNum, b: &AbsNum) -> bool {
    match op {
        CmpOp::Eq => !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
        CmpOp::Ne => a.lo <= b.hi && b.lo <= a.hi,
        CmpOp::Lt => a.hi >= b.lo,
        CmpOp::Le => a.hi > b.lo,
        CmpOp::Gt => a.lo <= b.hi,
        CmpOp::Ge => a.lo < b.hi,
    }
}

/// Over-approximates the outcome set (`T`/`F`/`E` bits) of
/// `pred.eval(..)` over every completion of the variable views,
/// modelling the concrete evaluator's short-circuit order exactly:
/// `And` evaluates elements left to right, an `Ok(false)` stops before
/// later errors can surface, and an error stops before later elements
/// can rescue the result (dually for `Or`).
fn eval3(pred: &Pred, vars: &dyn Vars) -> u8 {
    match pred {
        Pred::Cmp(op, ea, eb) => {
            let a = abs_expr(ea, vars);
            let mut s = 0u8;
            if a.err {
                s |= E;
            }
            if a.has_num() {
                // The rhs is only evaluated once the lhs succeeded.
                let b = abs_expr(eb, vars);
                if b.err {
                    s |= E;
                }
                if b.has_num() {
                    if can_true(*op, &a, &b) {
                        s |= T;
                    }
                    if can_false(*op, &a, &b) {
                        s |= F;
                    }
                }
            }
            s
        }
        Pred::Is(p, v) => vars.view(p).is_outcomes(v, false),
        Pred::IsNot(p, v) => vars.view(p).is_outcomes(v, true),
        Pred::And(ps) => {
            let mut out = 0u8;
            let mut prefix_true = true;
            for p in ps {
                if !prefix_true {
                    break;
                }
                let s = eval3(p, vars);
                out |= s & (F | E);
                prefix_true = s & T != 0;
            }
            if prefix_true {
                out |= T;
            }
            out
        }
        Pred::Or(ps) => {
            let mut out = 0u8;
            let mut prefix_false = true;
            for p in ps {
                if !prefix_false {
                    break;
                }
                let s = eval3(p, vars);
                out |= s & (T | E);
                prefix_false = s & F != 0;
            }
            if prefix_false {
                out |= F;
            }
            out
        }
        Pred::Not(p) => {
            let s = eval3(p, vars);
            let mut out = s & E;
            if s & T != 0 {
                out |= F;
            }
            if s & F != 0 {
                out |= T;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------
// The exact counting engine (propagation-guided search).
// ---------------------------------------------------------------------

/// Views for the counting search: bound names resolve from the scratch
/// bindings, unassigned axes to their full candidate lists, everything
/// else is missing (unbound at concrete evaluation).
struct EnumVars<'a> {
    axes: &'a [(String, Vec<Value>)],
    assigned: &'a [Option<usize>],
    bound: &'a Bindings,
}

impl Vars for EnumVars<'_> {
    fn view(&self, name: &str) -> VarView<'_> {
        if let Some(v) = self.bound.get(name) {
            return VarView::Val(v);
        }
        for (i, (n, vs)) in self.axes.iter().enumerate() {
            if n == name && self.assigned[i].is_none() {
                return VarView::Finite {
                    values: vs,
                    live: None,
                };
            }
        }
        VarView::Missing
    }
}

struct Exact<'a> {
    preds: &'a [(&'a str, &'a Pred)],
    axes: &'a [(String, Vec<Value>)],
    /// `fixed` merged with the currently assigned axis values.
    scratch: Bindings,
    assigned: Vec<Option<usize>>,
    /// Axis indices referenced per predicate.
    pred_axes: Vec<Vec<usize>>,
    budget: u64,
    totals: SolveTotals,
    overrun: bool,
}

impl<'a> Exact<'a> {
    fn new(
        preds: &'a [(&'a str, &'a Pred)],
        axes: &'a [(String, Vec<Value>)],
        fixed: &Bindings,
        budget: u64,
    ) -> Exact<'a> {
        let pred_axes = preds
            .iter()
            .map(|(_, p)| {
                let refs = p.references();
                axes.iter()
                    .enumerate()
                    .filter(|(_, (n, _))| refs.iter().any(|r| r == n))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        Exact {
            preds,
            axes,
            scratch: fixed.clone(),
            assigned: vec![None; axes.len()],
            pred_axes,
            budget,
            totals: SolveTotals::default(),
            overrun: false,
        }
    }

    /// Product of the unassigned axis sizes: the number of completions
    /// of the current partial assignment.
    fn free_product(&self) -> u64 {
        self.axes
            .iter()
            .zip(&self.assigned)
            .filter(|(_, a)| a.is_none())
            .map(|((_, vs), _)| vs.len() as u64)
            .product()
    }

    /// Examines every predicate under the current partial assignment.
    /// Returns `Ok(Some(fires))` when the node is decided for *all*
    /// completions, `Ok(None)` with a branch predicate otherwise.
    fn classify(&mut self) -> Result<bool, usize> {
        let view = EnumVars {
            axes: self.axes,
            assigned: &self.assigned,
            bound: &self.scratch,
        };
        let mut branch: Option<usize> = None;
        for (pi, (_, p)) in self.preds.iter().enumerate() {
            self.totals.propagations += 1;
            let s = eval3(p, &view);
            if s == T {
                // Fires on every completion of this node.
                return Ok(true);
            }
            if s & T != 0 {
                if self.pred_axes[pi]
                    .iter()
                    .all(|&a| self.assigned[a].is_some())
                {
                    // Every referenced axis is assigned: the abstraction
                    // is ambiguous only about error kinds — resolve by
                    // one concrete evaluation.
                    if p.eval(&self.scratch) == Ok(true) {
                        return Ok(true);
                    }
                } else if branch.is_none() {
                    branch = Some(pi);
                }
            }
        }
        match branch {
            Some(pi) => Err(pi),
            None => Ok(false),
        }
    }

    fn first_open_axis(&self, pi: usize) -> usize {
        self.pred_axes[pi]
            .iter()
            .copied()
            .find(|&a| self.assigned[a].is_none())
            .expect("branch predicate has an unassigned axis")
    }

    fn assign(&mut self, ai: usize, j: usize) {
        self.assigned[ai] = Some(j);
        let (name, vs) = &self.axes[ai];
        self.scratch.insert(name.clone(), vs[j].clone());
    }

    fn unassign(&mut self, ai: usize) {
        self.assigned[ai] = None;
        self.scratch.remove(&self.axes[ai].0);
    }

    /// Combinations (completions of the current node) on which at least
    /// one predicate fires.
    fn count_rec(&mut self) -> u64 {
        self.totals.search_nodes += 1;
        if self.totals.search_nodes > self.budget {
            self.overrun = true;
            return 0;
        }
        match self.classify() {
            Ok(true) => {
                self.totals.conflicts += 1;
                self.free_product()
            }
            Ok(false) => 0,
            Err(pi) => {
                let ai = self.first_open_axis(pi);
                let n = self.axes[ai].1.len();
                let mut sum = 0u64;
                for j in 0..n {
                    self.assign(ai, j);
                    sum += self.count_rec();
                    if self.overrun {
                        break;
                    }
                }
                self.unassign(ai);
                sum
            }
        }
    }

    /// Whether any completion avoids every predicate.
    fn survives_rec(&mut self) -> bool {
        self.totals.search_nodes += 1;
        if self.totals.search_nodes > self.budget {
            self.overrun = true;
            return false;
        }
        match self.classify() {
            Ok(true) => {
                self.totals.conflicts += 1;
                false
            }
            Ok(false) => true,
            Err(pi) => {
                let ai = self.first_open_axis(pi);
                let n = self.axes[ai].1.len();
                let mut found = false;
                for j in 0..n {
                    self.assign(ai, j);
                    found = self.survives_rec();
                    if found || self.overrun {
                        break;
                    }
                }
                self.unassign(ai);
                found
            }
        }
    }
}

/// `(firing, total)` over the joint enumeration, computed by
/// propagation-guided search: bit-identical to the exhaustive odometer,
/// without visiting decided subspaces. `None` when the joint count
/// overflows or the node budget is exhausted.
pub(crate) fn count_firing_exact(
    preds: &[(&str, &Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
    budget: u64,
) -> (Option<(usize, usize)>, SolveTotals) {
    let total = axes
        .iter()
        .try_fold(1u64, |acc, (_, vs)| acc.checked_mul(vs.len() as u64));
    let Some(total) = total else {
        return (None, SolveTotals::default());
    };
    if total == 0 {
        return (Some((0, 0)), SolveTotals::default());
    }
    if usize::try_from(total).is_err() {
        return (None, SolveTotals::default());
    }
    let mut ex = Exact::new(preds, axes, fixed, budget);
    let firing = ex.count_rec();
    if ex.overrun {
        (None, ex.totals)
    } else {
        (Some((firing as usize, total as usize)), ex.totals)
    }
}

/// Whether any joint combination survives every predicate — the exact
/// engine's analogue of the enumerated `survives` check. `None` when
/// the joint count overflows or the budget is exhausted.
pub(crate) fn survives_exact(
    preds: &[(&str, &Pred)],
    axes: &[(String, Vec<Value>)],
    fixed: &Bindings,
    budget: u64,
) -> (Option<bool>, SolveTotals) {
    let total = axes
        .iter()
        .try_fold(1u64, |acc, (_, vs)| acc.checked_mul(vs.len() as u64));
    if total.is_none() {
        return (None, SolveTotals::default());
    }
    if total == Some(0) {
        // No combinations at all: nothing survives.
        return (Some(false), SolveTotals::default());
    }
    let mut ex = Exact::new(preds, axes, fixed, budget);
    let ok = ex.survives_rec();
    if ex.overrun {
        (None, ex.totals)
    } else {
        (Some(ok), ex.totals)
    }
}

// ---------------------------------------------------------------------
// The incremental solver.
// ---------------------------------------------------------------------

/// One variable's current domain lattice value.
#[derive(Debug, Clone, PartialEq)]
enum Dom {
    /// A finite candidate list with a liveness mask.
    Finite { values: Vec<Value>, live: BitSet },
    /// Integers in `lo..=hi`.
    Int { lo: i64, hi: i64 },
    /// Reals in `[lo, hi]`.
    Real { lo: f64, hi: f64 },
    /// Decided (or region-fixed) to exactly this value.
    Fixed(Value),
    /// Open-ended: never pruned, never blamed.
    Open,
    /// No value left: a conflict was proven here.
    Empty,
}

impl Dom {
    fn of_domain(domain: &Domain) -> Dom {
        if let Some(values) = domain.enumerate() {
            let live = BitSet::full(values.len());
            return Dom::Finite { values, live };
        }
        match domain {
            Domain::IntRange { min, max } => {
                if max.checked_sub(*min).is_some_and(|s| (0..=super::domains::MAX_INT_RANGE_SPAN).contains(&s)) {
                    let values: Vec<Value> = (*min..=*max).map(Value::Int).collect();
                    let live = BitSet::full(values.len());
                    Dom::Finite { values, live }
                } else {
                    Dom::Int { lo: *min, hi: *max }
                }
            }
            Domain::RealRange { min, max } => Dom::Real { lo: *min, hi: *max },
            _ => Dom::Open,
        }
    }

    fn contains(&self, value: &Value) -> bool {
        match self {
            Dom::Fixed(v) => v.matches(value),
            Dom::Finite { values, live } => live.iter().any(|i| values[i].matches(value)),
            Dom::Int { lo, hi } => value
                .as_f64()
                .is_some_and(|x| x >= *lo as f64 && x <= *hi as f64),
            Dom::Real { lo, hi } => value.as_f64().is_some_and(|x| x >= *lo && x <= *hi),
            Dom::Open => true,
            Dom::Empty => false,
        }
    }

    fn view(&self) -> VarView<'_> {
        match self {
            Dom::Fixed(v) => VarView::Val(v),
            Dom::Finite { values, live } => VarView::Finite {
                values,
                live: Some(live),
            },
            Dom::Int { lo, hi } => VarView::Int(*lo, *hi),
            Dom::Real { lo, hi } => VarView::Real(*lo, *hi),
            Dom::Open => VarView::Open,
            Dom::Empty => VarView::Finite {
                values: &[],
                live: None,
            },
        }
    }
}

/// One watched constraint: an inconsistency/dominance predicate that
/// *eliminates* any combination it fires on.
#[derive(Debug, Clone)]
struct Con {
    name: String,
    pred: Pred,
    refs: Vec<usize>,
}

/// The immutable constraint network: variables, base domains, watched
/// constraints and the var → constraints watch lists.
#[derive(Debug, Clone)]
struct Net {
    names: Vec<String>,
    index: HashMap<String, usize>,
    base: Vec<Dom>,
    cons: Vec<Con>,
    watchers: Vec<Vec<usize>>,
}

struct DomView<'a> {
    net: &'a Net,
    doms: &'a [Dom],
}

impl Vars for DomView<'_> {
    fn view(&self, name: &str) -> VarView<'_> {
        match self.net.index.get(name) {
            Some(&i) => self.doms[i].view(),
            None => VarView::Missing,
        }
    }
}

/// A [`DomView`] with one variable overridden to a concrete candidate —
/// the probe used to decide whether that candidate is prunable.
struct OverrideView<'a> {
    inner: DomView<'a>,
    name: &'a str,
    val: &'a Value,
}

impl Vars for OverrideView<'_> {
    fn view(&self, name: &str) -> VarView<'_> {
        if name == self.name {
            VarView::Val(self.val)
        } else {
            self.inner.view(name)
        }
    }
}

/// An undoable domain write.
#[derive(Debug, Clone)]
struct Change {
    var: usize,
    old: Dom,
}

/// A raw (unexplained) conflict found during propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawConflict {
    /// The constraint fires on every completion of the current domains.
    Fires(usize),
    /// Revising the constraint left the variable without values.
    Emptied { var: usize, con: usize },
    /// A decision fell outside the variable's current domain.
    Incompatible { var: usize },
}

/// A proven contradiction with its "because" chain: the minimal set of
/// already-fixed decisions under which the conflict is inevitable.
#[derive(Debug, Clone, PartialEq)]
pub struct Conflict {
    /// The constraint that fires (or empties a domain), if any.
    pub constraint: Option<String>,
    /// The variable whose domain was emptied (or decided illegally).
    pub variable: Option<String>,
    /// The minimal fixed decisions proving the conflict, in name order.
    pub because: Vec<(String, Value)>,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.because.is_empty() {
            write!(f, "no prior decisions required")?;
        } else {
            write!(f, "because ")?;
            for (i, (name, value)) in self.because.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{name} = {value}")?;
            }
        }
        match (&self.constraint, &self.variable) {
            (Some(c), Some(v)) => write!(f, ": no value of {v} survives constraint {c}"),
            (Some(c), None) => write!(f, ": constraint {c} fires on every completion"),
            (None, Some(v)) => write!(f, ": the decision on {v} lies outside its domain"),
            (None, None) => write!(f, ": contradiction"),
        }
    }
}

/// The viable values the solver still admits for one property.
#[derive(Debug, Clone, PartialEq)]
pub enum Viability {
    /// A finite list of surviving candidates.
    Values(Vec<Value>),
    /// Any integer in the (shaved) range.
    IntRange(i64, i64),
    /// Any real in the range.
    RealRange(f64, f64),
    /// Open-ended: the solver cannot enumerate it.
    Open,
    /// Nothing survives.
    Empty,
}

/// Incremental propagation solver over one region of a design space.
///
/// Built once per session/region ([`Solver::for_space`] /
/// [`Solver::with_bindings`]); each [`decide`](Solver::decide) pushes a
/// trail level and re-propagates only from the changed variable, each
/// [`retract`](Solver::retract) pops the level in O(trailed changes) —
/// no full re-scan.
#[derive(Debug, Clone)]
pub struct Solver {
    net: Net,
    doms: Vec<Dom>,
    trail: Vec<Change>,
    levels: Vec<usize>,
    totals: SolveTotals,
    initial_conflict: Option<Conflict>,
}

impl Solver {
    /// Builds the network for the region at `focus` and runs the
    /// initial propagation fixpoint, parallelized across independent
    /// constraint components on [`foundation::par`].
    pub fn for_space(space: &DesignSpace, focus: CdoId) -> Solver {
        Solver::build(space, focus, None)
    }

    /// Like [`for_space`](Solver::for_space), but additionally narrows
    /// by the session's current `bindings` (in name order) before the
    /// initial fixpoint — the from-scratch equivalent of replaying
    /// every decision.
    pub fn with_bindings(space: &DesignSpace, focus: CdoId, bindings: &Bindings) -> Solver {
        Solver::build(space, focus, Some(bindings))
    }

    fn build(space: &DesignSpace, focus: CdoId, bindings: Option<&Bindings>) -> Solver {
        let mut names: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut base: Vec<Dom> = Vec::new();
        let mut add_var = |name: &str, dom: Dom, names: &mut Vec<String>, base: &mut Vec<Dom>| {
            if let Some(&i) = index.get(name) {
                return i;
            }
            let i = names.len();
            names.push(name.to_owned());
            index.insert(name.to_owned(), i);
            base.push(dom);
            i
        };
        // Every property visible from `focus` (inheritance chain plus
        // subtree), in deterministic scope order.
        for n in super::scope_nodes(space, focus) {
            for p in space.node(n).own_properties() {
                let dom = super::domain_at(space, focus, p.name())
                    .map(Dom::of_domain)
                    .unwrap_or(Dom::Open);
                add_var(p.name(), dom, &mut names, &mut base);
            }
        }
        // Watched constraints: every effective inconsistency/dominance
        // predicate. References to undeclared names (derived figures
        // bound mid-session) become open variables — never pruned.
        let mut cons: Vec<Con> = Vec::new();
        for (_, c) in space.effective_constraints(focus) {
            let Some(pred) = super::constraint_pred(c) else {
                continue;
            };
            let refs: Vec<usize> = pred
                .references()
                .into_iter()
                .map(|r| add_var(&r, Dom::Open, &mut names, &mut base))
                .collect();
            cons.push(Con {
                name: c.name().to_owned(),
                pred: pred.clone(),
                refs,
            });
        }
        let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (ci, con) in cons.iter().enumerate() {
            for &v in &con.refs {
                if !watchers[v].contains(&ci) {
                    watchers[v].push(ci);
                }
            }
        }
        let net = Net {
            names,
            index,
            base,
            cons,
            watchers,
        };
        let mut doms = net.base.clone();
        let mut totals = SolveTotals::default();
        let mut raw: Option<RawConflict> = None;

        // Level-0 narrowing: the region's inherited option bindings,
        // then the session bindings, in deterministic order.
        let narrow = |name: &str, value: &Value, doms: &mut Vec<Dom>| {
            let &v = net.index.get(name)?;
            if !doms[v].contains(value) {
                doms[v] = Dom::Empty;
                return Some(RawConflict::Incompatible { var: v });
            }
            doms[v] = Dom::Fixed(value.clone());
            None
        };
        for (name, value) in space.inherited_bindings(focus) {
            if raw.is_none() {
                raw = narrow(&name, &value, &mut doms);
            } else {
                narrow(&name, &value, &mut doms);
            }
        }
        if let Some(b) = bindings {
            for (name, value) in b.iter() {
                let c = narrow(name.as_str(), value, &mut doms);
                if raw.is_none() {
                    raw = c;
                }
            }
        }

        // Initial fixpoint, parallel across independent constraint
        // components (var-disjoint by construction, so the merge in
        // component order is deterministic).
        if raw.is_none() {
            raw = initial_fixpoint(&net, &mut doms, &mut totals);
        }

        let mut solver = Solver {
            net,
            doms,
            trail: Vec::new(),
            levels: Vec::new(),
            totals,
            initial_conflict: None,
        };
        solver.initial_conflict = raw.map(|r| solver.explain(r));
        solver
    }

    /// Fixes `name = value`, pushes a trail level and re-propagates
    /// incrementally from the changed variable. On conflict the level
    /// stays committed (mirroring session semantics, where the caller
    /// decides whether to retract) and the explained conflict is
    /// returned.
    pub fn decide(&mut self, name: &str, value: &Value) -> Option<Conflict> {
        self.levels.push(self.trail.len());
        let &v = self.net.index.get(name)?;
        let old = self.doms[v].clone();
        if !old.contains(value) {
            self.trail.push(Change { var: v, old });
            self.doms[v] = Dom::Empty;
            self.totals.conflicts += 1;
            return Some(self.explain(RawConflict::Incompatible { var: v }));
        }
        self.trail.push(Change { var: v, old });
        self.doms[v] = Dom::Fixed(value.clone());
        let seed: Vec<usize> = self.net.watchers[v].clone();
        let mut totals = SolveTotals::default();
        let raw = fixpoint(
            &self.net,
            &mut self.doms,
            &seed,
            Some(&mut self.trail),
            &mut totals,
        );
        self.totals.add(&totals);
        raw.map(|r| self.explain(r))
    }

    /// Pops the most recent decision level, undoing its trailed domain
    /// writes in reverse. Returns `false` when no level is left.
    pub fn retract(&mut self) -> bool {
        let Some(mark) = self.levels.pop() else {
            return false;
        };
        while self.trail.len() > mark {
            let Change { var, old } = self.trail.pop().expect("trail length checked");
            self.doms[var] = old;
        }
        true
    }

    /// The number of open decision levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> SolveTotals {
        self.totals
    }

    /// The conflict proven during construction, if the region (or the
    /// replayed bindings) is contradictory before any new decision.
    pub fn initial_conflict(&self) -> Option<&Conflict> {
        self.initial_conflict.as_ref()
    }

    /// The values the solver still admits for `name`. Unknown names are
    /// [`Viability::Open`] — the solver never claims knowledge it lacks.
    pub fn viable(&self, name: &str) -> Viability {
        let Some(&v) = self.net.index.get(name) else {
            return Viability::Open;
        };
        match &self.doms[v] {
            Dom::Fixed(val) => Viability::Values(vec![val.clone()]),
            Dom::Finite { values, live } => {
                if live.count() == 0 {
                    Viability::Empty
                } else {
                    Viability::Values(live.iter().map(|i| values[i].clone()).collect())
                }
            }
            Dom::Int { lo, hi } => Viability::IntRange(*lo, *hi),
            Dom::Real { lo, hi } => Viability::RealRange(*lo, *hi),
            Dom::Open => Viability::Open,
            Dom::Empty => Viability::Empty,
        }
    }

    /// Whether `value` is still admitted for `name` (`true` for open or
    /// unknown variables: propagation only ever *proves* inviability).
    pub fn is_viable(&self, name: &str, value: &Value) -> bool {
        match self.net.index.get(name) {
            Some(&v) => self.doms[v].contains(value),
            None => true,
        }
    }

    /// Greedy minimization of a conflict's "because" chain: every fixed
    /// decision among the firing constraint's references, minus any
    /// whose relaxation (back to its base domain) leaves the conflict
    /// intact.
    fn explain(&self, raw: RawConflict) -> Conflict {
        match raw {
            RawConflict::Incompatible { var } => Conflict {
                constraint: None,
                variable: Some(self.net.names[var].clone()),
                because: Vec::new(),
            },
            RawConflict::Fires(ci) => Conflict {
                constraint: Some(self.net.cons[ci].name.clone()),
                variable: None,
                because: self.minimize(ci, None),
            },
            RawConflict::Emptied { var, con } => Conflict {
                constraint: Some(self.net.cons[con].name.clone()),
                variable: Some(self.net.names[var].clone()),
                because: self.minimize(con, Some(var)),
            },
        }
    }

    /// The fixed references of `ci` that are jointly sufficient for the
    /// conflict: start from all of them, drop any that can be relaxed
    /// to its base domain with the conflict still provable by [`eval3`].
    fn minimize(&self, ci: usize, emptied: Option<usize>) -> Vec<(String, Value)> {
        let con = &self.net.cons[ci];
        let mut fixed_refs: Vec<usize> = con
            .refs
            .iter()
            .copied()
            .filter(|&v| Some(v) != emptied && matches!(self.doms[v], Dom::Fixed(_)))
            .collect();
        fixed_refs.sort_unstable();
        fixed_refs.dedup();
        let mut scratch = self.doms.clone();
        let still_conflicts = |doms: &[Dom], totals: &mut SolveTotals| -> bool {
            totals.propagations += 1;
            let view = DomView {
                net: &self.net,
                doms,
            };
            match emptied {
                None => eval3(&con.pred, &view) == T,
                Some(var) => {
                    // Every surviving candidate of `var` must still be
                    // forced to fire.
                    let name = &self.net.names[var];
                    match self.net.base[var].view() {
                        VarView::Finite { values, live } => {
                            let mut any = false;
                            for (i, val) in values.iter().enumerate() {
                                if let Some(l) = live {
                                    if !l.get(i) {
                                        continue;
                                    }
                                }
                                any = true;
                                let probe = OverrideView {
                                    inner: DomView {
                                        net: &self.net,
                                        doms,
                                    },
                                    name,
                                    val,
                                };
                                if eval3(&con.pred, &probe) != T {
                                    return false;
                                }
                            }
                            any
                        }
                        _ => false,
                    }
                }
            }
        };
        let mut totals = SolveTotals::default();
        if !still_conflicts(&scratch, &mut totals) {
            // The conflict is not re-provable from the constraint alone
            // (it needed a propagation chain): keep the full fixed set
            // as the honest, unminimized chain.
            return fixed_refs
                .into_iter()
                .filter_map(|v| match &self.doms[v] {
                    Dom::Fixed(val) => Some((self.net.names[v].clone(), val.clone())),
                    _ => None,
                })
                .collect();
        }
        let mut kept: Vec<usize> = Vec::new();
        for &v in &fixed_refs {
            let saved = scratch[v].clone();
            scratch[v] = self.net.base[v].clone();
            if !still_conflicts(&scratch, &mut totals) {
                // Needed: restore.
                scratch[v] = saved;
                kept.push(v);
            }
        }
        let mut out: Vec<(String, Value)> = kept
            .into_iter()
            .filter_map(|v| match &self.doms[v] {
                Dom::Fixed(val) => Some((self.net.names[v].clone(), val.clone())),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Runs one revision of constraint `ci`: proves a definite fire, or
/// prunes candidate values / shaves interval bounds whose assignment
/// would force the constraint to fire on every completion.
fn revise(
    net: &Net,
    doms: &mut [Dom],
    ci: usize,
    trail: &mut Option<&mut Vec<Change>>,
    totals: &mut SolveTotals,
) -> Result<Vec<usize>, RawConflict> {
    let con = &net.cons[ci];
    totals.propagations += 1;
    let s = {
        let view = DomView { net, doms };
        eval3(&con.pred, &view)
    };
    if s == T {
        totals.conflicts += 1;
        return Err(RawConflict::Fires(ci));
    }
    if s & T == 0 {
        // Can never fire: nothing to prune.
        return Ok(Vec::new());
    }
    let mut changed: Vec<usize> = Vec::new();
    for &v in &con.refs {
        let current = doms[v].clone();
        let name = &net.names[v];
        match current {
            Dom::Finite { values, live } => {
                let mut new_live = live.clone();
                let mut removed = false;
                for i in live.iter() {
                    totals.propagations += 1;
                    let probe = OverrideView {
                        inner: DomView { net, doms },
                        name,
                        val: &values[i],
                    };
                    if eval3(&con.pred, &probe) == T {
                        new_live.clear(i);
                        removed = true;
                    }
                }
                if !removed {
                    continue;
                }
                if let Some(t) = trail.as_deref_mut() {
                    t.push(Change {
                        var: v,
                        old: Dom::Finite {
                            values: values.clone(),
                            live,
                        },
                    });
                }
                if new_live.count() == 0 {
                    doms[v] = Dom::Empty;
                    totals.conflicts += 1;
                    return Err(RawConflict::Emptied { var: v, con: ci });
                }
                doms[v] = Dom::Finite {
                    values,
                    live: new_live,
                };
                changed.push(v);
            }
            Dom::Int { lo, hi } => {
                let (mut lo2, mut hi2) = (lo, hi);
                let mut probes = 0u32;
                while lo2 <= hi2 && probes < BOUND_PROBES {
                    totals.propagations += 1;
                    let val = Value::Int(lo2);
                    let probe = OverrideView {
                        inner: DomView { net, doms },
                        name,
                        val: &val,
                    };
                    if eval3(&con.pred, &probe) == T {
                        lo2 += 1;
                        probes += 1;
                    } else {
                        break;
                    }
                }
                probes = 0;
                while lo2 <= hi2 && probes < BOUND_PROBES {
                    totals.propagations += 1;
                    let val = Value::Int(hi2);
                    let probe = OverrideView {
                        inner: DomView { net, doms },
                        name,
                        val: &val,
                    };
                    if eval3(&con.pred, &probe) == T {
                        hi2 -= 1;
                        probes += 1;
                    } else {
                        break;
                    }
                }
                if (lo2, hi2) == (lo, hi) {
                    continue;
                }
                if let Some(t) = trail.as_deref_mut() {
                    t.push(Change {
                        var: v,
                        old: Dom::Int { lo, hi },
                    });
                }
                if lo2 > hi2 {
                    doms[v] = Dom::Empty;
                    totals.conflicts += 1;
                    return Err(RawConflict::Emptied { var: v, con: ci });
                }
                doms[v] = Dom::Int { lo: lo2, hi: hi2 };
                changed.push(v);
            }
            // Fixed values cannot be pruned (a forced fire surfaces as
            // `Fires` above); real intervals and open/empty domains are
            // left alone.
            Dom::Fixed(_) | Dom::Real { .. } | Dom::Open | Dom::Empty => {}
        }
    }
    Ok(changed)
}

/// Drains a propagation queue seeded with `seed` to fixpoint.
fn fixpoint(
    net: &Net,
    doms: &mut [Dom],
    seed: &[usize],
    mut trail: Option<&mut Vec<Change>>,
    totals: &mut SolveTotals,
) -> Option<RawConflict> {
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut in_queue = vec![false; net.cons.len()];
    for &ci in seed {
        if !in_queue[ci] {
            in_queue[ci] = true;
            queue.push_back(ci);
        }
    }
    while let Some(ci) = queue.pop_front() {
        in_queue[ci] = false;
        totals.fixpoint_iterations += 1;
        match revise(net, doms, ci, &mut trail, totals) {
            Err(raw) => return Some(raw),
            Ok(changed) => {
                for v in changed {
                    for &w in &net.watchers[v] {
                        if w != ci && !in_queue[w] {
                            in_queue[w] = true;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
    }
    None
}

/// The initial fixpoint, fanned out across independent constraint
/// components (connected via shared variables). Each component only
/// ever writes its own variables, so merging the narrowed domains in
/// component order is deterministic regardless of `DSE_THREADS`; the
/// first conflict in component order wins.
fn initial_fixpoint(
    net: &Net,
    doms: &mut Vec<Dom>,
    totals: &mut SolveTotals,
) -> Option<RawConflict> {
    if net.cons.is_empty() {
        return None;
    }
    // Union-find over variables, joined through each constraint's refs.
    let mut parent: Vec<usize> = (0..net.names.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for con in &net.cons {
        let mut it = con.refs.iter();
        if let Some(&first) = it.next() {
            let r = find(&mut parent, first);
            for &v in it {
                let s = find(&mut parent, v);
                parent[s] = r;
            }
        }
    }
    // Group constraints by component root, in first-seen order.
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    for (ci, con) in net.cons.iter().enumerate() {
        match con.refs.first() {
            Some(&v) => {
                let root = find(&mut parent, v);
                let slot = *comp_of_root.entry(root).or_insert_with(|| {
                    components.push(Vec::new());
                    components.len() - 1
                });
                components[slot].push(ci);
            }
            None => {
                // Reference-free predicate: evaluate in place.
                totals.propagations += 1;
                let view = DomView { net, doms };
                if eval3(&con.pred, &view) == T {
                    totals.conflicts += 1;
                    return Some(RawConflict::Fires(ci));
                }
            }
        }
    }
    if components.is_empty() {
        return None;
    }
    let snapshot: &[Dom] = doms;
    type ComponentResult = (Vec<(usize, Dom)>, SolveTotals, Option<RawConflict>);
    let results: Vec<ComponentResult> =
        foundation::par::par_map(components, |cons| {
            let mut local: Vec<Dom> = snapshot.to_vec();
            let mut local_totals = SolveTotals::default();
            let raw = fixpoint(net, &mut local, &cons, None, &mut local_totals);
            let changed: Vec<(usize, Dom)> = local
                .into_iter()
                .enumerate()
                .filter(|(v, d)| snapshot[*v] != *d)
                .collect();
            (changed, local_totals, raw)
        });
    let mut first: Option<RawConflict> = None;
    for (changed, local_totals, raw) in results {
        for (v, d) in changed {
            doms[v] = d;
        }
        totals.add(&local_totals);
        if first.is_none() {
            first = raw;
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConsistencyConstraint, Relation};
    use crate::expr::Expr;
    use crate::hierarchy::DesignSpace;
    use crate::property::Property;
    use foundation::check::{self, Gen};

    // -- exact engine vs brute-force enumeration ----------------------

    fn brute_force(
        preds: &[(&str, &Pred)],
        axes: &[(String, Vec<Value>)],
        fixed: &Bindings,
    ) -> (usize, usize) {
        fn rec(
            preds: &[(&str, &Pred)],
            axes: &[(String, Vec<Value>)],
            b: &mut Bindings,
            i: usize,
            firing: &mut usize,
            total: &mut usize,
        ) {
            if i == axes.len() {
                *total += 1;
                if preds.iter().any(|(_, p)| p.eval(b) == Ok(true)) {
                    *firing += 1;
                }
                return;
            }
            let (name, vs) = &axes[i];
            for v in vs {
                b.insert(name.clone(), v.clone());
                rec(preds, axes, b, i + 1, firing, total);
            }
            b.remove(name);
        }
        let (mut firing, mut total) = (0, 0);
        let mut b = fixed.clone();
        rec(preds, axes, &mut b, 0, &mut firing, &mut total);
        (firing, total)
    }

    fn arb_expr(g: &mut Gen, vars: &[&str], depth: usize) -> Expr {
        if depth == 0 || g.usize_in(0, 2) == 0 {
            return match g.usize_in(0, 2) {
                0 => Expr::constant(g.i64_in(-3, 3)),
                1 => Expr::prop(vars[g.usize_in(0, vars.len() - 1)]),
                _ => Expr::constant(g.i64_in(0, 2)),
            };
        }
        let a = arb_expr(g, vars, depth - 1);
        let b = arb_expr(g, vars, depth - 1);
        match g.usize_in(0, 4) {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.div(b),
            _ => a.pow(b),
        }
    }

    fn arb_pred(g: &mut Gen, vars: &[&str], depth: usize) -> Pred {
        if depth == 0 || g.usize_in(0, 2) == 0 {
            return match g.usize_in(0, 3) {
                0 => Pred::is(vars[g.usize_in(0, vars.len() - 1)], g.i64_in(0, 3)),
                1 => Pred::is_not(vars[g.usize_in(0, vars.len() - 1)], g.i64_in(0, 3)),
                _ => {
                    let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
                    Pred::cmp(
                        ops[g.usize_in(0, 5)],
                        arb_expr(g, vars, 1),
                        arb_expr(g, vars, 1),
                    )
                }
            };
        }
        match g.usize_in(0, 2) {
            0 => Pred::all((0..g.usize_in(1, 3)).map(|_| arb_pred(g, vars, depth - 1))),
            1 => Pred::any((0..g.usize_in(1, 3)).map(|_| arb_pred(g, vars, depth - 1))),
            _ => Pred::Not(Box::new(arb_pred(g, vars, depth - 1))),
        }
    }

    #[test]
    fn exact_counts_match_brute_force_enumeration() {
        check::run("exact_counts_match_brute_force_enumeration", |g| {
            // "M" is deliberately never an axis: referencing it tests the
            // unbound-error path on both engines.
            let vars = ["V0", "V1", "V2", "M"];
            let n_axes = g.usize_in(1, 3);
            let axes: Vec<(String, Vec<Value>)> = (0..n_axes)
                .map(|i| {
                    let len = g.usize_in(1, 3);
                    (
                        format!("V{i}"),
                        (0..len as i64).map(Value::Int).collect(),
                    )
                })
                .collect();
            let p1 = arb_pred(g, &vars, 2);
            let p2 = arb_pred(g, &vars, 2);
            let preds: Vec<(&str, &Pred)> = vec![("C1", &p1), ("C2", &p2)];
            let mut fixed = Bindings::new();
            if g.usize_in(0, 1) == 1 {
                fixed.insert("F", Value::Int(g.i64_in(0, 3)));
            }
            let (firing, total) = brute_force(&preds, &axes, &fixed);
            let (exact, _) = count_firing_exact(&preds, &axes, &fixed, SEARCH_NODE_BUDGET);
            assert_eq!(exact, Some((firing, total)), "preds {p1} / {p2}");
            let (sat, _) = survives_exact(&preds, &axes, &fixed, SEARCH_NODE_BUDGET);
            assert_eq!(sat, Some(firing < total), "preds {p1} / {p2}");
        });
    }

    #[test]
    fn exact_engine_respects_its_budget() {
        // 2^30 combinations of a subset-sum predicate: interval
        // abstraction cannot decide it high up, so the search must
        // branch combinatorially — the budget must trip, not hang.
        let axes: Vec<(String, Vec<Value>)> = (0..30)
            .map(|i| (format!("B{i}"), vec![Value::Int(0), Value::Int(1)]))
            .collect();
        let sum = (1..30).fold(Expr::prop("B0"), |acc, i| acc.add(Expr::prop(format!("B{i}"))));
        let pred = Pred::cmp(CmpOp::Eq, sum, Expr::constant(15));
        let preds: Vec<(&str, &Pred)> = vec![("A", &pred)];
        let fixed = Bindings::new();
        let (count, totals) = count_firing_exact(&preds, &axes, &fixed, 1_000);
        assert_eq!(count, None);
        assert!(totals.search_nodes >= 1_000);
    }

    #[test]
    fn exact_engine_prunes_decided_subspaces() {
        // One pred fixed false by a fixed binding: zero branching needed.
        let axes: Vec<(String, Vec<Value>)> = (0..20)
            .map(|i| {
                (
                    format!("B{i}"),
                    vec![Value::Flag(false), Value::Flag(true)],
                )
            })
            .collect();
        let pred = Pred::all([Pred::is("Gate", "open"), Pred::is("B0", true)]);
        let preds: Vec<(&str, &Pred)> = vec![("C", &pred)];
        let mut fixed = Bindings::new();
        fixed.insert("Gate", Value::from("shut"));
        let (count, totals) = count_firing_exact(&preds, &axes, &fixed, SEARCH_NODE_BUDGET);
        assert_eq!(count, Some((0, 1 << 20)));
        assert!(totals.search_nodes <= 2, "{totals:?}");
    }

    // -- the incremental solver ---------------------------------------

    fn cc(name: &str, pred: Pred) -> ConsistencyConstraint {
        let refs = pred.references();
        ConsistencyConstraint::new(name, "", refs, [], Relation::InconsistentOptions(pred))
    }

    fn style_mode_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Mode", Domain::options(["x", "y"]), ""),
        )
        .unwrap();
        (s, root)
    }

    #[test]
    fn decide_propagates_and_retract_restores() {
        let (mut s, root) = style_mode_space();
        s.add_constraint(
            root,
            cc("CC1", Pred::all([Pred::is("Style", "A"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        let mut solver = Solver::for_space(&s, root);
        assert!(solver.initial_conflict().is_none());
        assert_eq!(
            solver.viable("Mode"),
            Viability::Values(vec![Value::from("x"), Value::from("y")])
        );
        assert!(solver.decide("Style", &Value::from("A")).is_none());
        assert_eq!(solver.depth(), 1);
        // Propagation pruned Mode = x without a second decision.
        assert_eq!(solver.viable("Mode"), Viability::Values(vec![Value::from("y")]));
        assert!(!solver.is_viable("Mode", &Value::from("x")));
        assert!(solver.retract());
        assert_eq!(solver.depth(), 0);
        assert_eq!(
            solver.viable("Mode"),
            Viability::Values(vec![Value::from("x"), Value::from("y")])
        );
        assert!(!solver.retract(), "no level left to pop");
    }

    #[test]
    fn conflict_carries_a_minimal_because_chain() {
        let (mut s, root) = style_mode_space();
        s.add_constraint(
            root,
            cc("CC1", Pred::all([Pred::is("Style", "A"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        s.add_constraint(
            root,
            cc("CC2", Pred::all([Pred::is("Style", "A"), Pred::is("Mode", "y")])),
        )
        .unwrap();
        let mut solver = Solver::for_space(&s, root);
        let conflict = solver
            .decide("Style", &Value::from("A"))
            .expect("Style = A leaves no Mode value");
        assert_eq!(conflict.because, vec![("Style".to_owned(), Value::from("A"))]);
        assert!(conflict.constraint.is_some());
        let shown = conflict.to_string();
        assert!(shown.contains("because Style = A"), "{shown}");
        // Committed-on-conflict: the caller decides to retract.
        assert_eq!(solver.depth(), 1);
        assert!(solver.retract());
        assert_eq!(
            solver.viable("Mode"),
            Viability::Values(vec![Value::from("x"), Value::from("y")])
        );
    }

    #[test]
    fn initial_conflict_on_a_contradictory_region() {
        let (mut s, root) = style_mode_space();
        s.add_constraint(
            root,
            cc(
                "CCdead",
                Pred::any([Pred::is("Style", "A"), Pred::is_not("Style", "A")]),
            ),
        )
        .unwrap();
        let solver = Solver::for_space(&s, root);
        let conflict = solver.initial_conflict().expect("region is contradictory");
        assert_eq!(conflict.constraint.as_deref(), Some("CCdead"));
        assert!(conflict.because.is_empty());
        assert!(conflict.to_string().contains("no prior decisions required"));
    }

    #[test]
    fn bounds_propagation_shaves_integer_intervals() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        // Span 95 > MAX_INT_RANGE_SPAN: stays an interval, not a bitset.
        s.add_property(
            root,
            Property::requirement("Width", Domain::int_range(65, 160), None, ""),
        )
        .unwrap();
        s.add_constraint(
            root,
            cc(
                "CCwide",
                Pred::all([
                    Pred::is("Style", "A"),
                    Pred::cmp(CmpOp::Gt, Expr::prop("Width"), Expr::constant(140)),
                ]),
            ),
        )
        .unwrap();
        let mut solver = Solver::for_space(&s, root);
        assert_eq!(solver.viable("Width"), Viability::IntRange(65, 160));
        assert!(solver.decide("Style", &Value::from("A")).is_none());
        assert_eq!(solver.viable("Width"), Viability::IntRange(65, 140));
        assert!(solver.retract());
        assert_eq!(solver.viable("Width"), Viability::IntRange(65, 160));
    }

    #[test]
    fn deciding_outside_the_domain_conflicts() {
        let (s, root) = style_mode_space();
        let mut solver = Solver::for_space(&s, root);
        let conflict = solver
            .decide("Style", &Value::from("C"))
            .expect("C is not an option");
        assert_eq!(conflict.variable.as_deref(), Some("Style"));
        assert_eq!(solver.viable("Style"), Viability::Empty);
        assert!(solver.retract());
        assert_eq!(
            solver.viable("Style"),
            Viability::Values(vec![Value::from("A"), Value::from("B")])
        );
    }

    #[test]
    fn with_bindings_replays_session_state() {
        let (mut s, root) = style_mode_space();
        s.add_constraint(
            root,
            cc("CC1", Pred::all([Pred::is("Style", "A"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        let mut b = Bindings::new();
        b.insert("Style", Value::from("A"));
        let solver = Solver::with_bindings(&s, root, &b);
        assert!(solver.initial_conflict().is_none());
        assert_eq!(solver.viable("Mode"), Viability::Values(vec![Value::from("y")]));
        assert_eq!(solver.viable("Style"), Viability::Values(vec![Value::from("A")]));
    }

    #[test]
    fn unknown_and_open_names_stay_viable() {
        let (s, root) = style_mode_space();
        let solver = Solver::for_space(&s, root);
        assert_eq!(solver.viable("NoSuchProp"), Viability::Open);
        assert!(solver.is_viable("NoSuchProp", &Value::Int(1)));
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::full(70);
        assert_eq!(b.count(), 70);
        assert!(b.get(69));
        assert!(b.clear(69));
        assert!(!b.clear(69), "already cleared");
        assert!(!b.get(69));
        assert_eq!(b.count(), 69);
        assert_eq!(BitSet::full(0).count(), 0);
        assert_eq!(b.iter().count(), 69);
    }

    #[test]
    fn eval3_over_approximates_concrete_outcomes() {
        check::run("eval3_over_approximates_concrete_outcomes", |g| {
            let vars = ["V0", "V1", "M"];
            let pred = arb_pred(g, &vars, 2);
            let mut b = Bindings::new();
            b.insert("V0", Value::Int(g.i64_in(0, 3)));
            b.insert("V1", Value::Int(g.i64_in(0, 3)));
            struct BoundVars<'a>(&'a Bindings);
            impl Vars for BoundVars<'_> {
                fn view(&self, name: &str) -> VarView<'_> {
                    match self.0.get(name) {
                        Some(v) => VarView::Val(v),
                        None => VarView::Missing,
                    }
                }
            }
            let s = eval3(&pred, &BoundVars(&b));
            let actual = match pred.eval(&b) {
                Ok(true) => T,
                Ok(false) => F,
                Err(_) => E,
            };
            assert_eq!(
                s & actual,
                actual,
                "eval3 {s:03b} must contain concrete outcome {actual:03b} for {pred}"
            );
        });
    }
}
