//! Benchmarks of the resilience layer: supervision overhead vs bare
//! registry calls, the fallback ladder under injected faults, and
//! journal recovery.

fn main() {
    bench::suites::robust().finish();
}
