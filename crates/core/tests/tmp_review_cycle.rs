use dse::analyze::{analyze, DerivationGraph};
use dse::constraint::{ConsistencyConstraint, Fidelity, Relation};
use dse::diag::DiagCode;
use dse::expr::Expr;
use dse::hierarchy::DesignSpace;

fn quant(name: &str, indep: &str, target: &str) -> ConsistencyConstraint {
    ConsistencyConstraint::new(
        name,
        "",
        [indep.to_owned()],
        [target.to_owned()],
        Relation::Quantitative {
            target: target.to_owned(),
            formula: Expr::prop(indep),
            fidelity: Fidelity::Exact,
        },
    )
}

#[test]
fn cycle_with_early_sorting_downstream_sink_is_detected() {
    // Cycle X -> Y -> X, plus Y -> A where "A" sorts before "X"/"Y".
    let cs = [quant("C1", "X", "Y"), quant("C2", "Y", "X"), quant("C3", "Y", "A")];
    let g = DerivationGraph::from_constraints(cs.iter());
    assert!(g.topo_order().is_err(), "graph really is cyclic");
    assert!(
        g.find_cycle().is_some(),
        "find_cycle misses the cycle when a downstream sink sorts first"
    );

    let mut s = DesignSpace::new("t");
    let root = s.add_root("Root", "");
    for c in cs {
        s.add_constraint_unchecked(root, c);
    }
    let r = analyze(&s);
    assert!(
        r.diagnostics().iter().any(|d| d.code == DiagCode::DerivationCycle),
        "analyze() reported no DerivationCycle: {r}"
    );
}
