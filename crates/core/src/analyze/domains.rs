//! Domain (abstract-interval) checks — DSL005 / DSL006 / DSL008 / DSL009.
//!
//! These passes enumerate the finitely enumerable domains a predicate
//! touches and evaluate the predicate over every combination. A
//! constraint that fires on *every* combination is a contradiction; a
//! design-issue option for which *no* combination survives is dead; a
//! spawned child CDO whose inherited option bindings leave no surviving
//! combination is unreachable.
//!
//! Soundness: a constraint is only analyzed when every property it
//! references is either fixed by the region's inherited bindings or has
//! an enumerable domain (`Enumeration`, `Flag`, `PowersOfTwo`, or an
//! integer range no wider than [`MAX_INT_RANGE_SPAN`]), and the joint
//! combination count stays below [`MAX_COMBINATIONS`]. Anything else is
//! skipped, never guessed at — so these checks produce no false errors
//! on spaces with open-ended requirement domains.

use crate::constraint::Relation;
use crate::diag::{DiagCode, Diagnostic, Report, Span};
use crate::expr::{Bindings, Pred};
use crate::hierarchy::{CdoId, DesignSpace};
use crate::property::PropertyKind;
use crate::value::{Domain, Value};

/// Combination-count cap for exhaustive predicate enumeration.
pub(crate) const MAX_COMBINATIONS: usize = 4096;

/// Widest integer range the analyzer will enumerate.
pub(crate) const MAX_INT_RANGE_SPAN: i64 = 64;

/// The finitely enumerable values of a domain, from the analyzer's point
/// of view (adds small integer ranges to `Domain::enumerate`).
fn enumerable(domain: &Domain) -> Option<Vec<Value>> {
    if let Some(vs) = domain.enumerate() {
        return Some(vs);
    }
    if let Domain::IntRange { min, max } = domain {
        let span = max.checked_sub(*min)?;
        if (0..=MAX_INT_RANGE_SPAN).contains(&span) {
            return Some((*min..=*max).map(Value::Int).collect());
        }
    }
    None
}

/// An odometer over `axes`, yielding each joint assignment merged over
/// `fixed`.
struct Combos<'a> {
    axes: &'a [(String, Vec<Value>)],
    idx: Vec<usize>,
    fixed: &'a Bindings,
    done: bool,
}

impl<'a> Combos<'a> {
    fn new(axes: &'a [(String, Vec<Value>)], fixed: &'a Bindings) -> Combos<'a> {
        Combos {
            axes,
            idx: vec![0; axes.len()],
            fixed,
            done: false,
        }
    }

    fn total(axes: &[(String, Vec<Value>)]) -> Option<usize> {
        axes.iter()
            .try_fold(1usize, |acc, (_, vs)| acc.checked_mul(vs.len()))
    }
}

impl Iterator for Combos<'_> {
    type Item = Bindings;

    fn next(&mut self) -> Option<Bindings> {
        if self.done {
            return None;
        }
        let mut b = self.fixed.clone();
        for (i, (name, vs)) in self.axes.iter().enumerate() {
            b.insert(name.clone(), vs[self.idx[i]].clone());
        }
        // Advance the odometer.
        self.done = true;
        for (i, (_, vs)) in self.axes.iter().enumerate() {
            self.idx[i] += 1;
            if self.idx[i] < vs.len() {
                self.done = false;
                break;
            }
            self.idx[i] = 0;
        }
        Some(b)
    }
}

/// Builds the enumeration axes for `refs` as seen from `anchor`, minus
/// the names already fixed. Returns `None` when any unfixed reference has
/// an unknown or non-enumerable domain, or the joint count exceeds the
/// cap — the caller must skip the check.
fn axes_for(
    space: &DesignSpace,
    anchor: CdoId,
    refs: impl IntoIterator<Item = String>,
    fixed: &Bindings,
) -> Option<Vec<(String, Vec<Value>)>> {
    let mut axes: Vec<(String, Vec<Value>)> = Vec::new();
    for r in refs {
        if fixed.contains_key(&r) || axes.iter().any(|(n, _)| *n == r) {
            continue;
        }
        let domain = super::domain_at(space, anchor, &r)?;
        axes.push((r, enumerable(domain)?));
    }
    if Combos::total(&axes)? > MAX_COMBINATIONS {
        return None;
    }
    Some(axes)
}

/// The region bindings at `id`: every `(issue, option)` accumulated along
/// the spawned-by chain.
fn region_bindings(space: &DesignSpace, id: CdoId) -> Bindings {
    space.inherited_bindings(id).into_iter().collect()
}

/// Whether any constraint in `preds` fires (eliminates) under `b`.
fn eliminated(preds: &[(&str, &Pred)], b: &Bindings) -> bool {
    preds.iter().any(|(_, p)| p.eval(b) == Ok(true))
}

pub(crate) fn pass(space: &DesignSpace, report: &mut Report) {
    contradictions_and_hints(space, report);
    dead_options(space, report);
    unreachable_children(space, report);
}

// ---------------------------------------------------------------------
// DSL005 (contradiction) and DSL009 (dominance pre-pass hint).
// ---------------------------------------------------------------------

fn contradictions_and_hints(space: &DesignSpace, report: &mut Report) {
    for (id, node) in space.iter() {
        let fixed = region_bindings(space, id);
        for c in node.own_constraints() {
            let Some(pred) = super::constraint_pred(c) else {
                continue;
            };
            let Some(axes) = axes_for(space, id, pred.references(), &fixed) else {
                continue;
            };
            let mut firing = 0usize;
            let mut total = 0usize;
            for b in Combos::new(&axes, &fixed) {
                total += 1;
                if pred.eval(&b) == Ok(true) {
                    firing += 1;
                }
            }
            if total == 0 {
                continue;
            }
            let span = Span::at(space.path_string(id)).constraint(c.name());
            if firing == total {
                report.push(Diagnostic::new(
                    DiagCode::Contradiction,
                    span,
                    format!(
                        "every one of the {total} combinations of its enumerable options violates this constraint"
                    ),
                ));
            } else if firing > 0 && matches!(c.relation(), Relation::Dominance(_)) {
                report.push(Diagnostic::new(
                    DiagCode::DominanceHint,
                    span,
                    format!(
                        "{firing} of {total} option combinations are statically dominated and can be pre-eliminated"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// DSL006: dead design-issue options.
// ---------------------------------------------------------------------

fn dead_options(space: &DesignSpace, report: &mut Report) {
    for (id, node) in space.iter() {
        let fixed = region_bindings(space, id);
        for prop in node.own_properties() {
            if !matches!(
                prop.kind(),
                PropertyKind::DesignIssue | PropertyKind::GeneralizedIssue
            ) {
                continue;
            }
            let Some(options) = enumerable(prop.domain()) else {
                continue;
            };
            // Constraints that can eliminate combinations involving this
            // issue: every pred-relation constraint effective at `id`
            // that references the issue and whose other references are
            // all enumerable or fixed.
            let effective = space.effective_constraints(id);
            let applicable: Vec<(&str, &Pred)> = effective
                .iter()
                .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p)))
                .filter(|(_, p)| p.references().iter().any(|r| r == prop.name()))
                .collect();
            if applicable.is_empty() {
                continue;
            }
            let joint_refs: Vec<String> = applicable
                .iter()
                .flat_map(|(_, p)| p.references())
                .filter(|r| r != prop.name())
                .collect();
            let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
                continue;
            };
            for option in &options {
                let mut fixed_opt = fixed.clone();
                fixed_opt.insert(prop.name().to_owned(), option.clone());
                let survives = Combos::new(&axes, &fixed_opt).any(|b| !eliminated(&applicable, &b));
                if !survives {
                    let names: Vec<&str> = applicable.iter().map(|(n, _)| *n).collect();
                    report.push(Diagnostic::new(
                        DiagCode::DeadOption,
                        Span::at(space.path_string(id)).property(prop.name()),
                        format!(
                            "option {option} of {:?} is dead: every combination is eliminated (constraints {})",
                            prop.name(),
                            names.join(", ")
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// DSL008: unreachable spawned children (option statically eliminated).
// ---------------------------------------------------------------------

fn unreachable_children(space: &DesignSpace, report: &mut Report) {
    for (id, node) in space.iter() {
        let Some((issue, option)) = node.spawned_by() else {
            continue;
        };
        let fixed = region_bindings(space, id);
        let effective = space.effective_constraints(id);
        // Retain every pred constraint whose references the region can
        // enumerate; constraints touching open domains are dropped
        // (fewer eliminations can only under-report unreachability).
        let preds: Vec<(&str, &Pred)> = effective
            .iter()
            .filter_map(|(_, c)| super::constraint_pred(c).map(|p| (c.name(), p)))
            .filter(|(_, p)| {
                p.references().iter().all(|r| {
                    fixed.contains_key(r)
                        || super::domain_at(space, id, r)
                            .map(|d| enumerable(d).is_some())
                            .unwrap_or(false)
                })
            })
            .collect();
        if preds.is_empty() {
            continue;
        }
        let joint_refs: Vec<String> = preds.iter().flat_map(|(_, p)| p.references()).collect();
        let Some(axes) = axes_for(space, id, joint_refs, &fixed) else {
            continue;
        };
        let survives = Combos::new(&axes, &fixed).any(|b| !eliminated(&preds, &b));
        if !survives {
            let names: Vec<&str> = preds.iter().map(|(n, _)| *n).collect();
            report.push(Diagnostic::new(
                DiagCode::UnreachableChild,
                Span::at(space.path_string(id)).property(issue),
                format!(
                    "unreachable: spawning option {issue} = {option} is statically eliminated (constraints {})",
                    names.join(", ")
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::constraint::ConsistencyConstraint;
    use crate::property::Property;

    fn issue_space() -> (DesignSpace, CdoId) {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Mode", Domain::options(["x", "y"]), ""),
        )
        .unwrap();
        (s, root)
    }

    fn cc(name: &str, pred: Pred) -> ConsistencyConstraint {
        let refs = pred.references();
        ConsistencyConstraint::new(name, "", refs, [], Relation::InconsistentOptions(pred))
    }

    #[test]
    fn contradiction_when_every_combination_fires() {
        let (mut s, root) = issue_space();
        s.add_constraint(
            root,
            cc(
                "CCdead",
                Pred::any([Pred::is("Style", "A"), Pred::is_not("Style", "A")]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r
            .errors()
            .any(|d| d.code == DiagCode::Contradiction && d.span.constraint.as_deref() == Some("CCdead")));
    }

    #[test]
    fn near_miss_partial_elimination_is_not_a_contradiction() {
        let (mut s, root) = issue_space();
        s.add_constraint(root, cc("CCok", Pred::is("Style", "A")))
            .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::Contradiction));
    }

    #[test]
    fn dead_option_when_all_combinations_eliminate_it() {
        let (mut s, root) = issue_space();
        // Style = B is inconsistent with both Mode options → B is dead.
        s.add_constraint(
            root,
            cc(
                "CCb",
                Pred::all([Pred::is("Style", "B"), Pred::any([
                    Pred::is("Mode", "x"),
                    Pred::is("Mode", "y"),
                ])]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        let dead: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::DeadOption)
            .collect();
        assert_eq!(dead.len(), 1, "{r}");
        assert!(dead[0].message.contains("option B"));
    }

    #[test]
    fn near_miss_option_with_an_escape_is_alive() {
        let (mut s, root) = issue_space();
        // Style = B only clashes with Mode = x; Mode = y rescues it.
        s.add_constraint(
            root,
            cc("CCb", Pred::all([Pred::is("Style", "B"), Pred::is("Mode", "x")])),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(!r.diagnostics().iter().any(|d| d.code == DiagCode::DeadOption), "{r}");
    }

    #[test]
    fn unreachable_child_of_an_eliminated_option() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::generalized_issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        s.specialize(root, "Style").unwrap();
        s.add_constraint(root, cc("CCkill", Pred::is("Style", "B"))).unwrap();
        let r = analyze(&s);
        let hit: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::UnreachableChild)
            .collect();
        assert_eq!(hit.len(), 1, "{r}");
        assert!(hit[0].span.path.ends_with(".B"));
    }

    #[test]
    fn open_domains_are_skipped_not_guessed() {
        let mut s = DesignSpace::new("t");
        let root = s.add_root("Root", "");
        s.add_property(
            root,
            Property::requirement("EOL", Domain::int_range(8, 4096), None, ""),
        )
        .unwrap();
        s.add_property(
            root,
            Property::issue("Style", Domain::options(["A", "B"]), ""),
        )
        .unwrap();
        // References a 4089-value range: the analyzer must skip, not err.
        s.add_constraint(
            root,
            cc(
                "CCwide",
                Pred::all([
                    Pred::is("Style", "A"),
                    Pred::cmp(
                        crate::expr::CmpOp::Ge,
                        crate::expr::Expr::prop("EOL"),
                        crate::expr::Expr::constant(0),
                    ),
                ]),
            ),
        )
        .unwrap();
        let r = analyze(&s);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn small_int_ranges_are_enumerated() {
        assert_eq!(
            enumerable(&Domain::int_range(1, 3)),
            Some(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(enumerable(&Domain::int_range(0, MAX_INT_RANGE_SPAN + 1)), None);
        assert_eq!(enumerable(&Domain::real_up_to(5.0)), None);
        assert_eq!(enumerable(&Domain::int_range(i64::MIN, i64::MAX)), None);
    }

    #[test]
    fn combination_cap_bounds_the_search() {
        let axes: Vec<(String, Vec<Value>)> = (0..4)
            .map(|i| {
                (
                    format!("p{i}"),
                    (0..9).map(Value::Int).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(Combos::total(&axes), Some(6561));
        let fixed = Bindings::new();
        assert_eq!(Combos::new(&axes, &fixed).count(), 6561);
    }
}
