//! Probabilistic primality testing and prime generation.
//!
//! Cryptography applications guarantee an odd (indeed prime) modulus — the
//! `Modulo is Odd = Guaranteed` requirement (Req4) of the paper's case
//! study. The RSA-style demo in the `coproc` crate generates its moduli
//! here.

use foundation::rng::Rng;

use crate::{uniform_below, UBig};

/// Miller–Rabin primality test with `rounds` random bases.
///
/// Returns `false` for 0 and 1, `true` for 2 and 3, and a probabilistic
/// verdict (error probability ≤ 4^-rounds) for larger values.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &UBig, rounds: u32, rng: &mut R) -> bool {
    let two = UBig::from(2u64);
    let three = UBig::from(3u64);
    if *n < two {
        return false;
    }
    if *n == two || *n == three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    // Quick trial division by small primes.
    for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let pb = UBig::from(p);
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }

    // n - 1 = d · 2^s with d odd.
    let n_minus_1 = n.checked_sub(&UBig::one()).expect("n >= 2");
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);

    'witness: for _ in 0..rounds {
        // Base in 2..n-1.
        let span = n_minus_1.checked_sub(&two).expect("n > 3");
        let a = &uniform_below(&span, rng) + &two;
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn trailing_zeros(n: &UBig) -> u32 {
    debug_assert!(!n.is_zero());
    let mut i = 0;
    while !n.bit(i) {
        i += 1;
    }
    i
}

/// Generates a random odd integer with exactly `bits` bits (top bit set).
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_odd<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> UBig {
    assert!(bits >= 2, "need at least 2 bits for an odd value");
    let mut v = uniform_below(&UBig::power_of_two(bits), rng);
    v.set_bit(bits - 1, true);
    v.set_bit(0, true);
    v
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn random_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> UBig {
    loop {
        let candidate = random_odd(bits, rng);
        if is_probable_prime(&candidate, 16, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::{SeedableRng, StdRng};

    #[test]
    fn classifies_small_numbers() {
        let mut rng = StdRng::seed_from_u64(21);
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 1000003];
        let composites = [0u64, 1, 4, 9, 15, 91, 341, 561, 1000001];
        for p in primes {
            assert!(
                is_probable_prime(&UBig::from(p), 16, &mut rng),
                "{p} is prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&UBig::from(c), 16, &mut rng),
                "{c} is composite"
            );
        }
    }

    #[test]
    fn detects_carmichael_numbers() {
        // 561, 1105, 1729 fool Fermat but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(22);
        for c in [561u64, 1105, 1729, 2465, 2821] {
            assert!(!is_probable_prime(&UBig::from(c), 16, &mut rng));
        }
    }

    #[test]
    fn random_prime_has_requested_size_and_is_odd() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = random_prime(96, &mut rng);
        assert_eq!(p.bit_len(), 96);
        assert!(p.is_odd());
        assert!(is_probable_prime(&p, 16, &mut rng));
    }

    #[test]
    fn random_odd_shape() {
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..20 {
            let v = random_odd(64, &mut rng);
            assert_eq!(v.bit_len(), 64);
            assert!(v.is_odd());
        }
    }
}
