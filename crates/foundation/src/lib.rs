//! The hermetic substrate every other crate in the workspace stands on.
//!
//! The build environment is fully offline, so nothing here (or anywhere
//! else in the workspace) may depend on crates.io. This crate supplies,
//! from `std` alone, the four facilities the reproduction previously
//! pulled from external crates:
//!
//! * [`json`] — a spec-compliant JSON value type, parser and serializer,
//!   plus the [`json::ToJson`]/[`json::FromJson`] traits and the
//!   [`impl_json_struct!`]/[`impl_json_enum!`]/[`impl_json_newtype!`]
//!   derive-replacement macros (replaces `serde`/`serde_json`).
//! * [`rng`] — a seedable xoshiro256++ deterministic PRNG behind a small
//!   [`rng::Rng`] trait (replaces `rand`).
//! * [`check`] — a seeded property-testing harness with configurable case
//!   counts and failure-seed reporting (replaces `proptest`).
//! * [`bench`] — a micro-benchmark harness with warmup, timed samples,
//!   median/p95 statistics and JSON report emission (replaces
//!   `criterion`).
//! * [`par`] — a work-stealing thread pool with deterministic
//!   (submission-order) reduction, panic propagation, and a
//!   `DSE_THREADS` reproducibility switch (replaces `rayon`).
//! * [`net`] — bounded line/length framing for newline-delimited JSON
//!   protocols and a stoppable TCP accept loop, the substrate of the
//!   `dse-server` daemon (replaces `tokio`-style networking stacks).

pub mod bench;
pub mod check;
pub mod json;
pub mod net;
pub mod par;
pub mod rng;
