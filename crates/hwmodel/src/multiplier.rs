//! Digit-multiplier structures (the `aᵢ·B` / `qᵢ·M` units).
//!
//! In a radix-2ᵏ digit-serial multiplier the "multiplier" hardware only has
//! to form `digit × wide-operand` products with `digit < 2ᵏ`. The paper's
//! Table 1 distinguishes regular (array) digit multipliers (`MUL`) from
//! multiplexer-based ones that select among precomputed multiples (`MUX`);
//! radix-2 designs need neither (a row of AND gates suffices, `N/A` in the
//! table).

use std::fmt;

use techlib::{CellKind, Technology};

use crate::adder::AdderKind;

/// The structure forming `digit × operand` partial products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DigitMultiplierKind {
    /// Radix 2 only: the digit is one bit, so an AND-gate row suffices.
    AndRow,
    /// A k×w array: k AND rows compressed by k−1 carry-save rows.
    Array,
    /// Mux selection among precomputed multiples of the operand
    /// (multiplications by constants, as the paper puts it).
    MuxTable,
}

impl DigitMultiplierKind {
    /// All kinds, for iteration.
    pub const ALL: [DigitMultiplierKind; 3] = [
        DigitMultiplierKind::AndRow,
        DigitMultiplierKind::Array,
        DigitMultiplierKind::MuxTable,
    ];

    /// Whether the structure can implement digits of `k` bits.
    ///
    /// `AndRow` handles only `k == 1`; the other two require `k >= 2`
    /// (for `k == 1` they would degenerate to an AND row anyway).
    pub fn supports_digit_bits(self, k: u32) -> bool {
        match self {
            DigitMultiplierKind::AndRow => k == 1,
            DigitMultiplierKind::Array | DigitMultiplierKind::MuxTable => (2..=4).contains(&k),
        }
    }

    /// Area in gate equivalents for a digit of `k` bits against a `width`-bit
    /// operand.
    ///
    /// # Panics
    ///
    /// Panics if the structure does not support `k` (see
    /// [`supports_digit_bits`](Self::supports_digit_bits)).
    pub fn area_ge(self, k: u32, width: u32, tech: &Technology) -> f64 {
        assert!(
            self.supports_digit_bits(k),
            "{self} does not support {k}-bit digits"
        );
        let and = tech.cell_model(CellKind::And2).area_ge;
        let fa = tech.cell_model(CellKind::FullAdder).area_ge;
        let mux2 = tech.cell_model(CellKind::Mux2).area_ge;
        let dff = tech.cell_model(CellKind::Dff).area_ge;
        let w = width as f64;
        match self {
            DigitMultiplierKind::AndRow => w * and,
            DigitMultiplierKind::Array => {
                // k partial-product rows + (k-1) CSA compression rows.
                k as f64 * w * and + (k - 1) as f64 * w * fa
            }
            DigitMultiplierKind::MuxTable => {
                // Registers for the non-trivial precomputed multiples (odd
                // multiples above 1: 3B, 5B, 7B, ...), the load-time adder
                // that forms them, and a 2ᵏ:1 mux tree per bit
                // (2ᵏ − 1 two-input muxes per bit).
                let odd_multiples = (1u32 << (k - 1)).saturating_sub(1) as f64;
                let mux_tree_per_bit = ((1u32 << k) - 1) as f64 * mux2;
                odd_multiples * w * dff
                    + AdderKind::CarryLookAhead.area_ge(width, tech)
                    + w * mux_tree_per_bit
            }
        }
    }

    /// Critical path in τ for forming one digit product.
    ///
    /// # Panics
    ///
    /// Panics if the structure does not support `k`.
    pub fn delay_tau(self, k: u32, tech: &Technology) -> f64 {
        assert!(
            self.supports_digit_bits(k),
            "{self} does not support {k}-bit digits"
        );
        let and = tech.cell_model(CellKind::And2).delay_tau;
        let fa = tech.cell_model(CellKind::FullAdder).delay_tau;
        let mux2 = tech.cell_model(CellKind::Mux2).delay_tau;
        match self {
            DigitMultiplierKind::AndRow => and,
            DigitMultiplierKind::Array => and + (k - 1) as f64 * fa,
            DigitMultiplierKind::MuxTable => k as f64 * mux2,
        }
    }

    /// Extra cycles spent at operand-load time (the mux table precomputes
    /// its odd multiples with a shared adder).
    pub fn setup_cycles(self, k: u32) -> u64 {
        match self {
            DigitMultiplierKind::AndRow | DigitMultiplierKind::Array => 0,
            DigitMultiplierKind::MuxTable => (1u64 << (k - 1)).saturating_sub(1),
        }
    }
}

impl fmt::Display for DigitMultiplierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DigitMultiplierKind::AndRow => "and-row",
            DigitMultiplierKind::Array => "array",
            DigitMultiplierKind::MuxTable => "mux-table",
        };
        f.write_str(s)
    }
}

foundation::impl_json_enum!(DigitMultiplierKind { AndRow, Array, MuxTable });

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::g10_035()
    }

    #[test]
    fn support_matrix() {
        assert!(DigitMultiplierKind::AndRow.supports_digit_bits(1));
        assert!(!DigitMultiplierKind::AndRow.supports_digit_bits(2));
        assert!(DigitMultiplierKind::Array.supports_digit_bits(2));
        assert!(DigitMultiplierKind::MuxTable.supports_digit_bits(4));
        assert!(!DigitMultiplierKind::Array.supports_digit_bits(1));
        assert!(!DigitMultiplierKind::MuxTable.supports_digit_bits(5));
    }

    #[test]
    fn mux_is_faster_than_array() {
        // The paper's #5_16 (CSA + MUX) is its fastest hardware point; the
        // mux selection path must beat the array compression path.
        let t = tech();
        for k in [2u32, 3, 4] {
            assert!(
                DigitMultiplierKind::MuxTable.delay_tau(k, &t)
                    < DigitMultiplierKind::Array.delay_tau(k, &t),
                "k = {k}"
            );
        }
    }

    #[test]
    fn and_row_is_cheapest() {
        let t = tech();
        let and_area = DigitMultiplierKind::AndRow.area_ge(1, 64, &t);
        let arr_area = DigitMultiplierKind::Array.area_ge(2, 64, &t);
        assert!(and_area < arr_area);
    }

    #[test]
    fn setup_cycles_only_for_mux() {
        assert_eq!(DigitMultiplierKind::AndRow.setup_cycles(1), 0);
        assert_eq!(DigitMultiplierKind::Array.setup_cycles(2), 0);
        assert_eq!(DigitMultiplierKind::MuxTable.setup_cycles(2), 1); // 3B
        assert_eq!(DigitMultiplierKind::MuxTable.setup_cycles(3), 3); // 3B,5B,7B
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_digit_width_panics() {
        let _ = DigitMultiplierKind::AndRow.delay_tau(2, &tech());
    }

    #[test]
    fn area_grows_with_radix() {
        let t = tech();
        let a2 = DigitMultiplierKind::Array.area_ge(2, 64, &t);
        let a4 = DigitMultiplierKind::Array.area_ge(4, 64, &t);
        assert!(a4 > a2);
    }
}
