//! Wall-clock benchmarks of the five word-level Montgomery variants as
//! *actually executed* by this library (not the Pentium cost model) — a
//! sanity companion to Fig. 6: the relative ordering of the variants'
//! real memory traffic shows up in real time too.

use bignum::{uniform_below, UBig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swmodel::{MontgomeryVariant, OpCounts, WordMontgomery};

fn bench_variants(c: &mut Criterion) {
    let bits = 1024u32;
    let mut rng = StdRng::seed_from_u64(21);
    let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    let ctx = WordMontgomery::new(&m).expect("odd modulus");
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);

    let mut group = c.benchmark_group("swmodel/mont_mul_1024b");
    for variant in MontgomeryVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.to_string()),
            &variant,
            |bch, &variant| {
                bch.iter(|| {
                    let mut counts = OpCounts::new();
                    ctx.mont_mul(
                        std::hint::black_box(&a),
                        std::hint::black_box(&b),
                        variant,
                        &mut counts,
                    )
                    .expect("reduced operands")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
