//! Shared benchmark suites, each usable both as a stand-alone
//! `cargo bench` target (see `benches/`) and as a building block of the
//! combined `BENCH_baseline.json` report (see `src/bin/baseline.rs`).

use bignum::{uniform_below, MontgomeryContext, UBig};
use dse::eval::FigureOfMerit;
use dse::value::Value;
use dse_library::{crypto, Explorer};
use foundation::bench::{black_box, Harness};
use foundation::rng::{SeedableRng, StdRng};
use hwmodel::{paper_designs, sim};
use swmodel::{MontgomeryVariant, OpCounts, WordMontgomery};
use techlib::Technology;

/// Random odd modulus of exactly `bits` bits plus two reduced operands.
fn operands(bits: u32, seed: u64) -> (UBig, UBig, UBig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = uniform_below(&UBig::power_of_two(bits), &mut rng);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    let a = uniform_below(&m, &mut rng);
    let b = uniform_below(&m, &mut rng);
    (a, b, m)
}

/// Microbenchmarks of the `bignum` substrate: the arithmetic every other
/// layer of the reproduction stands on.
pub fn bignum_ops() -> Harness {
    let mut h = Harness::new("bignum_ops");
    for bits in [256u32, 1024, 4096] {
        let (a, b, _) = operands(bits, 1);
        h.bench(format!("bignum/mul/{bits}"), || {
            black_box(black_box(&a) * black_box(&b));
        });
    }
    for bits in [256u32, 1024] {
        let (a, b, m) = operands(bits, 2);
        let prod = &a * &b;
        h.bench(format!("bignum/div_rem/{bits}"), || {
            black_box(black_box(&prod).div_rem(black_box(&m)));
        });
    }
    for bits in [256u32, 1024] {
        let (a, b, m) = operands(bits, 3);
        let ctx = MontgomeryContext::new(&m).expect("odd modulus");
        let (abar, bbar) = (ctx.to_mont(&a), ctx.to_mont(&b));
        h.bench(format!("bignum/mont_mul/{bits}"), || {
            black_box(ctx.mont_mul(black_box(&abar), black_box(&bbar)));
        });
    }
    for bits in [256u32, 512] {
        let (a, e, m) = operands(bits, 4);
        h.bench(format!("bignum/mod_pow/{bits}"), || {
            black_box(black_box(&a).mod_pow(&e, &m));
        });
    }
    h
}

/// The cycle-accurate datapath simulator: one modular multiplication
/// through each Table-1 design family, then operand-width scaling.
pub fn datapath() -> Harness {
    let mut h = Harness::new("datapath");
    let (a, b, m) = operands(64, 11);
    for family in paper_designs() {
        let arch = family.architecture(16).expect("16-bit slices");
        h.bench(format!("hwmodel/simulate_64b/{}", family.name()), || {
            black_box(
                sim::simulate(black_box(&arch), black_box(&a), black_box(&b), black_box(&m))
                    .expect("valid operands"),
            );
        });
    }
    let arch = paper_designs()[1].architecture(64).expect("64-bit slices");
    for bits in [64u32, 256, 768] {
        let (a, b, m) = operands(bits, u64::from(bits));
        h.bench(format!("hwmodel/simulate_scaling/{bits}"), || {
            black_box(sim::simulate(&arch, &a, &b, &m).expect("valid operands"));
        });
    }
    h
}

/// The five word-level Montgomery variants as *actually executed* by this
/// library (not the Pentium cost model) — a sanity companion to Fig. 6.
pub fn sw_variants() -> Harness {
    let mut h = Harness::new("sw_variants");
    let (a, b, m) = operands(1024, 21);
    let ctx = WordMontgomery::new(&m).expect("odd modulus");
    for variant in MontgomeryVariant::ALL {
        h.bench(format!("swmodel/mont_mul_1024b/{variant}"), || {
            let mut counts = OpCounts::new();
            black_box(
                ctx.mont_mul(black_box(&a), black_box(&b), variant, &mut counts)
                    .expect("reduced operands"),
            );
        });
    }
    h
}

/// The design-space-layer machinery itself: layer construction, library
/// generation, pruning and Pareto queries — the operations a designer's
/// tool loop would hammer.
pub fn exploration() -> Harness {
    let mut h = Harness::new("exploration");
    h.bench("dse/build_crypto_layer", || {
        black_box(crypto::build_layer().expect("layer builds"));
    });
    let tech = Technology::g10_035();
    h.bench("dse/build_crypto_library_768", || {
        black_box(crypto::build_library(black_box(&tech), 768));
    });
    let layer = crypto::build_layer().expect("layer builds");
    let library = crypto::build_library(&tech, 768);
    h.bench("dse/session_prune_and_rank", || {
        let mut exp = Explorer::new(&layer.space, layer.omm, &library);
        exp.session
            .set_requirement("EOL", Value::from(768))
            .unwrap();
        exp.session
            .set_requirement("MaxLatencyUs", Value::from(8.0))
            .unwrap();
        exp.session
            .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        exp.session
            .decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        exp.session
            .decide("Algorithm", Value::from("Montgomery"))
            .unwrap();
        exp.session
            .decide("AdderStructure", Value::from("carry-save"))
            .unwrap();
        black_box((
            exp.surviving_cores().len(),
            exp.pareto_cores(&[FigureOfMerit::AreaUm2, FigureOfMerit::DelayNs])
                .len(),
        ));
    });
    h.bench("dse/build_fir_library", || {
        black_box(dse_library::fir::build_library(black_box(&tech)));
    });
    h
}

/// Million-core scale: the columnar `CoreStore` over the seeded library
/// generator — cold index builds, AND-merge narrowing queries, and the
/// incremental decide/retract path against the legacy from-scratch scan
/// (asserted ≥10× faster in-suite, mirroring the `solve` suite's gate).
pub fn explore_scale() -> Harness {
    use dse_library::synthetic::{synthetic_core_space, synthetic_cores, CoreSpaceSpec};
    use dse_library::{CoreStore, ExplorerEngine};

    let mut h = Harness::new("explore_scale");
    for (label, cores) in [("1k", 1_000usize), ("100k", 100_000), ("1M", 1_000_000)] {
        let spec = CoreSpaceSpec::sized(cores);
        let (space, root) = synthetic_core_space(&spec);
        let library = synthetic_cores(&spec);

        // Cold index build: all posting lists + merit columns.
        h.bench(format!("explore_scale/store_build_{label}"), || {
            black_box(CoreStore::for_libraries(&[black_box(&library)]));
        });

        // The AND-merge narrowing path: decide, popcount, retract. The
        // option toggles per iteration so the cursor can never answer
        // from its memo — every round pays one retract + one AND-merge.
        let mut exp = Explorer::new(&space, root, &library);
        exp.set_engine(ExplorerEngine::Columnar);
        let mut flip = false;
        h.bench(format!("explore_scale/and_query_{label}"), || {
            flip = !flip;
            let option = if flip { "o1" } else { "o2" };
            exp.session.decide("P0", Value::from(option)).unwrap();
            black_box(exp.surviving_count());
            exp.session.undo().unwrap();
        });

        if cores == 1_000_000 {
            // Full interactive round at the million-core mark — decide,
            // survivor count, merit range, retract — incrementally…
            let mut flip = false;
            let incremental = h
                .bench("explore_scale/decide_incremental_1M", || {
                    flip = !flip;
                    let option = if flip { "o1" } else { "o2" };
                    exp.session.decide("P0", Value::from(option)).unwrap();
                    black_box((
                        exp.surviving_count(),
                        exp.merit_range(&FigureOfMerit::AreaUm2),
                    ));
                    exp.session.undo().unwrap();
                })
                .median_ns;

            // …versus the legacy from-scratch scan answering the same
            // queries.
            let mut scan = Explorer::new(&space, root, &library);
            scan.set_engine(ExplorerEngine::Scan);
            let mut flip = false;
            let scratch = h
                .bench("explore_scale/from_scratch_1M", || {
                    flip = !flip;
                    let option = if flip { "o1" } else { "o2" };
                    scan.session.decide("P0", Value::from(option)).unwrap();
                    black_box((
                        scan.surviving_count(),
                        scan.merit_range(&FigureOfMerit::AreaUm2),
                    ));
                    scan.session.undo().unwrap();
                })
                .median_ns;
            assert!(
                incremental * 10.0 <= scratch,
                "incremental decide must be ≥10× faster than from-scratch \
                 recompute at 1M cores: {incremental:.0} ns vs {scratch:.0} ns"
            );
        }
    }
    h
}

/// One benchmark per reproduced paper artifact: regenerating each
/// table/figure end to end (the `tables` harness body).
pub fn paper_artifacts() -> Harness {
    use crate::experiments::{
        ablation_cc2, ablation_pruning, fig12, fig3, fig6, fig9, fir, methods, power, table1,
        walkthrough,
    };
    let mut h = Harness::new("paper_artifacts");
    let tech = Technology::g10_035();
    h.bench("artifacts/table1", || {
        black_box(table1::run(&tech));
    });
    h.bench("artifacts/fig6", || {
        black_box(fig6::run(&tech));
    });
    h.bench("artifacts/fig9", || {
        black_box(fig9::run(&tech));
    });
    h.bench("artifacts/fig12", || {
        black_box(fig12::run(&tech));
    });
    h.bench("artifacts/fig3", || {
        black_box(fig3::run());
    });
    h.bench("artifacts/ablation_pruning", || {
        black_box(ablation_pruning::run(&tech));
    });
    h.bench("artifacts/power", || {
        black_box(power::run(&tech));
    });
    h.bench("artifacts/fir", || {
        black_box(fir::run(&tech));
    });
    h.bench("artifacts/ablation_cc2", || {
        black_box(ablation_cc2::run());
    });
    h.bench("artifacts/walkthrough", || {
        black_box(walkthrough::render());
    });
    h.bench("artifacts/methods", || {
        black_box(methods::run());
    });
    h
}

/// The resilience layer (`dse::robust`): supervised tool calls against
/// bare registry calls (the supervision overhead the acceptance gate
/// bounds at 2×), the full fallback ladder under injected faults, and
/// journal serialization/recovery.
pub fn robust() -> Harness {
    use dse::expr::Bindings;
    use dse::robust::{FaultPlan, FaultRates, Supervisor};
    use dse::robust::fault::silence_injected_panics;
    use dse::robust::{JournalRecord, JournaledSession};
    use dse_library::estimators::full_registry;

    silence_injected_panics();
    let mut h = Harness::new("robust");
    let tech = Technology::g10_035();
    let mut bindings = Bindings::new();
    bindings.insert("EOL".to_owned(), Value::from(768));
    bindings.insert("Algorithm".to_owned(), Value::from("Montgomery"));
    bindings.insert("Radix".to_owned(), Value::from(2));

    let bare = full_registry(tech.clone());
    h.bench("robust/bare_call", {
        let bindings = bindings.clone();
        move || {
            black_box(
                bare.run("CoarseDelayEstimator", black_box(&bindings))
                    .expect("healthy tool"),
            );
        }
    });
    let sup = Supervisor::new(full_registry(tech.clone()));
    h.bench("robust/supervised_call", {
        let bindings = bindings.clone();
        move || {
            black_box(
                sup.call("CoarseDelayEstimator", black_box(&bindings))
                    .expect("healthy tool"),
            );
        }
    });
    let chaotic = Supervisor::new(
        FaultPlan::new(42, 64, FaultRates::chaos()).wrap_registry(full_registry(tech.clone())),
    );
    h.bench("robust/supervised_estimate_under_chaos", {
        let bindings = bindings.clone();
        move || {
            black_box(chaotic.estimate(
                "BehaviorDelayEstimator",
                black_box(&bindings),
                Some((0.1, 50.0)),
            ));
        }
    });

    let layer = crypto::build_layer().expect("layer builds");
    h.bench("robust/journal_roundtrip", move || {
        let mut js = JournaledSession::new(&layer.space, layer.omm);
        js.set_requirement("EOL", Value::from(768)).unwrap();
        js.set_requirement("MaxLatencyUs", Value::from(8.0)).unwrap();
        js.set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
            .unwrap();
        js.decide("ImplementationStyle", Value::from("Hardware"))
            .unwrap();
        js.decide("Algorithm", Value::from("Montgomery")).unwrap();
        let text = black_box(js.journal().to_jsonl());
        black_box(
            JournaledSession::recover(&layer.space, layer.omm, &text).expect("clean journal"),
        );
    });
    h.bench("robust/journal_encode_decode_record", || {
        let r = JournalRecord::Decide {
            name: "Algorithm".to_owned(),
            value: Value::from("Montgomery"),
        };
        let line = foundation::json::encode(black_box(&r));
        black_box(foundation::json::decode::<JournalRecord>(&line).expect("roundtrip"));
    });
    h
}

/// The estimate memo (`dse::robust::EstimateCache`): cold vs warm
/// supervised estimates, the fingerprint itself, and a repeated-decide
/// session loop that must exceed the 90% hit-rate acceptance gate while
/// still missing (never serving stale figures) when an input changes.
pub fn cache() -> Harness {
    use std::sync::Arc;

    use dse::expr::Bindings;
    use dse::robust::{EstimateCache, Supervisor};
    use dse::session::ExplorationSession;
    use dse_library::estimators::full_registry;

    let mut h = Harness::new("cache");
    let tech = Technology::g10_035();
    let mut bindings = Bindings::new();
    bindings.insert("EOL", Value::from(768));
    bindings.insert("Algorithm", Value::from("Montgomery"));
    bindings.insert("BehavioralDecomposition", Value::from("use-default"));

    let cold = Supervisor::new(full_registry(tech.clone()));
    h.bench("cache/estimate_uncached", {
        let bindings = bindings.clone();
        move || {
            black_box(cold.estimate(
                "BehaviorDelayEstimator",
                black_box(&bindings),
                Some((0.1, 50.0)),
            ));
        }
    });

    let warm = Supervisor::with_cache(
        full_registry(tech.clone()),
        Arc::new(EstimateCache::new()),
    );
    warm.estimate("BehaviorDelayEstimator", &bindings, Some((0.1, 50.0)));
    h.bench("cache/estimate_memo_hit", {
        let bindings = bindings.clone();
        move || {
            black_box(warm.estimate(
                "BehaviorDelayEstimator",
                black_box(&bindings),
                Some((0.1, 50.0)),
            ));
        }
    });

    h.bench("cache/fingerprint", {
        let bindings = bindings.clone();
        move || {
            black_box(EstimateCache::fingerprint(black_box(&bindings)));
        }
    });

    // A repeated-decide loop: every undo/redecide returns the session to
    // a state the cache has fingerprinted before, so after the first
    // iteration every estimator run is a hit.
    let layer = crypto::build_layer().expect("layer builds");
    let cached = Supervisor::with_cache(
        full_registry(tech.clone()),
        Arc::new(EstimateCache::new()),
    );
    let mut session = ExplorationSession::new(&layer.space, layer.omm);
    session.set_requirement("EOL", Value::from(768)).unwrap();
    session
        .set_requirement("MaxLatencyUs", Value::from(8.0))
        .unwrap();
    session
        .set_requirement("ModuloIsOdd", Value::from("Guaranteed"))
        .unwrap();
    session
        .decide("ImplementationStyle", Value::from("Hardware"))
        .unwrap();
    session.decide("Algorithm", Value::from("Montgomery")).unwrap();
    h.bench("cache/repeated_decide_session", || {
        session
            .decide("BehavioralDecomposition", Value::from("use-default"))
            .unwrap();
        black_box(session.run_estimators(&cached));
        session.undo().unwrap();
    });

    let stats = cached.cache().expect("cache attached").stats();
    assert!(
        stats.hit_rate() > 0.90,
        "repeated-decide workload must exceed the 90% hit-rate gate, got {:.3} ({stats:?})",
        stats.hit_rate()
    );
    // Correct invalidation, both implicit and explicit: a changed input
    // must miss instead of serving the memoized figure, and dropping the
    // tool's entries must force recomputation.
    let misses_before = stats.misses;
    session
        .decide("BehavioralDecomposition", Value::from("select-per-operator"))
        .unwrap();
    black_box(session.run_estimators(&cached));
    let cache = cached.cache().expect("cache attached");
    assert!(
        cache.stats().misses > misses_before,
        "a changed input fingerprint must miss: {:?}",
        cache.stats()
    );
    assert!(cache.invalidate_tool("BehaviorDelayEstimator") > 0);
    h
}

/// The static analyzer (`dse::analyze`): full-space verification of the
/// shipped crypto layer, plus a synthetic ~1.4k-CDO space that stresses
/// the per-node passes (derivation graph, domain enumeration, hierarchy
/// checks) at a scale no shipped layer reaches.
pub fn analyze() -> Harness {
    use dse::constraint::{ConsistencyConstraint, Fidelity, Relation};
    use dse::expr::{Expr, Pred};
    use dse::hierarchy::DesignSpace;
    use dse::property::Property;
    use dse::value::Domain;

    /// A uniform tree: each node down to `depth` carries a generalized
    /// issue with `arity` options, each spawning a child. With
    /// `arity = 4, depth = 5` that is 1365 CDOs.
    fn synthetic_space(arity: usize, depth: usize) -> DesignSpace {
        let mut s = DesignSpace::new("synthetic");
        let root = s.add_root("Root", "");
        let mut frontier = vec![root];
        for level in 0..depth {
            let issue = format!("L{level}");
            let options: Vec<String> = (0..arity).map(|o| format!("o{o}")).collect();
            let mut next = Vec::with_capacity(frontier.len() * arity);
            for &node in &frontier {
                s.add_property(
                    node,
                    Property::generalized_issue(&issue, Domain::options(options.clone()), ""),
                )
                .expect("fresh issue per level");
                next.extend(s.specialize(node, &issue).expect("enumerable issue"));
            }
            frontier = next;
        }
        // A derivation chain and two option constraints for the domain
        // passes to chew on.
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCderive",
                "",
                ["L0".to_owned()],
                ["Depth".to_owned()],
                Relation::Quantitative {
                    target: "Depth".to_owned(),
                    formula: Expr::constant(1),
                    fidelity: Fidelity::Exact,
                },
            ),
        )
        .expect("well-formed");
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCpair",
                "",
                ["L0".to_owned(), "L1".to_owned()],
                [],
                Relation::InconsistentOptions(Pred::all([
                    Pred::is("L0", "o0"),
                    Pred::is("L1", "o1"),
                ])),
            ),
        )
        .expect("well-formed");
        s.add_constraint(
            root,
            ConsistencyConstraint::new(
                "CCdom",
                "",
                ["L0".to_owned(), "L1".to_owned()],
                [],
                Relation::Dominance(Pred::all([
                    Pred::is("L0", "o1"),
                    Pred::is("L1", "o0"),
                ])),
            ),
        )
        .expect("well-formed");
        s
    }

    let mut h = Harness::new("analyze");
    let layer = crypto::build_layer().expect("layer builds");
    h.bench("analyze/crypto_layer", || {
        black_box(dse::analyze::analyze(black_box(&layer.space)));
    });
    let synthetic = synthetic_space(4, 5);
    assert_eq!(synthetic.len(), 1365);
    h.bench("analyze/synthetic_1365_cdos", || {
        black_box(dse::analyze::analyze(black_box(&synthetic)));
    });
    // The same sweep pinned to one thread: the sequential-overhead bound
    // (the parallel engine must not tax single-core runs), and the
    // denominator for the multi-core speedup when cores are available.
    h.bench("analyze/synthetic_1365_cdos_1thread", || {
        foundation::par::with_thread_limit(1, || {
            black_box(dse::analyze::analyze(black_box(&synthetic)));
        });
    });
    h.bench("analyze/evaluation_order_crypto", || {
        black_box(
            dse::analyze::evaluation_order(black_box(&layer.space), layer.omm)
                .expect("crypto space is acyclic"),
        );
    });
    h
}

/// The exploration daemon's engine: request-dispatch overhead, full
/// session lifecycles (with and without journaling), a pipelined batch
/// fanned out across the worker pool, and the guard layer's two costs —
/// deadline admission on the hot path and journal compaction under
/// churn — each gated in-suite at 2× of its unguarded twin.
pub fn server() -> Harness {
    use dse_server::{EngineBuilder, GuardConfig};

    let mut h = Harness::new("server");
    let tech = Technology::g10_035();
    let engine = EngineBuilder::new(tech.clone())
        .with_shipped_layers()
        .build()
        .expect("engine builds");

    // Pure dispatch: parse + route + render for the cheapest op.
    let plain = h
        .bench("server/stats_roundtrip", || {
            black_box(engine.handle_line(black_box(r#"{"op":"stats"}"#)));
        })
        .median_ns;

    // The same request carrying a generous deadline: fuel bookkeeping
    // (budget construction + the admission charge) rides every guarded
    // request, so it must stay within 2× of the unguarded dispatch.
    let guarded = h
        .bench("server/guard_admission_overhead", || {
            black_box(engine.handle_line(black_box(r#"{"op":"stats","deadline_ms":60000}"#)));
        })
        .median_ns;
    assert!(
        guarded <= plain * 2.0,
        "deadline admission must cost ≤2× an unguarded request: \
         {guarded:.0} ns vs {plain:.0} ns"
    );

    // A full open → decide ×3 → surviving_cores → close conversation on
    // the shared snapshot (session state only; no disk).
    let conversation = |id: &str| -> Vec<String> {
        vec![
            format!(r#"{{"op":"open","session":"{id}","snapshot":"crypto"}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"EOL","value":768}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"ModuloIsOdd","value":"Guaranteed"}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"ImplementationStyle","value":"Hardware"}}"#),
            format!(r#"{{"op":"surviving_cores","session":"{id}","limit":4}}"#),
            format!(r#"{{"op":"close","session":"{id}"}}"#),
        ]
    };
    let lines = conversation("bench");
    h.bench("server/session_lifecycle", || {
        for line in &lines {
            black_box(engine.handle_line(black_box(line)));
        }
    });

    // The same lifecycle with a decision journal underneath: the price
    // of durability (open/append/close per record).
    let dir = std::env::temp_dir().join(format!("dse-bench-server-{}", std::process::id()));
    let journaled = EngineBuilder::new(tech)
        .with_shipped_layers()
        .journal_dir(&dir)
        .build()
        .expect("engine builds");
    h.bench("server/session_lifecycle_journaled", || {
        for line in &lines {
            black_box(journaled.handle_line(black_box(line)));
        }
    });
    let _ = std::fs::remove_dir_all(&dir);

    // Journal lifecycle under churn: one session accumulating ~1k
    // records of decide/retract per round. With the default threshold
    // the journal is compacted (verified replay + crash-safe rename)
    // about twice per round; the amortized cost must stay within 2× of
    // the same churn with compaction disabled.
    let churn: Vec<String> = {
        let mut v = vec![r#"{"op":"open","session":"churn","snapshot":"crypto"}"#.to_owned()];
        for _ in 0..500 {
            v.push(r#"{"op":"decide","session":"churn","name":"EOL","value":768}"#.to_owned());
            v.push(r#"{"op":"retract","session":"churn"}"#.to_owned());
        }
        v.push(r#"{"op":"close","session":"churn"}"#.to_owned());
        v
    };
    let churn_engine = |compact_after: usize, tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "dse-bench-guard-{tag}-{}",
            std::process::id()
        ));
        let engine = EngineBuilder::new(Technology::g10_035())
            .with_shipped_layers()
            .journal_dir(&dir)
            .guard(GuardConfig {
                compact_after,
                ..GuardConfig::default()
            })
            .build()
            .expect("engine builds");
        (engine, dir)
    };
    let (appending, append_dir) = churn_engine(0, "append");
    let append_only = h
        .bench("server/journal_churn_1k_append_only", || {
            for line in &churn {
                black_box(appending.handle_line(black_box(line)));
            }
        })
        .median_ns;
    let _ = std::fs::remove_dir_all(&append_dir);
    let (compacting, compact_dir) = churn_engine(512, "compact");
    let compacted = h
        .bench("server/journal_churn_1k_compacting", || {
            for line in &churn {
                black_box(compacting.handle_line(black_box(line)));
            }
        })
        .median_ns;
    let _ = std::fs::remove_dir_all(&compact_dir);
    assert!(
        compacted <= append_only * 2.0,
        "compaction must amortize to ≤2× append-only churn: \
         {compacted:.0} ns vs {append_only:.0} ns"
    );

    // 32 interleaved sessions in one pipelined batch: distinct sessions
    // fan out over foundation::par, per-session order preserved.
    let batch: Vec<String> = {
        let scripts: Vec<Vec<String>> = (0..32).map(|i| conversation(&format!("b{i}"))).collect();
        let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
        (0..rounds)
            .flat_map(|r| scripts.iter().filter_map(move |s| s.get(r).cloned()))
            .collect()
    };
    h.bench("server/batch_32_sessions", || {
        black_box(engine.handle_batch(black_box(&batch)));
    });
    h
}

/// The propagation solver on the seeded synthetic stress layer — a
/// 10⁸-combination joint no exhaustive enumeration can finish. The
/// `incremental_decide_retract`-vs-`from_scratch_reanalysis` pair is a
/// hard gate: a decide/retract re-solve must stay at least 10× faster
/// than re-analyzing the space from scratch, or the suite panics.
pub fn solve() -> Harness {
    use dse::analyze::solve::Solver;
    use dse::analyze::{analyze_with_engine, DomainEngine};
    use dse_library::synthetic::{build_stress_layer, STRESS_SEED};

    let layer = build_stress_layer(STRESS_SEED).expect("stress layer builds");
    assert!(layer.combinations() >= 1_000_000);
    let mut h = Harness::new("solve");

    // The full analysis (all domain passes routed through the exact
    // propagation engine) — what `verify.sh`'s solver gate times.
    let scratch = h
        .bench("solve/from_scratch_reanalysis", || {
            black_box(analyze_with_engine(
                black_box(&layer.space),
                DomainEngine::Propagation,
            ));
        })
        .median_ns;

    // The incremental solver's setup cost: domains + watched-constraint
    // index + the parallel initial fixpoint.
    h.bench("solve/initial_fixpoint", || {
        black_box(Solver::for_space(black_box(&layer.space), layer.root));
    });

    // One decide/retract round trip against a warm solver: the
    // O(changed domains) path every interactive session and server
    // lookahead hits.
    let mut solver = Solver::for_space(&layer.space, layer.root);
    let raise = Value::from(true);
    let incremental = h
        .bench("solve/incremental_decide_retract", || {
            black_box(solver.decide("S0", black_box(&raise)));
            solver.retract();
        })
        .median_ns;
    assert!(
        incremental * 10.0 <= scratch,
        "incremental re-solve must be ≥10× faster than from-scratch \
         re-analysis: {incremental:.0} ns vs {scratch:.0} ns"
    );

    // A decide that conflicts (the fixpoint already pruned `tiny`), so
    // each iteration builds the full explanation chain.
    let mut conflicted = Solver::for_space(&layer.space, layer.root);
    let tiny = Value::from("tiny");
    h.bench("solve/conflict_explanation", || {
        let c = conflicted.decide("Codec", black_box(&tiny));
        assert!(c.is_some(), "Codec = tiny must conflict");
        black_box(c);
        conflicted.retract();
    });

    h
}

/// Median of paired tree/fast timing ratios.
///
/// Each round times the two closures back to back, so host-speed drift
/// (or allocator-state drift from suites that ran earlier in the
/// process) hits both sides of every ratio equally and cancels out —
/// unlike comparing two whole `Harness::bench` windows taken minutes
/// apart, whose ratio wobbles with whatever the box was doing between
/// them.
fn paired_ratio(
    rounds: usize,
    inner: u32,
    mut tree_side: impl FnMut(),
    mut fast_side: impl FnMut(),
) -> f64 {
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        for _ in 0..inner {
            tree_side();
        }
        let tree_ns = t.elapsed().as_nanos() as f64;
        let t = std::time::Instant::now();
        for _ in 0..inner {
            fast_side();
        }
        let fast_ns = t.elapsed().as_nanos() as f64;
        ratios.push(tree_ns / fast_ns.max(1.0));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    ratios[rounds / 2]
}

/// The zero-copy wire path against its own tree-codec oracle.
///
/// Two engines serve identical request streams: one built with
/// `DSE_WIRE_ENGINE=tree` (the original parse-to-`Json`-tree path, kept
/// as the differential oracle) and one on the default borrowed
/// reader/writer path. The suite is its own gate, calibrated to what
/// each shape can actually hold: the `stats` round-trip is pure codec,
/// so the fast path must win ≥2× there (it measures 3–5×); the decide
/// round-trip shares the session core between both sides but must still
/// win ≥1.15×; and the 32-session batch is dominated by session work
/// (solver, resume, rendering shared by both paths), so the codec win
/// shows up as ~1.4–1.6× and is gated at ≥1.3×. The gates assert on
/// paired interleaved rounds (see [`paired_ratio`]), not on the
/// reported `Harness` medians, so they hold under host noise.
pub fn wire() -> Harness {
    use dse_server::engine::WIRE_ENGINE_ENV;
    use dse_server::EngineBuilder;

    let mut h = Harness::new("wire");
    let tech = Technology::g10_035();
    // `wire_tree` is latched when the engine is built, so flipping the
    // env var around construction gives two engines on the two paths
    // regardless of what the surrounding process has exported.
    std::env::set_var(WIRE_ENGINE_ENV, "tree");
    let tree = EngineBuilder::new(tech.clone())
        .with_shipped_layers()
        .build()
        .expect("engine builds");
    std::env::remove_var(WIRE_ENGINE_ENV);
    let fast = EngineBuilder::new(tech)
        .with_shipped_layers()
        .build()
        .expect("engine builds");

    // The cheapest op, end to end: parse + route + render. The fast
    // path renders straight into the reused buffer; the tree path
    // builds and serializes the full `Json` response tree.
    let mut out = Vec::new();
    h.bench("wire/stats_roundtrip_tree", || {
        black_box(tree.handle_line_tree(black_box(r#"{"op":"stats"}"#)));
    });
    h.bench("wire/stats_roundtrip_fast", || {
        out.clear();
        fast.handle_line_into(black_box(r#"{"op":"stats"}"#), &mut out);
        black_box(&out);
    });
    let stats_ratio = paired_ratio(
        9,
        2000,
        || {
            black_box(tree.handle_line_tree(black_box(r#"{"op":"stats"}"#)));
        },
        || {
            out.clear();
            fast.handle_line_into(black_box(r#"{"op":"stats"}"#), &mut out);
            black_box(&out);
        },
    );
    assert!(
        stats_ratio >= 2.0,
        "borrowed wire path must hold a ≥2× paired-median win on the \
         stats round-trip: measured {stats_ratio:.2}×"
    );

    // A decide round-trip on a live session: the hot interactive op.
    // Session work (resume, solver, journalless append) is identical on
    // both paths, so the delta is pure codec.
    for engine in [&tree, &fast] {
        engine.handle_line(r#"{"op":"open","session":"w","snapshot":"crypto"}"#);
    }
    let decide = r#"{"op":"decide","session":"w","name":"EOL","value":768}"#;
    h.bench("wire/decide_roundtrip_tree", || {
        black_box(tree.handle_line_tree(black_box(decide)));
    });
    h.bench("wire/decide_roundtrip_fast", || {
        out.clear();
        fast.handle_line_into(black_box(decide), &mut out);
        black_box(&out);
    });
    let decide_ratio = paired_ratio(
        9,
        500,
        || {
            black_box(tree.handle_line_tree(black_box(decide)));
        },
        || {
            out.clear();
            fast.handle_line_into(black_box(decide), &mut out);
            black_box(&out);
        },
    );
    assert!(
        decide_ratio >= 1.15,
        "borrowed wire path must win the decide round-trip even though \
         the session core is shared: paired ratio {decide_ratio:.2}×"
    );

    // 32 interleaved sessions in one pipelined batch — the same shape
    // the baseline tracks as `server/batch_32_sessions`, here run on
    // both paths through the byte-level batch entry point.
    let conversation = |id: &str| -> Vec<String> {
        vec![
            format!(r#"{{"op":"open","session":"{id}","snapshot":"crypto"}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"EOL","value":768}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"ModuloIsOdd","value":"Guaranteed"}}"#),
            format!(r#"{{"op":"decide","session":"{id}","name":"ImplementationStyle","value":"Hardware"}}"#),
            format!(r#"{{"op":"surviving_cores","session":"{id}","limit":4}}"#),
            format!(r#"{{"op":"close","session":"{id}"}}"#),
        ]
    };
    let batch: Vec<String> = {
        let scripts: Vec<Vec<String>> = (0..32).map(|i| conversation(&format!("w{i}"))).collect();
        let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
        (0..rounds)
            .flat_map(|r| scripts.iter().filter_map(move |s| s.get(r).cloned()))
            .collect()
    };
    h.bench("wire/batch_32_sessions_tree", || {
        black_box(tree.handle_batch_into(black_box(&batch)));
    });
    h.bench("wire/batch_32_sessions_fast", || {
        black_box(fast.handle_batch_into(black_box(&batch)));
    });
    let batch_ratio = paired_ratio(
        9,
        4,
        || {
            black_box(tree.handle_batch_into(black_box(&batch)));
        },
        || {
            black_box(fast.handle_batch_into(black_box(&batch)));
        },
    );
    // The batch is session-core-bound: both sides pay the same solver,
    // resume, and render work per request, so the codec delta that is
    // ~2× on serial round-trips dilutes to ~1.4–1.6× here. Gate at the
    // floor of what that holds across allocator/host states.
    assert!(
        batch_ratio >= 1.3,
        "borrowed wire path must hold a ≥1.3× paired-median win on the \
         32-session batch: measured {batch_ratio:.2}×"
    );

    h
}
