//! The transport-independent request engine.
//!
//! An [`Engine`] holds immutable, `Arc`-shared design-space
//! [`Snapshot`]s and multiplexes any number of concurrent exploration
//! sessions over them. Per-session state is a plain
//! [`SessionSnapshot`] — opening a session never clones a space; each
//! request reconstructs a borrowing [`ExplorationSession`] against the
//! shared space via [`ExplorationSession::resume`], applies the
//! operation, and stores the new snapshot back.
//!
//! Sessions are durable when the engine has a [`JournalDir`]: every
//! mutating operation is appended to the session's journal *before* the
//! new state commits, a `<id>.meta` sidecar remembers which snapshot the
//! session explores, and [`EngineBuilder::build`] replays every journal
//! found at boot — a killed daemon comes back with all its sessions.
//!
//! [`Engine::handle_batch`] fans independent sessions out over
//! [`foundation::par`] while keeping each session's requests in
//! submission order, so a pipelining client observes exactly the
//! sequential semantics.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dse::prelude::{
    CdoId, DesignSpace, DiagCode, DseError, EstimateCache, ExplorationSession, FaultPlan,
    FaultRates, Figure, Fuel, Journal, JournalAppender, JournalDir, JournalRecord, Property,
    PropertyKind, SessionSnapshot, Solver, Supervisor, SupervisorConfig, Value, Viability,
};
use dse_library::{
    load_all_layers, roster_from_indices, roster_indices, CoreStore, Explorer, ReuseLibrary,
};
use foundation::json::{escaped_len, write_json, Json, Writer};
use techlib::Technology;

use crate::guard::{GuardConfig, FUEL_PER_MS};
use crate::protocol::{
    err_response, ok_response, parse_request, parse_request_fast, render_err_into,
    render_ok_prefix, value_to_json, Envelope, FastEnvelope, FastRequest, ProtocolError, Request,
};

/// Environment variable selecting the wire codec: the default is the
/// zero-copy fast path (borrowed decode + direct `Writer` rendering)
/// with tree fallback for anything unusual; `tree` forces every request
/// through the original `Json`-tree codec, which stays wired in as the
/// differential oracle (the `DSE_ANALYZE_ENGINE` pattern).
pub const WIRE_ENGINE_ENV: &str = "DSE_WIRE_ENGINE";

/// Default cap on core names returned by `surviving_cores`.
const DEFAULT_CORE_LIMIT: usize = 64;

/// Sidecar extension recording which snapshot a journaled session
/// explores.
const META_EXT: &str = "meta";

/// Flat fuel cost charged at admission by every deadlined request, so a
/// `deadline_ms` of `0` burns out before any op runs (the deterministic
/// "already too late" answer).
const OP_BASE_FUEL: u64 = 1_000;

/// Fuel charged by a `surviving_cores` scan under a deadline.
const CORE_SCAN_FUEL: u64 = 4_096;

/// Byte budget for the `cores` array of one `surviving_cores` page:
/// comfortably under the 1 MiB `foundation::net` line cap, with
/// headroom for the response envelope. A page that would overflow it is
/// clipped and flagged `truncated`, so million-core result sets can
/// never produce an unframeable reply.
const CORE_PAGE_BYTE_BUDGET: usize = 960 * 1024;

/// Fuel charged by a `viable` lookahead solve under a deadline.
const LOOKAHEAD_FUEL: u64 = 8_192;

/// Cyclic schedule length for a fault-injected registry
/// ([`EngineBuilder::tool_faults`]).
const TOOL_FAULT_SCHEDULE: usize = 4_096;

/// One immutable, shareable design space plus its reuse library.
///
/// Every session opened on a snapshot borrows the same `Arc`ed space;
/// nothing is ever cloned per session.
#[derive(Debug)]
pub struct Snapshot {
    /// The wire name clients open the snapshot by.
    pub name: String,
    /// Human-readable title (the shipped layer's caption).
    pub title: String,
    /// The shared space.
    pub space: Arc<DesignSpace>,
    /// The CDO sessions start focused on.
    pub root: CdoId,
    /// The reuse library evaluated against the space.
    pub library: Arc<ReuseLibrary>,
    /// The columnar index over the library, built once at snapshot load
    /// and shared by every session's `surviving_cores`/`eval` queries.
    pub store: Arc<CoreStore>,
    /// Precomputed deduplicated roster indices over `library` (see
    /// [`dse_library::roster_indices`]): the `(vendor, name)` dedup is
    /// hashed once at snapshot load instead of once per
    /// `surviving_cores` request.
    pub roster: Vec<(u32, u32)>,
}

impl Snapshot {
    /// Assembles a snapshot, building its columnar core store.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        space: Arc<DesignSpace>,
        root: CdoId,
        library: Arc<ReuseLibrary>,
    ) -> Snapshot {
        let store = Arc::new(CoreStore::for_libraries(&[&library]));
        let roster = roster_indices(&[&library]);
        Snapshot {
            name: name.into(),
            title: title.into(),
            space,
            root,
            library,
            store,
            roster,
        }
    }
}

/// The per-session mutable state: which snapshot, the exploration state,
/// and how the session came to exist.
#[derive(Debug)]
struct SessionSlot {
    snapshot: Arc<Snapshot>,
    state: SessionSnapshot,
    /// True when the slot was rebuilt from a journal (boot or resume).
    recovered: bool,
    /// Recovery diagnostics (e.g. a DSL201 torn tail), surfaced on the
    /// next `open` that attaches to the slot.
    notes: Vec<String>,
    /// The propagation solver behind the `viable` op, built lazily on
    /// first use and then kept in lock-step with decide/retract so each
    /// query re-solves only the changed domains instead of rebuilding.
    lookahead: Option<LookaheadSlot>,
    /// Records in this session's journal file, maintained so the
    /// compaction trigger never stats the disk on the hot path.
    journal_records: usize,
    /// Long-lived append handle to this session's journal, so the
    /// decide/retract acknowledge path skips the per-record open+close.
    /// Invalidated whenever compaction replaces the file.
    appender: JournalAppender,
    /// Engine request-counter value when the slot was last touched (the
    /// logical clock TTL eviction measures against).
    last_touch: u64,
}

/// A [`Solver`] synchronized with a session's decision log.
#[derive(Debug)]
struct LookaheadSlot {
    solver: Solver,
    /// Number of log entries the solver has incorporated.
    synced: usize,
    /// The focus the solver was built on; a focus move (generalized
    /// descend or its undo) invalidates the constraint set.
    focus: CdoId,
}

/// Builds an [`Engine`]: which snapshots it serves, and whether (and
/// where) sessions journal.
#[derive(Debug)]
pub struct EngineBuilder {
    tech: Technology,
    snapshots: BTreeMap<String, Arc<Snapshot>>,
    journal_dir: Option<std::path::PathBuf>,
    guard: GuardConfig,
    tool_fault_seed: Option<u64>,
    errors: Vec<String>,
}

impl EngineBuilder {
    /// Starts a builder; `tech` parameterizes the estimator registry and
    /// the shipped layers.
    pub fn new(tech: Technology) -> EngineBuilder {
        EngineBuilder {
            tech,
            snapshots: BTreeMap::new(),
            journal_dir: None,
            guard: GuardConfig::default(),
            tool_fault_seed: None,
            errors: Vec::new(),
        }
    }

    /// Adds every shipped layer (the same list `diagnose` analyzes, via
    /// the shared loader) as snapshots named by their slugs.
    pub fn with_shipped_layers(mut self) -> Self {
        match load_all_layers(&self.tech) {
            Ok(layers) => {
                for layer in layers {
                    self.snapshots.insert(
                        layer.slug.to_owned(),
                        Arc::new(Snapshot::new(
                            layer.slug,
                            layer.title,
                            Arc::new(layer.space),
                            layer.root,
                            Arc::new(layer.library),
                        )),
                    );
                }
            }
            Err(e) => self.errors.push(format!("shipped layers: {e}")),
        }
        self
    }

    /// Adds a snapshot from a JSON [`DesignSpace`] file. The snapshot is
    /// named after the file stem, focuses the first root, and carries an
    /// empty reuse library.
    pub fn with_space_file(mut self, path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("space")
            .to_owned();
        match fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                foundation::json::decode::<DesignSpace>(&text).map_err(|e| e.to_string())
            }) {
            Ok(space) => match space.roots().first().copied() {
                Some(root) => {
                    let title = space.name().to_owned();
                    let library = Arc::new(ReuseLibrary::new(format!("{name} (empty)")));
                    self.snapshots.insert(
                        name.clone(),
                        Arc::new(Snapshot::new(name, title, Arc::new(space), root, library)),
                    );
                }
                None => self
                    .errors
                    .push(format!("{}: space has no root CDO", path.display())),
            },
            Err(e) => self.errors.push(format!("{}: {e}", path.display())),
        }
        self
    }

    /// Adds a fully specified snapshot — space, root and reuse library —
    /// under `name`. Tests and embedders use this to serve synthetic
    /// libraries (e.g. the million-core pagination regression) without
    /// touching the filesystem.
    pub fn with_snapshot(
        mut self,
        name: impl Into<String>,
        space: DesignSpace,
        root: CdoId,
        library: ReuseLibrary,
    ) -> Self {
        let name = name.into();
        let title = space.name().to_owned();
        self.snapshots.insert(
            name.clone(),
            Arc::new(Snapshot::new(
                name,
                title,
                Arc::new(space),
                root,
                Arc::new(library),
            )),
        );
        self
    }

    /// Enables journaling (and boot recovery) in `dir`.
    pub fn journal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Overrides the overload-protection tunables (see [`GuardConfig`]).
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }

    /// Wraps every estimator in a seeded [`FaultPlan`] (chaos rates) —
    /// the hook the chaos soak uses to exercise breakers and fallback
    /// chains end to end. Disables the estimate cache: memo hits would
    /// shift the injection schedule and break determinism.
    pub fn tool_faults(mut self, seed: u64) -> Self {
        self.tool_fault_seed = Some(seed);
        self
    }

    /// Builds the engine, recovering every journal found in the journal
    /// directory. Per-journal problems become boot warnings (visible in
    /// `stats`), never boot failures.
    ///
    /// # Errors
    ///
    /// A snapshot that failed to load, or a journal directory that could
    /// not be created or listed.
    pub fn build(self) -> Result<Engine, String> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let journal = match self.journal_dir {
            Some(dir) => Some(JournalDir::create(dir).map_err(|e| e.to_string())?),
            None => None,
        };
        let cache = Arc::new(EstimateCache::new());
        let registry = dse_library::estimators::full_registry(self.tech.clone());
        let sup_config = SupervisorConfig {
            breaker: self.guard.breaker,
            ..SupervisorConfig::default()
        };
        let supervisor = match self.tool_fault_seed {
            // Fault injection and memoization do not mix: a cache hit
            // skips the tool call and shifts the fault schedule.
            Some(seed) => Supervisor::with_config(
                FaultPlan::new(seed, TOOL_FAULT_SCHEDULE, FaultRates::chaos())
                    .wrap_registry(registry),
                sup_config,
            ),
            None => Supervisor::with_cache_config(registry, Arc::clone(&cache), sup_config),
        };
        let engine = Engine {
            snapshots: self.snapshots,
            sessions: Mutex::new(HashMap::new()),
            journal,
            supervisor: Mutex::new(supervisor),
            cache,
            guard: self.guard,
            wire_tree: std::env::var(WIRE_ENGINE_ENV).is_ok_and(|v| v == "tree"),
            draining: AtomicBool::new(false),
            boot_warnings: Vec::new(),
            requests: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            session_seq: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        engine.recover_journals()
    }
}

/// The daemon's transport-independent core: snapshots, sessions,
/// journaling, shared estimate cache, and request dispatch.
#[derive(Debug)]
pub struct Engine {
    snapshots: BTreeMap<String, Arc<Snapshot>>,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionSlot>>>>,
    journal: Option<JournalDir>,
    /// The supervisor is `Send` but not `Sync` (interior stats cell), so
    /// evaluation serializes on this lock; the estimate cache underneath
    /// is shared and lock-striped independently.
    supervisor: Mutex<Supervisor>,
    cache: Arc<EstimateCache>,
    guard: GuardConfig,
    /// `DSE_WIRE_ENGINE=tree`: route every request through the original
    /// tree codec instead of the zero-copy fast path.
    wire_tree: bool,
    draining: AtomicBool,
    boot_warnings: Vec<String>,
    requests: AtomicU64,
    opened: AtomicU64,
    recovered: AtomicU64,
    session_seq: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    evicted: AtomicU64,
    compactions: AtomicU64,
}

type OpResult = Result<Vec<(String, Json)>, ProtocolError>;

/// The outcome of a fast-path op, produced by the same op cores the
/// tree path uses. Each variant renders through two codecs — tree
/// fields (the oracle) and the direct [`Writer`] — which the wire tests
/// hold byte-identical.
enum FastOut {
    Open(OpenOut),
    Decide(DecideOut),
    Retract(RetractOut),
    Eval(EvalOut),
    Cores(CoresOut),
    Viable(ViableOut),
    /// The closed session id.
    Close(String),
    /// Stats render straight off the engine's counters; there is
    /// nothing to carry.
    Stats,
}

struct OpenOut {
    session: String,
    snapshot: String,
    focus: String,
    recovered: bool,
    diagnostics: Vec<String>,
}

struct DecideOut {
    focus: String,
    open_issues: i64,
}

struct RetractOut {
    undone: Vec<String>,
    focus: String,
}

struct EvalOut {
    /// Name-sorted estimates.
    estimates: Vec<(String, FigureOut)>,
}

struct FigureOut {
    value: Option<f64>,
    provenance: &'static str,
    source: String,
}

struct CoresOut {
    count: i64,
    offset: i64,
    names: Vec<String>,
    truncated: bool,
}

struct ViableOut {
    viable: Viability,
    conflict: Option<String>,
}

impl Engine {
    /// The names of the snapshots this engine serves.
    pub fn snapshot_names(&self) -> Vec<&str> {
        self.snapshots.keys().map(String::as_str).collect()
    }

    /// Whether the engine has begun graceful drain.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the draining flag (what a `shutdown` request does): opens
    /// are refused from here on; everything else still answers.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// The shared estimate cache (one per process, all sessions).
    pub fn cache(&self) -> &Arc<EstimateCache> {
        &self.cache
    }

    /// The overload-protection tunables the engine was built with (the
    /// TCP front reads its connection-level knobs here).
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// Records a shed request (connection cap, batch cap) refused at the
    /// transport before reaching [`Engine::handle_batch`], so `stats`
    /// counts every DSL309 the daemon emits.
    pub fn note_overload(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Handles one raw request line, returning the encoded response
    /// line. Never panics: a panic inside an operation is caught and
    /// reported as a `DSL306` failure.
    pub fn handle_line(&self, line: &str) -> String {
        let mut out = Vec::new();
        self.handle_line_into(line, &mut out);
        String::from_utf8(out).expect("responses are UTF-8")
    }

    /// Handles one raw request line, appending the encoded response to
    /// `out` — the steady-state entry point: with a warm (reused) `out`
    /// and a hot-path request, the whole decode→dispatch→render cycle
    /// performs zero codec allocations.
    pub fn handle_line_into(&self, line: &str, out: &mut Vec<u8>) {
        if self.wire_tree {
            out.extend_from_slice(self.handle_line_tree(line).as_bytes());
            return;
        }
        match parse_request_fast(line) {
            Some((req, env)) => self.handle_fast(&req, &env, out),
            // Anything unusual — non-hot ops, tagged values, escapes,
            // malformed lines — takes the tree path, which owns every
            // error message.
            None => {
                let (parsed, env) = parse_request(line);
                write_json(out, &self.handle_parsed(parsed, &env));
            }
        }
    }

    /// The original tree-codec request path, kept fully wired as the
    /// differential oracle: `DSE_WIRE_ENGINE=tree` routes everything
    /// here, and the wire tests diff its output byte-for-byte against
    /// the zero-copy path.
    pub fn handle_line_tree(&self, line: &str) -> String {
        let (parsed, env) = parse_request(line);
        foundation::json::encode(&self.handle_parsed(parsed, &env))
    }

    /// Handles a batch of request lines (e.g. everything a pipelining
    /// client has buffered). Requests for distinct sessions run in
    /// parallel on [`foundation::par`]; requests for the same session
    /// keep their submission order; responses come back in request
    /// order.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        self.handle_batch_into(lines)
            .into_iter()
            .map(|bytes| String::from_utf8(bytes).expect("responses are UTF-8"))
            .collect()
    }

    /// [`Engine::handle_batch`] without the `String` conversions: the
    /// daemon hands the response buffers straight to the coalesced
    /// vectored writer.
    pub fn handle_batch_into(&self, lines: &[String]) -> Vec<Vec<u8>> {
        if lines.len() <= 1 {
            return lines
                .iter()
                .map(|l| {
                    let mut out = Vec::new();
                    self.handle_line_into(l, &mut out);
                    out
                })
                .collect();
        }
        enum Parsed<'a> {
            Fast(FastRequest<'a>, FastEnvelope<'a>),
            Tree(Result<Request, ProtocolError>, Envelope),
        }
        let parsed: Vec<Parsed> = lines
            .iter()
            .map(|l| {
                if !self.wire_tree {
                    if let Some((req, env)) = parse_request_fast(l) {
                        return Parsed::Fast(req, env);
                    }
                }
                let (req, env) = parse_request(l);
                Parsed::Tree(req, env)
            })
            .collect();

        // Group request indices by session; everything else (control
        // ops, parse failures, opens of generated ids) is its own
        // singleton group and free to run in parallel. Fast and
        // tree-parsed requests for the same session land in the same
        // group, preserving submission order between them.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut by_session: HashMap<&str, usize> = HashMap::new();
        for (i, p) in parsed.iter().enumerate() {
            let session = match p {
                Parsed::Fast(req, _) => req.session(),
                Parsed::Tree(req, _) => req.as_ref().ok().and_then(session_of),
            };
            match session {
                Some(session) => match by_session.get(session) {
                    Some(&g) => groups[g].push(i),
                    None => {
                        by_session.insert(session, groups.len());
                        groups.push(vec![i]);
                    }
                },
                None => groups.push(vec![i]),
            }
        }

        let answered: Vec<Vec<(usize, Vec<u8>)>> = foundation::par::par_map(groups, |group| {
            group
                .into_iter()
                .map(|i| {
                    // Sized for the common responses (decide/open/close
                    // fit; a cores page grows once) so rendering doesn't
                    // realloc its way up from empty.
                    let mut out = Vec::with_capacity(256);
                    match &parsed[i] {
                        Parsed::Fast(req, env) => self.handle_fast(req, env, &mut out),
                        Parsed::Tree(req, env) => {
                            write_json(&mut out, &self.handle_parsed(req.clone(), env));
                        }
                    }
                    (i, out)
                })
                .collect()
        });
        let mut out = vec![Vec::new(); lines.len()];
        for (i, response) in answered.into_iter().flatten() {
            out[i] = response;
        }
        out
    }

    /// The zero-copy sibling of [`Engine::handle_parsed`]: identical
    /// admission (request counter, fuel budget, panic containment,
    /// guard counters), but the response is rendered straight into
    /// `out` with no `Json` tree.
    fn handle_fast(&self, req: &FastRequest<'_>, env: &FastEnvelope<'_>, out: &mut Vec<u8>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let budget = env
            .deadline_ms
            .map(|ms| Fuel::new(ms.saturating_mul(FUEL_PER_MS)));
        // Dispatch first, render after: a panic mid-operation must not
        // leave half a response in the caller's buffer.
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch_fast(req, budget.as_ref())))
            .unwrap_or_else(|p| {
                let what = p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_owned());
                Err(ProtocolError::new(
                    DiagCode::SessionRejected,
                    format!("internal error: operation aborted ({what})"),
                ))
            });
        match result {
            Ok(fout) => self.render_fast_ok(out, env.id, req, &fout),
            Err(e) => {
                match e.code {
                    DiagCode::Overloaded => {
                        self.overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    DiagCode::DeadlineExceeded => {
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                render_err_into(out, env.id, &e);
            }
        }
    }

    /// [`Engine::dispatch`] for borrowed requests: same admission
    /// charge, same per-op fuel, same op cores — only the result shape
    /// differs (an [`FastOut`] for the renderer instead of tree fields).
    fn dispatch_fast(
        &self,
        req: &FastRequest<'_>,
        budget: Option<&Fuel>,
    ) -> Result<FastOut, ProtocolError> {
        charge(budget, OP_BASE_FUEL, "admission")?;
        match *req {
            FastRequest::Open {
                session,
                snapshot,
                resume,
            } => self
                .op_open_core(
                    session.map(str::to_owned),
                    snapshot.map(str::to_owned),
                    resume,
                )
                .map(FastOut::Open),
            FastRequest::Decide {
                session,
                name,
                value,
            } => self
                .op_decide_core(session, name, &value.to_value())
                .map(FastOut::Decide),
            FastRequest::Retract { session, name } => {
                self.op_retract_core(session, name).map(FastOut::Retract)
            }
            FastRequest::Eval { session } => {
                self.op_eval_core(session, budget).map(FastOut::Eval)
            }
            FastRequest::SurvivingCores {
                session,
                limit,
                offset,
            } => {
                charge(budget, CORE_SCAN_FUEL, "surviving_cores")?;
                self.op_surviving_cores_core(
                    session,
                    limit.unwrap_or(DEFAULT_CORE_LIMIT),
                    offset.unwrap_or(0),
                )
                .map(FastOut::Cores)
            }
            FastRequest::Viable { session, name } => {
                charge(budget, LOOKAHEAD_FUEL, "viable")?;
                self.op_viable_core(session, name).map(FastOut::Viable)
            }
            FastRequest::Close { session } => self.op_close_core(session).map(FastOut::Close),
            FastRequest::Stats => Ok(FastOut::Stats),
        }
    }

    /// Renders a fast-path success response, byte-identical to the
    /// tree path's `ok_response` + serializer for the same operation.
    fn render_fast_ok(
        &self,
        out: &mut Vec<u8>,
        id: Option<&str>,
        req: &FastRequest<'_>,
        fout: &FastOut,
    ) {
        let mut w = Writer::new(out);
        render_ok_prefix(&mut w, id);
        match (fout, req) {
            (FastOut::Open(o), _) => {
                w.key("session");
                w.str_value(&o.session);
                w.key("snapshot");
                w.str_value(&o.snapshot);
                w.key("focus");
                w.str_value(&o.focus);
                w.key("recovered");
                w.bool_value(o.recovered);
                if !o.diagnostics.is_empty() {
                    w.key("diagnostics");
                    w.begin_array();
                    for d in &o.diagnostics {
                        w.str_value(d);
                    }
                    w.end_array();
                }
            }
            (FastOut::Decide(o), FastRequest::Decide { name, value, .. }) => {
                w.key("name");
                w.str_value(name);
                w.key("value");
                value.write(&mut w);
                w.key("focus");
                w.str_value(&o.focus);
                w.key("open_issues");
                w.int_value(o.open_issues);
            }
            (FastOut::Retract(o), _) => {
                w.key("undone");
                w.begin_array();
                for name in &o.undone {
                    w.str_value(name);
                }
                w.end_array();
                w.key("focus");
                w.str_value(&o.focus);
            }
            (FastOut::Eval(o), _) => {
                w.key("estimates");
                w.begin_object();
                for (name, figure) in &o.estimates {
                    w.key(name);
                    write_figure(&mut w, figure);
                }
                w.end_object();
            }
            (FastOut::Cores(o), _) => {
                w.key("count");
                w.int_value(o.count);
                w.key("offset");
                w.int_value(o.offset);
                w.key("returned");
                w.int_value(o.names.len() as i64);
                w.key("truncated");
                w.bool_value(o.truncated);
                w.key("cores");
                w.begin_array();
                for name in &o.names {
                    w.str_value(name);
                }
                w.end_array();
            }
            (FastOut::Viable(o), FastRequest::Viable { name, .. }) => {
                w.key("name");
                w.str_value(name);
                w.key("viable");
                write_viability(&mut w, &o.viable);
                if let Some(conflict) = &o.conflict {
                    w.key("conflict");
                    w.str_value(conflict);
                }
            }
            (FastOut::Close(session), _) => {
                w.key("closed");
                w.str_value(session);
            }
            (FastOut::Stats, _) => self.render_stats(&mut w),
            // dispatch_fast pairs each request with its own output kind.
            _ => unreachable!("fast output does not match its request"),
        }
        w.end_object();
    }

    /// The fast `stats` renderer: reads the same counters in the same
    /// order as [`Engine::op_stats`], writing them without any tree.
    fn render_stats(&self, w: &mut Writer<'_>) {
        let cache = self.cache.stats();
        w.key("sessions_open");
        w.int_value(self.open_sessions() as i64);
        w.key("sessions_opened");
        w.int_value(self.opened.load(Ordering::Relaxed) as i64);
        w.key("sessions_recovered");
        w.int_value(self.recovered.load(Ordering::Relaxed) as i64);
        w.key("requests");
        w.int_value(self.requests.load(Ordering::Relaxed) as i64);
        w.key("draining");
        w.bool_value(self.is_draining());
        w.key("snapshots");
        w.begin_array();
        for name in self.snapshots.keys() {
            w.str_value(name);
        }
        w.end_array();
        w.key("cache");
        w.begin_object();
        w.key("entries");
        w.int_value(self.cache.len() as i64);
        w.key("hits");
        w.int_value(cache.hits as i64);
        w.key("misses");
        w.int_value(cache.misses as i64);
        w.key("stores");
        w.int_value(cache.stores as i64);
        w.key("invalidated");
        w.int_value(cache.invalidated as i64);
        w.end_object();
        w.key("guard");
        w.begin_object();
        w.key("overloaded");
        w.int_value(self.overloaded.load(Ordering::Relaxed) as i64);
        w.key("deadline_exceeded");
        w.int_value(self.deadline_exceeded.load(Ordering::Relaxed) as i64);
        w.key("sessions_evicted");
        w.int_value(self.evicted.load(Ordering::Relaxed) as i64);
        w.key("journal_compactions");
        w.int_value(self.compactions.load(Ordering::Relaxed) as i64);
        w.end_object();
        w.key("breakers");
        w.begin_array();
        for b in self.supervisor.lock().unwrap().breaker_snapshot() {
            w.begin_object();
            w.key("tool");
            w.str_value(&b.tool);
            w.key("phase");
            w.str_value(b.phase);
            w.key("trips");
            w.int_value(b.trips as i64);
            w.key("short_circuits");
            w.int_value(b.short_circuits as i64);
            w.key("calls_until_probe");
            w.int_value(b.calls_until_probe as i64);
            w.end_object();
        }
        w.end_array();
        w.key("boot_warnings");
        w.begin_array();
        for warning in &self.boot_warnings {
            w.str_value(warning);
        }
        w.end_array();
    }

    fn handle_parsed(&self, parsed: Result<Request, ProtocolError>, env: &Envelope) -> Json {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let id = &env.id;
        let req = match parsed {
            Ok(r) => r,
            Err(e) => return err_response(id, &e),
        };
        // A deadline is a cooperative fuel budget, not a wall clock: the
        // same request with the same deadline_ms exhausts at the same
        // point on every run, regardless of machine or thread count.
        let budget = env
            .deadline_ms
            .map(|ms| Fuel::new(ms.saturating_mul(FUEL_PER_MS)));
        let result = catch_unwind(AssertUnwindSafe(|| self.dispatch(req, budget.as_ref())))
            .unwrap_or_else(|p| {
                let what = p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_owned());
                Err(ProtocolError::new(
                    DiagCode::SessionRejected,
                    format!("internal error: operation aborted ({what})"),
                ))
            });
        match result {
            Ok(fields) => ok_response(id, fields),
            Err(e) => {
                match e.code {
                    DiagCode::Overloaded => {
                        self.overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    DiagCode::DeadlineExceeded => {
                        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                err_response(id, &e)
            }
        }
    }

    fn dispatch(&self, req: Request, budget: Option<&Fuel>) -> OpResult {
        // Every deadlined request pays a flat admission cost, so
        // deadline_ms:0 answers DSL310 before touching any state.
        charge(budget, OP_BASE_FUEL, "admission")?;
        match req {
            Request::Open {
                session,
                snapshot,
                resume,
            } => self.op_open(session, snapshot, resume),
            Request::Decide {
                session,
                name,
                value,
            } => self.op_decide(&session, &name, value),
            Request::Retract { session, name } => self.op_retract(&session, name.as_deref()),
            Request::Eval { session } => self.op_eval(&session, budget),
            Request::SurvivingCores {
                session,
                limit,
                offset,
            } => {
                charge(budget, CORE_SCAN_FUEL, "surviving_cores")?;
                self.op_surviving_cores(
                    &session,
                    limit.unwrap_or(DEFAULT_CORE_LIMIT),
                    offset.unwrap_or(0),
                )
            }
            Request::Viable { session, name } => {
                charge(budget, LOOKAHEAD_FUEL, "viable")?;
                self.op_viable(&session, &name)
            }
            Request::Report { session } => self.op_report(&session),
            Request::Close { session } => self.op_close(&session),
            Request::Stats => Ok(self.op_stats()),
            Request::Invalidate { tool } => Ok(vec![
                ("tool".to_owned(), Json::Str(tool.clone())),
                (
                    "dropped".to_owned(),
                    Json::Int(self.cache.invalidate_tool(&tool) as i64),
                ),
            ]),
            Request::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                Ok(vec![("draining".to_owned(), Json::Bool(true))])
            }
        }
    }

    // ---- session lifecycle -------------------------------------------------

    fn op_open(
        &self,
        session: Option<String>,
        snapshot: Option<String>,
        resume: bool,
    ) -> OpResult {
        self.op_open_core(session, snapshot, resume)
            .map(|o| open_fields(&o))
    }

    fn op_open_core(
        &self,
        session: Option<String>,
        snapshot: Option<String>,
        resume: bool,
    ) -> Result<OpenOut, ProtocolError> {
        if self.is_draining() {
            return Err(ProtocolError::new(
                DiagCode::ServerDraining,
                "server is draining; no new sessions",
            ));
        }
        let id = match session {
            Some(id) => {
                if !JournalDir::is_valid_id(&id) {
                    return Err(ProtocolError::malformed(format!(
                        "invalid session id {id:?} (want 1-128 chars of [A-Za-z0-9._-], no leading dot)"
                    )));
                }
                id
            }
            None => self.generate_id(),
        };

        // Re-attach to an already-open slot: idempotent under `resume`,
        // a DSL305 conflict otherwise.
        if let Some(slot) = self.get_slot(&id) {
            if !resume {
                return Err(ProtocolError::new(
                    DiagCode::SessionExists,
                    format!("session {id:?} is already open (use resume to attach)"),
                ));
            }
            let mut slot = slot.lock().unwrap();
            slot.last_touch = self.requests.load(Ordering::Relaxed);
            let notes = std::mem::take(&mut slot.notes);
            return Ok(open_out(&id, &slot, notes));
        }

        // Admission: sweep idle sessions first, then enforce the cap
        // with a structured refusal the client can back off on.
        self.evict_idle();
        if self.open_sessions() >= self.guard.max_sessions {
            return Err(ProtocolError::overloaded(
                format!(
                    "session cap reached ({} open); close or retry later",
                    self.guard.max_sessions
                ),
                self.guard.retry_after_ms,
            ));
        }

        let (slot, notes) = if resume {
            let (slot, notes) = self.resume_slot(&id, snapshot.as_deref())?;
            self.recovered.fetch_add(1, Ordering::Relaxed);
            (slot, notes)
        } else {
            if self
                .journal
                .as_ref()
                .is_some_and(|j| j.exists(&id))
            {
                return Err(ProtocolError::new(
                    DiagCode::SessionExists,
                    format!("session {id:?} has an unrecovered journal (resume it, or close it first)"),
                ));
            }
            let snapshot_name = snapshot.ok_or_else(|| {
                ProtocolError::malformed("missing required field \"snapshot\"")
            })?;
            let snap = self.snapshot(&snapshot_name)?;
            if let Some(journal) = &self.journal {
                self.write_meta(journal, &id, &snap.name)?;
            }
            let state = ExplorationSession::new(&snap.space, snap.root).into_snapshot();
            (
                SessionSlot {
                    snapshot: snap,
                    state,
                    recovered: false,
                    notes: Vec::new(),
                    lookahead: None,
                    journal_records: 0,
                    appender: JournalAppender::new(),
                    last_touch: self.requests.load(Ordering::Relaxed),
                },
                Vec::new(),
            )
        };

        let mut sessions = self.sessions.lock().unwrap();
        if sessions.contains_key(&id) {
            return Err(ProtocolError::new(
                DiagCode::SessionExists,
                format!("session {id:?} was opened concurrently"),
            ));
        }
        let out = open_out(&id, &slot, notes);
        sessions.insert(id, Arc::new(Mutex::new(slot)));
        self.opened.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    fn op_close(&self, id: &str) -> OpResult {
        self.op_close_core(id)
            .map(|closed| vec![("closed".to_owned(), Json::Str(closed))])
    }

    fn op_close_core(&self, id: &str) -> Result<String, ProtocolError> {
        let removed = self.sessions.lock().unwrap().remove(id);
        if removed.is_none() {
            // A TTL-evicted session lives on as journal + meta sidecar;
            // close must still reap those, not claim the session is
            // unknown.
            let on_disk = self
                .journal
                .as_ref()
                .is_some_and(|j| j.exists(id) || read_meta(j, id).is_some());
            if !on_disk {
                return Err(unknown_session(id));
            }
        }
        if let Some(journal) = &self.journal {
            journal
                .remove(id)
                .map_err(|e| journal_fault(id, "remove journal", &e))?;
            let _ = fs::remove_file(meta_path(journal, id));
        }
        Ok(id.to_owned())
    }

    // ---- exploration ops ---------------------------------------------------

    fn op_decide(&self, id: &str, name: &str, value: Value) -> OpResult {
        let out = self.op_decide_core(id, name, &value)?;
        Ok(vec![
            ("name".to_owned(), Json::Str(name.to_owned())),
            ("value".to_owned(), value_to_json(&value)),
            ("focus".to_owned(), Json::Str(out.focus)),
            ("open_issues".to_owned(), Json::Int(out.open_issues)),
        ])
    }

    fn op_decide_core(
        &self,
        id: &str,
        name: &str,
        value: &Value,
    ) -> Result<DecideOut, ProtocolError> {
        self.with_slot(id, |slot| {
            // Clone the Arc so the session borrows it, not the slot —
            // the journal appender needs `&mut slot` mid-operation.
            let snapshot = Arc::clone(&slot.snapshot);
            // Move the state into the session instead of cloning it;
            // every exit path below stashes it straight back.
            let mut session =
                ExplorationSession::resume(&snapshot.space, std::mem::take(&mut slot.state));
            let kind = session
                .space()
                .find_property(session.focus(), name)
                .map(|(_, p)| p.kind());
            let requirement = matches!(kind, Some(PropertyKind::Requirement));
            let applied = if requirement {
                session.set_requirement(name, value.clone())
            } else {
                // Unknown properties fall through to decide() so the
                // session produces its own (precise) error.
                session.decide(name, value.clone())
            };
            if let Err(e) = applied {
                // A rejected decision leaves the session untouched
                // (decide/set_requirement are all-or-nothing), so the
                // moved state goes back as-is.
                slot.state = session.into_snapshot();
                return Err(rejected(e));
            }
            if self.journal.is_some() {
                let record = if requirement {
                    JournalRecord::SetRequirement {
                        name: name.to_owned(),
                        value: value.clone(),
                    }
                } else {
                    JournalRecord::Decide {
                        name: name.to_owned(),
                        value: value.clone(),
                    }
                };
                if let Err(e) = self.append_journal(id, slot, &record) {
                    // Journal-before-acknowledge: a decision that never
                    // reached disk must not survive in the slot either —
                    // roll it back before restashing the state.
                    let _ = session.undo();
                    slot.state = session.into_snapshot();
                    return Err(e);
                }
                slot.journal_records += 1;
            }
            // Keep the lookahead solver in lock-step: one decide = one
            // solver level (O(changed domains)); a focus move
            // invalidates its constraint set, so drop it instead.
            match slot.lookahead.as_mut() {
                Some(la)
                    if la.focus == session.focus() && la.synced + 1 == session.log().len() =>
                {
                    la.solver.decide(name, value);
                    la.synced += 1;
                }
                Some(_) => slot.lookahead = None,
                None => {}
            }
            let out = DecideOut {
                focus: session.space().path_string(session.focus()),
                open_issues: session.open_issues().len() as i64,
            };
            slot.state = session.into_snapshot();
            self.maybe_compact(id, slot);
            Ok(out)
        })
    }

    fn op_retract(&self, id: &str, name: Option<&str>) -> OpResult {
        let out = self.op_retract_core(id, name)?;
        Ok(vec![
            (
                "undone".to_owned(),
                Json::Array(out.undone.into_iter().map(Json::Str).collect()),
            ),
            ("focus".to_owned(), Json::Str(out.focus)),
        ])
    }

    fn op_retract_core(
        &self,
        id: &str,
        name: Option<&str>,
    ) -> Result<RetractOut, ProtocolError> {
        self.with_slot(id, |slot| {
            let snapshot = Arc::clone(&slot.snapshot);
            let mut session =
                ExplorationSession::resume(&snapshot.space, std::mem::take(&mut slot.state));
            if let Some(name) = name {
                if !session.log().iter().any(|d| d.property == name) {
                    slot.state = session.into_snapshot();
                    return Err(ProtocolError::new(
                        DiagCode::SessionRejected,
                        format!("{name:?} is not a decided property in this session"),
                    ));
                }
            }
            let journaled = self.journal.is_some();
            let mut undone = Vec::new();
            loop {
                // With a journal, keep a pre-undo copy: an undo that
                // fails to reach disk must be discarded, not
                // acknowledged. Without one, nothing below can fail
                // after the undo and the state just moves.
                let pre = journaled.then(|| session.snapshot());
                let d = match session.undo() {
                    Ok(d) => d,
                    Err(e) => {
                        // Earlier undos in this loop are journaled and
                        // stay committed; only this one never happened.
                        slot.state = session.into_snapshot();
                        return Err(rejected(e));
                    }
                };
                // Journal each undo as it commits so a crash mid-retract
                // tears at most one record.
                if journaled {
                    if let Err(e) = self.append_journal(id, slot, &JournalRecord::Undo) {
                        slot.state = pre.expect("journal errors imply a journal");
                        return Err(e);
                    }
                    slot.journal_records += 1;
                }
                match slot.lookahead.as_mut() {
                    Some(la)
                        if la.focus == session.focus()
                            && la.synced == session.log().len() + 1
                            && la.solver.depth() > 0 =>
                    {
                        la.solver.retract();
                        la.synced -= 1;
                    }
                    Some(_) => slot.lookahead = None,
                    None => {}
                }
                let done = match name {
                    Some(target) => d.property == target,
                    None => true,
                };
                undone.push(d.property);
                if done {
                    break;
                }
            }
            let out = RetractOut {
                undone,
                focus: session.space().path_string(session.focus()),
            };
            slot.state = session.into_snapshot();
            self.maybe_compact(id, slot);
            Ok(out)
        })
    }

    fn op_eval(&self, id: &str, budget: Option<&Fuel>) -> OpResult {
        let out = self.op_eval_core(id, budget)?;
        Ok(vec![(
            "estimates".to_owned(),
            Json::Object(
                out.estimates
                    .into_iter()
                    .map(|(name, figure)| (name, figure_fields(&figure)))
                    .collect(),
            ),
        )])
    }

    fn op_eval_core(&self, id: &str, budget: Option<&Fuel>) -> Result<EvalOut, ProtocolError> {
        self.with_slot(id, |slot| {
            let mut session =
                ExplorationSession::resume(&slot.snapshot.space, slot.state.clone());
            session.absorb_derived();
            {
                let supervisor = self.supervisor.lock().unwrap();
                match budget {
                    // The whole estimation ladder shares the request's
                    // budget; exhaustion answers DSL310 and commits
                    // nothing (the local session clone is discarded).
                    Some(b) => {
                        session.run_estimators_within(&supervisor, b).map_err(|e| {
                            ProtocolError::deadline(format!(
                                "deadline exceeded during eval: {e}"
                            ))
                        })?;
                    }
                    None => {
                        session.run_estimators(&supervisor);
                    }
                }
            }
            let mut estimates: Vec<(String, FigureOut)> = session
                .estimates()
                .iter()
                .map(|(name, figure)| (name.as_str().to_owned(), figure_out(figure)))
                .collect();
            estimates.sort_by(|a, b| a.0.cmp(&b.0));
            // The clone on entry keeps the deadline path all-or-nothing;
            // the commit is a move.
            slot.state = session.into_snapshot();
            Ok(EvalOut { estimates })
        })
    }

    fn op_surviving_cores(&self, id: &str, limit: usize, offset: usize) -> OpResult {
        let out = self.op_surviving_cores_core(id, limit, offset)?;
        Ok(vec![
            ("count".to_owned(), Json::Int(out.count)),
            ("offset".to_owned(), Json::Int(out.offset)),
            ("returned".to_owned(), Json::Int(out.names.len() as i64)),
            ("truncated".to_owned(), Json::Bool(out.truncated)),
            (
                "cores".to_owned(),
                Json::Array(out.names.into_iter().map(Json::Str).collect()),
            ),
        ])
    }

    fn op_surviving_cores_core(
        &self,
        id: &str,
        limit: usize,
        offset: usize,
    ) -> Result<CoresOut, ProtocolError> {
        self.with_slot(id, |slot| {
            // The explorer only reads the session (queries re-sync its
            // cursor against the log), so the state moves through it and
            // back into the slot at the end.
            let session = ExplorationSession::resume(
                &slot.snapshot.space,
                std::mem::take(&mut slot.state),
            );
            let library: &ReuseLibrary = &slot.snapshot.library;
            let roster = roster_from_indices(&[library], &slot.snapshot.roster);
            let explorer = Explorer::from_session_with_store_and_roster(
                session,
                [library],
                roster,
                Arc::clone(&slot.snapshot.store),
            );
            let total = explorer.surviving_count();
            let page = explorer.surviving_page(offset, limit);
            // Clip the page to the wire byte budget: the framed response
            // line must stay under the `foundation::net` cap no matter
            // how many (or how long) names the caller asked for.
            let mut names: Vec<String> = Vec::with_capacity(page.len().min(4_096));
            let mut bytes = 0usize;
            let mut truncated = false;
            for core in &page {
                // Encoded size plus the separating comma.
                let cost = escaped_len(core.name()) + 1;
                if bytes + cost > CORE_PAGE_BYTE_BUDGET {
                    truncated = true;
                    break;
                }
                bytes += cost;
                names.push(core.name().to_owned());
            }
            slot.state = explorer.session.into_snapshot();
            Ok(CoresOut {
                count: total as i64,
                offset: offset as i64,
                names,
                truncated,
            })
        })
    }

    fn op_viable(&self, id: &str, name: &str) -> OpResult {
        let out = self.op_viable_core(id, name)?;
        let mut fields = vec![
            ("name".to_owned(), Json::Str(name.to_owned())),
            ("viable".to_owned(), viability_to_json(&out.viable)),
        ];
        if let Some(conflict) = out.conflict {
            fields.push(("conflict".to_owned(), Json::Str(conflict)));
        }
        Ok(fields)
    }

    fn op_viable_core(&self, id: &str, name: &str) -> Result<ViableOut, ProtocolError> {
        self.with_slot(id, |slot| {
            let session = ExplorationSession::resume(&slot.snapshot.space, slot.state.clone());
            let rebuild = match &slot.lookahead {
                Some(la) => la.focus != session.focus() || la.synced != session.log().len(),
                None => true,
            };
            if rebuild {
                slot.lookahead = Some(LookaheadSlot {
                    solver: session.lookahead(),
                    synced: session.log().len(),
                    focus: session.focus(),
                });
            }
            let la = slot.lookahead.as_ref().expect("lookahead just ensured");
            Ok(ViableOut {
                viable: la.solver.viable(name),
                conflict: la.solver.initial_conflict().map(|c| c.to_string()),
            })
        })
    }

    fn op_report(&self, id: &str) -> OpResult {
        self.with_slot(id, |slot| {
            let session =
                ExplorationSession::resume(&slot.snapshot.space, slot.state.clone());
            let space = session.space();

            // Bindings and estimates are keyed by interned symbol, whose
            // order is intern order — sort by name so reports are stable
            // across process histories.
            let mut bindings: Vec<(String, Json)> = session
                .bindings()
                .iter()
                .map(|(name, value)| (name.as_str().to_owned(), value_to_json(value)))
                .collect();
            bindings.sort_by(|a, b| a.0.cmp(&b.0));
            let mut estimates: Vec<(String, Json)> = session
                .estimates()
                .iter()
                .map(|(name, figure)| (name.as_str().to_owned(), figure_to_json(figure)))
                .collect();
            estimates.sort_by(|a, b| a.0.cmp(&b.0));

            let decisions: Vec<Json> = session
                .log()
                .iter()
                .map(|d| {
                    let mut obj = vec![
                        ("property".to_owned(), Json::Str(d.property.clone())),
                        ("value".to_owned(), value_to_json(&d.value)),
                        ("stale".to_owned(), Json::Bool(d.stale)),
                    ];
                    if let Some(note) = &d.note {
                        obj.push(("note".to_owned(), Json::Str(note.clone())));
                    }
                    Json::Object(obj)
                })
                .collect();
            let names = |props: Vec<&Property>| {
                Json::Array(
                    props
                        .iter()
                        .map(|p| Json::Str(p.name().to_owned()))
                        .collect(),
                )
            };
            Ok(vec![
                ("session".to_owned(), Json::Str(id.to_owned())),
                (
                    "snapshot".to_owned(),
                    Json::Str(slot.snapshot.name.clone()),
                ),
                (
                    "focus".to_owned(),
                    Json::Str(space.path_string(session.focus())),
                ),
                ("bindings".to_owned(), Json::Object(bindings)),
                ("decisions".to_owned(), Json::Array(decisions)),
                (
                    "open_requirements".to_owned(),
                    names(session.open_requirements()),
                ),
                ("open_issues".to_owned(), names(session.open_issues())),
                ("estimates".to_owned(), Json::Object(estimates)),
            ])
        })
    }

    fn op_stats(&self) -> Vec<(String, Json)> {
        let cache = self.cache.stats();
        vec![
            (
                "sessions_open".to_owned(),
                Json::Int(self.open_sessions() as i64),
            ),
            (
                "sessions_opened".to_owned(),
                Json::Int(self.opened.load(Ordering::Relaxed) as i64),
            ),
            (
                "sessions_recovered".to_owned(),
                Json::Int(self.recovered.load(Ordering::Relaxed) as i64),
            ),
            (
                "requests".to_owned(),
                Json::Int(self.requests.load(Ordering::Relaxed) as i64),
            ),
            ("draining".to_owned(), Json::Bool(self.is_draining())),
            (
                "snapshots".to_owned(),
                Json::Array(
                    self.snapshots
                        .keys()
                        .map(|k| Json::Str(k.clone()))
                        .collect(),
                ),
            ),
            (
                "cache".to_owned(),
                Json::Object(vec![
                    ("entries".to_owned(), Json::Int(self.cache.len() as i64)),
                    ("hits".to_owned(), Json::Int(cache.hits as i64)),
                    ("misses".to_owned(), Json::Int(cache.misses as i64)),
                    ("stores".to_owned(), Json::Int(cache.stores as i64)),
                    (
                        "invalidated".to_owned(),
                        Json::Int(cache.invalidated as i64),
                    ),
                ]),
            ),
            (
                "guard".to_owned(),
                Json::Object(vec![
                    (
                        "overloaded".to_owned(),
                        Json::Int(self.overloaded.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "deadline_exceeded".to_owned(),
                        Json::Int(self.deadline_exceeded.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "sessions_evicted".to_owned(),
                        Json::Int(self.evicted.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "journal_compactions".to_owned(),
                        Json::Int(self.compactions.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "breakers".to_owned(),
                Json::Array(
                    self.supervisor
                        .lock()
                        .unwrap()
                        .breaker_snapshot()
                        .into_iter()
                        .map(|b| {
                            Json::Object(vec![
                                ("tool".to_owned(), Json::Str(b.tool)),
                                ("phase".to_owned(), Json::Str(b.phase.to_owned())),
                                ("trips".to_owned(), Json::Int(b.trips as i64)),
                                (
                                    "short_circuits".to_owned(),
                                    Json::Int(b.short_circuits as i64),
                                ),
                                (
                                    "calls_until_probe".to_owned(),
                                    Json::Int(b.calls_until_probe as i64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "boot_warnings".to_owned(),
                Json::Array(
                    self.boot_warnings
                        .iter()
                        .map(|w| Json::Str(w.clone()))
                        .collect(),
                ),
            ),
        ]
    }

    // ---- plumbing ----------------------------------------------------------

    fn snapshot(&self, name: &str) -> Result<Arc<Snapshot>, ProtocolError> {
        self.snapshots.get(name).cloned().ok_or_else(|| {
            ProtocolError::new(
                DiagCode::UnknownSnapshot,
                format!(
                    "unknown snapshot {name:?} (have: {})",
                    self.snapshot_names().join(", ")
                ),
            )
        })
    }

    fn get_slot(&self, id: &str) -> Option<Arc<Mutex<SessionSlot>>> {
        self.sessions.lock().unwrap().get(id).cloned()
    }

    fn with_slot<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut SessionSlot) -> Result<R, ProtocolError>,
    ) -> Result<R, ProtocolError> {
        let slot = match self.get_slot(id) {
            Some(slot) => slot,
            // TTL eviction must be invisible: a journaled session that
            // was swept re-materializes from disk on its next touch.
            None => self.lazy_resume(id)?,
        };
        let mut slot = slot.lock().unwrap();
        slot.last_touch = self.requests.load(Ordering::Relaxed);
        f(&mut slot)
    }

    /// Re-opens an evicted session from its journal (or, for a session
    /// evicted before its first mutation, its meta sidecar alone).
    fn lazy_resume(&self, id: &str) -> Result<Arc<Mutex<SessionSlot>>, ProtocolError> {
        if self.journal.is_none() {
            return Err(unknown_session(id));
        }
        let (slot, _notes) = self.resume_slot(id, None).map_err(|mut e| {
            // Sessions that never existed should answer plain DSL304,
            // not a journal-layer error.
            if e.code == DiagCode::JournalFault && !self.journal.as_ref().unwrap().exists(id) {
                e = unknown_session(id);
            }
            e
        })?;
        let mut sessions = self.sessions.lock().unwrap();
        let arc = match sessions.entry(id.to_owned()) {
            std::collections::hash_map::Entry::Occupied(o) => Arc::clone(o.get()),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.recovered.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(Arc::new(Mutex::new(slot))))
            }
        };
        Ok(arc)
    }

    /// The resume path shared by `open … resume` and lazy re-open: a
    /// journal replays; a meta-only session (evicted before its first
    /// mutation) comes back fresh on its recorded snapshot.
    fn resume_slot(
        &self,
        id: &str,
        requested_snapshot: Option<&str>,
    ) -> Result<(SessionSlot, Vec<String>), ProtocolError> {
        let journaled = self.journal.as_ref().is_some_and(|j| j.exists(id));
        if journaled {
            return self.recover_one(id, requested_snapshot);
        }
        let Some(journal) = &self.journal else {
            // recover_one produces the precise journaling-disabled error.
            return self.recover_one(id, requested_snapshot);
        };
        let meta = read_meta(journal, id).ok_or_else(|| unknown_session(id))?;
        let snap = self.snapshot(requested_snapshot.unwrap_or(&meta))?;
        let state = ExplorationSession::new(&snap.space, snap.root).snapshot();
        Ok((
            SessionSlot {
                snapshot: snap,
                state,
                recovered: true,
                notes: Vec::new(),
                lookahead: None,
                journal_records: 0,
                appender: JournalAppender::new(),
                last_touch: self.requests.load(Ordering::Relaxed),
            },
            Vec::new(),
        ))
    }

    /// Sweeps journaled sessions idle past the TTL (measured on the
    /// request counter). Slots mid-operation are skipped — `try_lock`
    /// failure means the session is anything but idle.
    fn evict_idle(&self) {
        let Some(ttl) = self.guard.session_ttl_requests else {
            return;
        };
        let Some(journal) = &self.journal else {
            return; // without a journal, eviction would destroy state
        };
        let now = self.requests.load(Ordering::Relaxed);
        let mut sessions = self.sessions.lock().unwrap();
        let stale: Vec<String> = sessions
            .iter()
            .filter(|(id, slot)| {
                // Only sessions that can come back: journal or meta on
                // disk. (Both are written at open/first-mutation, so in
                // practice every journaled-engine session qualifies.)
                (journal.exists(id) || read_meta(journal, id).is_some())
                    && slot
                        .try_lock()
                        .map(|s| now.saturating_sub(s.last_touch) > ttl)
                        .unwrap_or(false)
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in stale {
            sessions.remove(&id);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rewrites a session's journal as a minimal checkpoint once it
    /// outgrows `compact_after` records. The checkpoint is *verified by
    /// replay* against the live state before it replaces anything; any
    /// history the checkpoint form cannot reproduce (stale decisions
    /// from revisions) skips compaction. Failure is never an op error —
    /// the uncompacted journal is still correct.
    fn maybe_compact(&self, id: &str, slot: &mut SessionSlot) {
        let Some(journal) = &self.journal else {
            return;
        };
        if self.guard.compact_after == 0 || slot.journal_records < self.guard.compact_after {
            return;
        }
        let session = ExplorationSession::resume(&slot.snapshot.space, slot.state.clone());
        let mut checkpoint = Journal::new();
        for d in session.log() {
            if d.stale {
                // Revision history is not expressible as a fresh
                // decide sequence; try again after more records.
                slot.journal_records = 0;
                return;
            }
            checkpoint.append(match d.kind {
                PropertyKind::Requirement => JournalRecord::SetRequirement {
                    name: d.property.clone(),
                    value: d.value.clone(),
                },
                _ => JournalRecord::Decide {
                    name: d.property.clone(),
                    value: d.value.clone(),
                },
            });
            if let Some(note) = &d.note {
                checkpoint.append(JournalRecord::Annotate {
                    name: d.property.clone(),
                    note: note.clone(),
                });
            }
        }
        let verified = checkpoint
            .replay(&slot.snapshot.space, slot.snapshot.root)
            .map(|replayed| {
                replayed.focus() == session.focus()
                    && replayed.bindings() == session.bindings()
                    && replayed.log() == session.log()
            })
            .unwrap_or(false);
        if !verified {
            slot.journal_records = 0;
            return;
        }
        if journal.compact(id, &checkpoint).is_ok() {
            // Compaction renamed a fresh file over the journal; a held
            // append handle now points at the unlinked inode and must
            // be reopened before the next append.
            slot.appender.invalidate();
            slot.journal_records = checkpoint.len();
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn generate_id(&self) -> String {
        loop {
            let n = self.session_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let id = format!("s{n}");
            let taken = self.sessions.lock().unwrap().contains_key(&id)
                || self.journal.as_ref().is_some_and(|j| j.exists(&id));
            if !taken {
                return id;
            }
        }
    }

    /// Appends through the slot's long-lived handle (opened on first
    /// use), so the per-record open+close disappears from the
    /// acknowledge path. Durability is unchanged: the write is
    /// unbuffered and a failed append drops the handle.
    fn append_journal(
        &self,
        id: &str,
        slot: &mut SessionSlot,
        record: &JournalRecord,
    ) -> Result<(), ProtocolError> {
        match &self.journal {
            Some(journal) => slot
                .appender
                .append(journal, id, record)
                .map_err(|e| journal_fault(id, "append", &e)),
            None => Ok(()),
        }
    }

    fn write_meta(
        &self,
        journal: &JournalDir,
        id: &str,
        snapshot: &str,
    ) -> Result<(), ProtocolError> {
        fs::write(meta_path(journal, id), format!("{snapshot}\n"))
            .map_err(|e| journal_fault(id, "write meta", &e))
    }

    /// Rebuilds one session from its journal (the `open … resume` path).
    fn recover_one(
        &self,
        id: &str,
        requested_snapshot: Option<&str>,
    ) -> Result<(SessionSlot, Vec<String>), ProtocolError> {
        let journal = self.journal.as_ref().ok_or_else(|| {
            ProtocolError::new(
                DiagCode::UnknownSession,
                format!("session {id:?} is not open (journaling is disabled; nothing to resume)"),
            )
        })?;
        let recovered = journal
            .recover(id)
            .map_err(|e| journal_fault(id, "read journal", &e))?
            .ok_or_else(|| unknown_session(id))?;
        let (loaded, report) = recovered.map_err(|e| {
            ProtocolError::new(
                DiagCode::JournalFault,
                format!("session {id:?}: {e}"),
            )
        })?;
        let snapshot_name = match requested_snapshot {
            Some(s) => s.to_owned(),
            None => read_meta(journal, id).ok_or_else(|| {
                ProtocolError::new(
                    DiagCode::JournalFault,
                    format!("session {id:?} has no snapshot metadata; pass \"snapshot\" to resume"),
                )
            })?,
        };
        let snap = self.snapshot(&snapshot_name)?;
        let session = loaded.replay(&snap.space, snap.root).map_err(|e| {
            ProtocolError::new(
                DiagCode::JournalFault,
                format!("session {id:?}: {e}"),
            )
        })?;
        let mut notes: Vec<String> = report
            .diagnostics
            .diagnostics()
            .iter()
            .map(|d| d.to_string())
            .collect();
        if requested_snapshot.is_some() && read_meta(journal, id).is_none() {
            // Resuming with an explicit snapshot repairs a missing meta
            // sidecar for the next boot.
            self.write_meta(journal, id, &snap.name)?;
            notes.push(format!("restored snapshot metadata for {id:?}"));
        }
        Ok((
            SessionSlot {
                state: session.snapshot(),
                snapshot: snap,
                recovered: true,
                notes: Vec::new(),
                lookahead: None,
                journal_records: loaded.len(),
                appender: JournalAppender::new(),
                last_touch: self.requests.load(Ordering::Relaxed),
            },
            notes,
        ))
    }

    /// The boot sweep: every journal in the directory becomes an open
    /// session again. Per-journal failures (corrupt body, missing meta,
    /// unknown snapshot, replay failure) become boot warnings; the
    /// journal file is left on disk for inspection.
    fn recover_journals(mut self) -> Result<Engine, String> {
        let Some(journal) = self.journal.clone() else {
            return Ok(self);
        };
        let mut warnings = Vec::new();
        let mut slots = Vec::new();
        for (id, loaded) in journal.recover_all().map_err(|e| e.to_string())? {
            match self.recover_one(&id, None) {
                Ok((slot, notes)) => {
                    let mut slot = slot;
                    slot.notes = notes;
                    slots.push((id, slot));
                }
                Err(e) => {
                    // recover_one re-reads the file; `loaded` is only
                    // used to keep the error message precise.
                    let detail = match loaded {
                        Err(inner) => inner.to_string(),
                        Ok(_) => e.message.clone(),
                    };
                    warnings.push(format!("journal {id:?} not recovered: {detail}"));
                }
            }
        }
        {
            let mut sessions = self.sessions.lock().unwrap();
            for (id, slot) in slots {
                sessions.insert(id, Arc::new(Mutex::new(slot)));
                self.opened.fetch_add(1, Ordering::Relaxed);
                self.recovered.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.boot_warnings = warnings;
        Ok(self)
    }
}

fn session_of(req: &Request) -> Option<&str> {
    match req {
        Request::Open {
            session: Some(s), ..
        } => Some(s),
        Request::Decide { session, .. }
        | Request::Retract { session, .. }
        | Request::Eval { session }
        | Request::SurvivingCores { session, .. }
        | Request::Viable { session, .. }
        | Request::Report { session }
        | Request::Close { session } => Some(session),
        _ => None,
    }
}

fn open_out(id: &str, slot: &SessionSlot, notes: Vec<String>) -> OpenOut {
    let session = ExplorationSession::resume(&slot.snapshot.space, slot.state.clone());
    OpenOut {
        session: id.to_owned(),
        snapshot: slot.snapshot.name.clone(),
        focus: session.space().path_string(session.focus()),
        recovered: slot.recovered,
        diagnostics: notes,
    }
}

fn open_fields(o: &OpenOut) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("session".to_owned(), Json::Str(o.session.clone())),
        ("snapshot".to_owned(), Json::Str(o.snapshot.clone())),
        ("focus".to_owned(), Json::Str(o.focus.clone())),
        ("recovered".to_owned(), Json::Bool(o.recovered)),
    ];
    if !o.diagnostics.is_empty() {
        fields.push((
            "diagnostics".to_owned(),
            Json::Array(o.diagnostics.iter().cloned().map(Json::Str).collect()),
        ));
    }
    fields
}

fn viability_to_json(v: &Viability) -> Json {
    let kind = |k: &str| ("kind".to_owned(), Json::Str(k.to_owned()));
    match v {
        Viability::Values(vs) => Json::Object(vec![
            kind("values"),
            (
                "options".to_owned(),
                Json::Array(vs.iter().map(value_to_json).collect()),
            ),
        ]),
        Viability::IntRange(lo, hi) => Json::Object(vec![
            kind("int_range"),
            ("lo".to_owned(), Json::Int(*lo)),
            ("hi".to_owned(), Json::Int(*hi)),
        ]),
        Viability::RealRange(lo, hi) => Json::Object(vec![
            kind("real_range"),
            ("lo".to_owned(), Json::Float(*lo)),
            ("hi".to_owned(), Json::Float(*hi)),
        ]),
        Viability::Open => Json::Object(vec![kind("open")]),
        Viability::Empty => Json::Object(vec![kind("empty")]),
    }
}

fn figure_to_json(figure: &Figure) -> Json {
    figure_fields(&figure_out(figure))
}

fn figure_out(figure: &Figure) -> FigureOut {
    FigureOut {
        value: figure.value,
        provenance: figure.provenance.label(),
        source: figure.source.clone(),
    }
}

fn figure_fields(figure: &FigureOut) -> Json {
    Json::Object(vec![
        (
            "value".to_owned(),
            match figure.value {
                Some(v) => Json::Float(v),
                None => Json::Null,
            },
        ),
        (
            "provenance".to_owned(),
            Json::Str(figure.provenance.to_owned()),
        ),
        ("source".to_owned(), Json::Str(figure.source.clone())),
    ])
}

/// Renders a figure through the writer, byte-identical to
/// [`figure_fields`] + the tree serializer.
fn write_figure(w: &mut Writer<'_>, figure: &FigureOut) {
    w.begin_object();
    w.key("value");
    match figure.value {
        Some(v) => w.float_value(v),
        None => w.null_value(),
    }
    w.key("provenance");
    w.str_value(figure.provenance);
    w.key("source");
    w.str_value(&figure.source);
    w.end_object();
}

/// Renders a viability verdict through the writer, byte-identical to
/// [`viability_to_json`] + the tree serializer.
fn write_viability(w: &mut Writer<'_>, v: &Viability) {
    w.begin_object();
    w.key("kind");
    match v {
        Viability::Values(vs) => {
            w.str_value("values");
            w.key("options");
            w.begin_array();
            for value in vs {
                match value {
                    Value::Int(i) => w.int_value(*i),
                    Value::Real(r) => w.float_value(*r),
                    Value::Text(s) => w.str_value(s),
                    Value::Flag(b) => w.bool_value(*b),
                    // Mirror `value_to_json`'s display fallback.
                    #[allow(unreachable_patterns)]
                    other => w.str_value(&other.to_string()),
                }
            }
            w.end_array();
        }
        Viability::IntRange(lo, hi) => {
            w.str_value("int_range");
            w.key("lo");
            w.int_value(*lo);
            w.key("hi");
            w.int_value(*hi);
        }
        Viability::RealRange(lo, hi) => {
            w.str_value("real_range");
            w.key("lo");
            w.float_value(*lo);
            w.key("hi");
            w.float_value(*hi);
        }
        Viability::Open => w.str_value("open"),
        Viability::Empty => w.str_value("empty"),
    }
    w.end_object();
}

fn meta_path(journal: &JournalDir, id: &str) -> std::path::PathBuf {
    journal.path().join(format!("{id}.{META_EXT}"))
}

fn read_meta(journal: &JournalDir, id: &str) -> Option<String> {
    if !JournalDir::is_valid_id(id) {
        return None;
    }
    let text = fs::read_to_string(meta_path(journal, id)).ok()?;
    let name = text.trim();
    (!name.is_empty()).then(|| name.to_owned())
}

fn unknown_session(id: &str) -> ProtocolError {
    ProtocolError::new(
        DiagCode::UnknownSession,
        format!("session {id:?} is not open"),
    )
}

fn rejected(e: DseError) -> ProtocolError {
    ProtocolError::new(DiagCode::SessionRejected, e.to_string())
}

/// Debits `steps` from a request's deadline budget (no-op without one),
/// converting exhaustion into the wire-level `DSL310`.
fn charge(budget: Option<&Fuel>, steps: u64, what: &str) -> Result<(), ProtocolError> {
    match budget {
        Some(fuel) => fuel.spend(steps).map_err(|_| {
            ProtocolError::deadline(format!(
                "deadline exceeded during {what} (budget of {} steps spent)",
                fuel.limit()
            ))
        }),
        None => Ok(()),
    }
}

fn journal_fault(id: &str, what: &str, e: &dyn std::fmt::Display) -> ProtocolError {
    ProtocolError::new(
        DiagCode::JournalFault,
        format!("session {id:?}: {what} failed: {e}"),
    )
}
