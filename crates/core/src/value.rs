//! Property values and value domains (the paper's "SetOfValues").

use std::fmt;


/// A property value: the design space layer is meta-data, so values stay
/// small and serializable.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Value {
    /// An integer (word sizes, radices, slice counts, …).
    Int(i64),
    /// A real number (latencies, areas, …).
    Real(f64),
    /// A symbolic option or free text ("Hardware", "Montgomery", …).
    Text(String),
    /// A boolean flag.
    Flag(bool),
}

impl Value {
    /// Human-readable type name, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Text(_) => "text",
            Value::Flag(_) => "flag",
        }
    }

    /// Numeric view: integers and reals as `f64`, otherwise `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Flag view.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            Value::Flag(b) => Some(*b),
            _ => None,
        }
    }

    /// Loose equality used for option matching: `Int` and `Real` compare
    /// numerically, text compares exactly.
    pub fn matches(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Flag(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Flag(v)
    }
}

/// The set of values a property may take — the paper's `SetOfValues`
/// annotations (e.g. `{2^i | i ∈ Z+}`, `{Guaranteed, notGuaranteed}`,
/// `R+`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Domain {
    /// Any value of any type.
    Any,
    /// A finite option set (the usual case for design issues).
    Enumeration(Vec<Value>),
    /// Integers in `min..=max`.
    IntRange {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// Non-negative reals up to `max` (the paper's `R+` with a sanity cap).
    RealRange {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Powers of two `2^i` for `i in 1..=max_exp` (the paper's
    /// `{2^i | i ∈ Z+}` used for EOL and radix).
    PowersOfTwo {
        /// Largest admitted exponent.
        max_exp: u32,
    },
    /// Booleans.
    Flag,
}

impl Domain {
    /// A finite option set from anything stringy or valuey.
    pub fn options<I, T>(options: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Value>,
    {
        Domain::Enumeration(options.into_iter().map(Into::into).collect())
    }

    /// Integers in `min..=max`.
    pub fn int_range(min: i64, max: i64) -> Self {
        Domain::IntRange { min, max }
    }

    /// Non-negative reals up to `max`.
    pub fn real_up_to(max: f64) -> Self {
        Domain::RealRange { min: 0.0, max }
    }

    /// Reals in `min..=max`.
    pub fn real_range(min: f64, max: f64) -> Self {
        Domain::RealRange { min, max }
    }

    /// The numeric `(min, max)` bounds, for domains that have them — the
    /// resilience supervisor's last-resort fallback range for a declared
    /// derived figure.
    pub fn numeric_bounds(&self) -> Option<(f64, f64)> {
        match self {
            Domain::IntRange { min, max } => Some((*min as f64, *max as f64)),
            Domain::RealRange { min, max } => Some((*min, *max)),
            Domain::PowersOfTwo { max_exp } => Some((2.0, (1u64 << (*max_exp).min(62)) as f64)),
            _ => None,
        }
    }

    /// Whether `value` belongs to the domain.
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Domain::Any => true,
            Domain::Enumeration(opts) => opts.iter().any(|o| o.matches(value)),
            Domain::IntRange { min, max } => value.as_i64().is_some_and(|v| v >= *min && v <= *max),
            Domain::RealRange { min, max } => {
                value.as_f64().is_some_and(|v| v >= *min && v <= *max)
            }
            Domain::PowersOfTwo { max_exp } => value.as_i64().is_some_and(|v| {
                v >= 2 && (v as u64).is_power_of_two() && (v as u64).trailing_zeros() <= *max_exp
            }),
            Domain::Flag => matches!(value, Value::Flag(_)),
        }
    }

    /// The finite options, if the domain is enumerable.
    pub fn enumerate(&self) -> Option<Vec<Value>> {
        match self {
            Domain::Enumeration(opts) => Some(opts.clone()),
            Domain::Flag => Some(vec![Value::Flag(false), Value::Flag(true)]),
            Domain::PowersOfTwo { max_exp } => {
                Some((1..=*max_exp).map(|e| Value::Int(1i64 << e)).collect())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Any => write!(f, "any"),
            Domain::Enumeration(opts) => {
                write!(f, "{{")?;
                for (i, o) in opts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, "}}")
            }
            Domain::IntRange { min, max } => write!(f, "[{min}..{max}]"),
            Domain::RealRange { min, max } => write!(f, "[{min}..{max}] ⊂ R"),
            Domain::PowersOfTwo { max_exp } => write!(f, "{{2^i | 1 <= i <= {max_exp}}}"),
            Domain::Flag => write!(f, "{{false, true}}"),
        }
    }
}

foundation::impl_json_enum!(Value { Int(v), Real(v), Text(v), Flag(v) });
foundation::impl_json_enum!(Domain {
    Any,
    Enumeration(options),
    IntRange { min, max },
    RealRange { min, max },
    PowersOfTwo { max_exp },
    Flag,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_matching_crosses_int_real() {
        assert!(Value::Int(4).matches(&Value::Real(4.0)));
        assert!(!Value::Int(4).matches(&Value::Real(4.5)));
        assert!(Value::from("x").matches(&Value::from("x")));
        assert!(!Value::from("x").matches(&Value::from("y")));
    }

    #[test]
    fn enumeration_contains_by_match() {
        let d = Domain::options(["Hardware", "Software"]);
        assert!(d.contains(&Value::from("Hardware")));
        assert!(!d.contains(&Value::from("Analog")));
    }

    #[test]
    fn powers_of_two_domain() {
        let d = Domain::PowersOfTwo { max_exp: 4 };
        for v in [2i64, 4, 8, 16] {
            assert!(d.contains(&Value::Int(v)), "{v}");
        }
        for v in [0i64, 1, 3, 32, -2] {
            assert!(!d.contains(&Value::Int(v)), "{v}");
        }
        assert_eq!(
            d.enumerate().unwrap(),
            vec![Value::Int(2), Value::Int(4), Value::Int(8), Value::Int(16)]
        );
    }

    #[test]
    fn ranges_are_inclusive() {
        let d = Domain::int_range(8, 128);
        assert!(d.contains(&Value::Int(8)));
        assert!(d.contains(&Value::Int(128)));
        assert!(!d.contains(&Value::Int(129)));
        assert!(!d.contains(&Value::from("wide")));

        let r = Domain::real_up_to(8.0);
        assert!(r.contains(&Value::Real(8.0)));
        assert!(r.contains(&Value::Int(3))); // ints coerce
        assert!(!r.contains(&Value::Real(8.1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Domain::options(["a", "b"]).to_string(), "{a, b}");
        assert_eq!(Domain::int_range(1, 5).to_string(), "[1..5]");
        assert_eq!(Value::from(3.5).to_string(), "3.5");
    }

    #[test]
    fn flag_domain_enumerates() {
        assert_eq!(
            Domain::Flag.enumerate().unwrap(),
            vec![Value::Flag(false), Value::Flag(true)]
        );
        assert!(Domain::Flag.contains(&Value::Flag(true)));
        assert!(!Domain::Flag.contains(&Value::Int(1)));
    }

    mod properties {
        use super::*;
        use foundation::check::{self, Gen};

        fn arb_domain(g: &mut Gen) -> Domain {
            match g.usize_in(0, 3) {
                0 => Domain::Flag,
                1 => Domain::PowersOfTwo {
                    max_exp: g.u32_in(1, 10),
                },
                _ => {
                    let len = g.usize_in(1, 8);
                    Domain::Enumeration((0..len).map(|_| Value::Int(g.i64())).collect())
                }
            }
        }

        #[test]
        fn every_enumerated_value_is_contained() {
            check::run("every_enumerated_value_is_contained", |g| {
                let d = arb_domain(g);
                let options = d.enumerate().expect("generator yields enumerable domains");
                assert!(!options.is_empty());
                for o in options {
                    assert!(d.contains(&o), "{o} not in {d}");
                }
            });
        }

        #[test]
        fn int_range_contains_iff_within() {
            check::run("int_range_contains_iff_within", |g| {
                let min = g.i64_in(-100, 100);
                let span = g.i64_in(0, 100);
                let v = g.i64_in(-300, 300);
                let d = Domain::int_range(min, min + span);
                assert_eq!(d.contains(&Value::Int(v)), v >= min && v <= min + span);
            });
        }

        #[test]
        fn matches_is_symmetric() {
            check::run("matches_is_symmetric", |g| {
                let (a, b) = (g.i64(), g.i64());
                let (va, vb) = (Value::Int(a), Value::Real(b as f64));
                assert_eq!(va.matches(&vb), vb.matches(&va));
            });
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("t").as_text(), Some("t"));
        assert_eq!(Value::Flag(true).as_flag(), Some(true));
        assert_eq!(Value::from("t").as_i64(), None);
        assert_eq!(Value::Int(1).type_name(), "int");
    }
}
