//! Architecture descriptions: points in the hardware design space.

use std::fmt;

use techlib::Technology;

use crate::adder::AdderKind;
use crate::estimate::{self, HwEstimate};
use crate::multiplier::DigitMultiplierKind;

/// The modular-multiplication algorithm implemented by a datapath.
///
/// The paper treats this as a *generalized* design issue: Montgomery
/// dominates Brickell in area and delay (Fig. 9), but requires an odd
/// modulus (CC1), so the two options partition the design space rather
/// than trade off finely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Algorithm {
    /// Montgomery's LSB-first algorithm (paper Fig. 10). Odd modulus only.
    Montgomery,
    /// Brickell's MSB-first interleaved algorithm. Any modulus.
    Brickell,
}

impl Algorithm {
    /// Both options, for iteration.
    pub const ALL: [Algorithm; 2] = [Algorithm::Montgomery, Algorithm::Brickell];

    /// Whether the algorithm requires the modulus to be odd.
    pub fn requires_odd_modulus(self) -> bool {
        matches!(self, Algorithm::Montgomery)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::Montgomery => "Montgomery",
            Algorithm::Brickell => "Brickell",
        };
        f.write_str(s)
    }
}

/// Errors from constructing a [`ModMulArchitecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchitectureError {
    /// Radix must be a power of two between 2 and 16.
    InvalidRadix(u64),
    /// Slice width must be positive and a multiple of the digit width.
    InvalidSliceWidth(u32),
    /// The digit-multiplier structure cannot implement this radix.
    IncompatibleMultiplier(DigitMultiplierKind, u64),
    /// Brickell datapaths are modelled at radix 2 only (the paper's #7/#8).
    BrickellRadixUnsupported(u64),
}

impl fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchitectureError::InvalidRadix(r) => {
                write!(f, "radix {r} is not a power of two within 2..=16")
            }
            ArchitectureError::InvalidSliceWidth(w) => {
                write!(
                    f,
                    "slice width {w} is not a positive multiple of the digit width"
                )
            }
            ArchitectureError::IncompatibleMultiplier(m, r) => {
                write!(f, "digit multiplier {m} cannot implement radix {r}")
            }
            ArchitectureError::BrickellRadixUnsupported(r) => {
                write!(
                    f,
                    "brickell datapaths are modelled at radix 2 only, got radix {r}"
                )
            }
        }
    }
}

impl std::error::Error for ArchitectureError {}

/// One hardware modular-multiplier architecture: a fully decided point in
/// the paper's hardware design space (algorithm, radix, slice width, adder
/// structure, digit-multiplier structure).
///
/// The *effective operand length* (EOL) is not part of the architecture:
/// a sliced design serves any EOL that is a multiple of its slice width,
/// which is exactly how the paper's "Number of Slices" design issue works.
///
/// # Examples
///
/// ```
/// use hwmodel::{Algorithm, AdderKind, DigitMultiplierKind, ModMulArchitecture};
///
/// let arch = ModMulArchitecture::new(
///     Algorithm::Montgomery,
///     4,
///     32,
///     AdderKind::CarrySave,
///     DigitMultiplierKind::MuxTable,
/// )?;
/// assert_eq!(arch.digit_bits(), 2);
/// assert_eq!(arch.num_slices(1024)?, 32);
/// # Ok::<(), hwmodel::ArchitectureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModMulArchitecture {
    algorithm: Algorithm,
    radix: u64,
    slice_width: u32,
    adder: AdderKind,
    multiplier: DigitMultiplierKind,
}

impl ModMulArchitecture {
    /// Builds and validates an architecture.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchitectureError`] when the parameters are not a
    /// consistent design point (bad radix, multiplier/radix mismatch,
    /// slice width not a multiple of the digit width, Brickell above
    /// radix 2).
    pub fn new(
        algorithm: Algorithm,
        radix: u64,
        slice_width: u32,
        adder: AdderKind,
        multiplier: DigitMultiplierKind,
    ) -> Result<Self, ArchitectureError> {
        if !radix.is_power_of_two() || !(2..=16).contains(&radix) {
            return Err(ArchitectureError::InvalidRadix(radix));
        }
        let k = radix.trailing_zeros();
        if algorithm == Algorithm::Brickell && radix != 2 {
            return Err(ArchitectureError::BrickellRadixUnsupported(radix));
        }
        if !multiplier.supports_digit_bits(k) {
            return Err(ArchitectureError::IncompatibleMultiplier(multiplier, radix));
        }
        if slice_width == 0 || !slice_width.is_multiple_of(k) {
            return Err(ArchitectureError::InvalidSliceWidth(slice_width));
        }
        Ok(ModMulArchitecture {
            algorithm,
            radix,
            slice_width,
            adder,
            multiplier,
        })
    }

    /// The algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The radix (2, 4, 8 or 16).
    pub fn radix(&self) -> u64 {
        self.radix
    }

    /// Bits per digit (`log₂ radix`).
    pub fn digit_bits(&self) -> u32 {
        self.radix.trailing_zeros()
    }

    /// The slice width in bits.
    pub fn slice_width(&self) -> u32 {
        self.slice_width
    }

    /// The wide-adder structure.
    pub fn adder(&self) -> AdderKind {
        self.adder
    }

    /// The digit-multiplier structure.
    pub fn multiplier(&self) -> DigitMultiplierKind {
        self.multiplier
    }

    /// Number of slices needed for an `eol`-bit operand.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidSliceWidth`] if `eol` is not a
    /// positive multiple of the slice width (the paper's "Number of
    /// Slices" design issue admits only exact divisors).
    pub fn num_slices(&self, eol: u32) -> Result<u32, ArchitectureError> {
        if eol == 0 || !eol.is_multiple_of(self.slice_width) {
            return Err(ArchitectureError::InvalidSliceWidth(eol));
        }
        Ok(eol / self.slice_width)
    }

    /// Number of digit iterations for an `eol`-bit multiplication.
    ///
    /// Montgomery runs one extra iteration (the paper's `FOR i = 1 TO n+1`
    /// in Fig. 10) so the result stays bounded; Brickell processes exactly
    /// the operand digits.
    pub fn iterations(&self, eol: u32) -> u64 {
        let digits = eol.div_ceil(self.digit_bits()) as u64;
        match self.algorithm {
            Algorithm::Montgomery => digits + 1,
            Algorithm::Brickell => digits,
        }
    }

    /// Total latency in clock cycles for an `eol`-bit multiplication:
    /// digit iterations, plus pipeline fill across slices, plus any
    /// multiplier setup cycles (mux-table precomputation).
    ///
    /// For the radix-2 and radix-4 designs this reduces to the paper's CC2
    /// formula `2·EOL/R + 1` (plus slicing overhead); at higher radices the
    /// exact count diverges from that heuristic — the A2 ablation
    /// experiment quantifies by how much.
    ///
    /// # Errors
    ///
    /// Returns an error if `eol` is not a positive multiple of the slice
    /// width.
    pub fn cycles(&self, eol: u32) -> Result<u64, ArchitectureError> {
        let slices = self.num_slices(eol)? as u64;
        Ok(self.iterations(eol) + (slices - 1) + self.multiplier.setup_cycles(self.digit_bits()))
    }

    /// Full estimate (area, clock, latency, power) for an `eol`-bit
    /// operand under `tech`. See the [`crate::estimate`] module.
    ///
    /// # Errors
    ///
    /// Returns an error if `eol` is not a positive multiple of the slice
    /// width.
    pub fn estimate(&self, eol: u32, tech: &Technology) -> HwEstimate {
        estimate::estimate(self, eol, tech).expect("estimate called with incompatible EOL")
    }

    /// Like [`estimate`](Self::estimate) but returning the error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if `eol` is not a positive multiple of the slice
    /// width.
    pub fn try_estimate(
        &self,
        eol: u32,
        tech: &Technology,
    ) -> Result<HwEstimate, ArchitectureError> {
        estimate::estimate(self, eol, tech)
    }
}

impl fmt::Display for ModMulArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} radix-{} w{} {} {}",
            self.algorithm, self.radix, self.slice_width, self.adder, self.multiplier
        )
    }
}

foundation::impl_json_enum!(Algorithm { Montgomery, Brickell });
foundation::impl_json_struct!(ModMulArchitecture { algorithm, radix, slice_width, adder, multiplier });

#[cfg(test)]
mod tests {
    use super::*;

    fn mont_r2_csa(w: u32) -> ModMulArchitecture {
        ModMulArchitecture::new(
            Algorithm::Montgomery,
            2,
            w,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        use ArchitectureError::*;
        assert_eq!(
            ModMulArchitecture::new(
                Algorithm::Montgomery,
                3,
                8,
                AdderKind::CarrySave,
                DigitMultiplierKind::AndRow
            )
            .unwrap_err(),
            InvalidRadix(3)
        );
        assert_eq!(
            ModMulArchitecture::new(
                Algorithm::Montgomery,
                4,
                8,
                AdderKind::CarrySave,
                DigitMultiplierKind::AndRow
            )
            .unwrap_err(),
            IncompatibleMultiplier(DigitMultiplierKind::AndRow, 4)
        );
        assert_eq!(
            ModMulArchitecture::new(
                Algorithm::Brickell,
                4,
                8,
                AdderKind::CarrySave,
                DigitMultiplierKind::Array
            )
            .unwrap_err(),
            BrickellRadixUnsupported(4)
        );
        assert_eq!(
            ModMulArchitecture::new(
                Algorithm::Montgomery,
                4,
                9,
                AdderKind::CarrySave,
                DigitMultiplierKind::Array
            )
            .unwrap_err(),
            InvalidSliceWidth(9)
        );
    }

    #[test]
    fn cc2_formula_matches_for_radix_2_and_4() {
        // cycles (single slice, no setup) == 2·EOL/R + 1.
        let eol = 64;
        let r2 = mont_r2_csa(64);
        assert_eq!(r2.cycles(eol).unwrap(), 2 * eol as u64 / 2 + 1);

        let r4 = ModMulArchitecture::new(
            Algorithm::Montgomery,
            4,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::Array,
        )
        .unwrap();
        assert_eq!(r4.cycles(eol).unwrap(), 2 * eol as u64 / 4 + 1);
    }

    #[test]
    fn cc2_formula_diverges_at_radix_8() {
        // The heuristic says 2·64/8 + 1 = 17 cycles; the exact count is
        // ceil(64/3) + 1 = 23 (plus no fill for one slice).
        let r8 = ModMulArchitecture::new(
            Algorithm::Montgomery,
            8,
            66, // multiple of 3
            AdderKind::CarrySave,
            DigitMultiplierKind::Array,
        )
        .unwrap();
        let exact = r8.cycles(66).unwrap();
        let heuristic = 2 * 66 / 8 + 1;
        assert!(exact > heuristic, "exact {exact} vs heuristic {heuristic}");
    }

    #[test]
    fn slicing_adds_pipeline_fill() {
        let a = mont_r2_csa(64);
        let single = a.cycles(64).unwrap();
        let sliced = a.cycles(256).unwrap(); // 4 slices
                                             // 256-bit operand: 257 iterations + 3 fill.
        assert_eq!(sliced, 257 + 3);
        assert_eq!(single, 65);
    }

    #[test]
    fn num_slices_requires_exact_division() {
        let a = mont_r2_csa(64);
        assert_eq!(a.num_slices(768).unwrap(), 12);
        assert!(a.num_slices(100).is_err());
        assert!(a.num_slices(0).is_err());
    }

    #[test]
    fn brickell_has_no_extra_iteration() {
        let b = ModMulArchitecture::new(
            Algorithm::Brickell,
            2,
            64,
            AdderKind::CarrySave,
            DigitMultiplierKind::AndRow,
        )
        .unwrap();
        assert_eq!(b.iterations(64), 64);
        let m = mont_r2_csa(64);
        assert_eq!(m.iterations(64), 65);
    }

    #[test]
    fn display_is_informative() {
        let a = mont_r2_csa(32);
        assert_eq!(a.to_string(), "Montgomery radix-2 w32 carry-save and-row");
    }

    #[test]
    fn odd_modulus_requirement() {
        assert!(Algorithm::Montgomery.requires_odd_modulus());
        assert!(!Algorithm::Brickell.requires_odd_modulus());
    }
}
