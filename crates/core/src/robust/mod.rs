//! The resilience layer: supervised estimation and transactional,
//! recoverable sessions.
//!
//! The paper's layer leans on *external* estimation tools (the CC3
//! contexts pick a `BehaviorDelayEstimator` and friends) and on a
//! long-lived interactive exploration loop — exactly the two places a
//! production system fails: a tool panics, hangs or returns garbage
//! mid-session. This module makes both failure surfaces survivable:
//!
//! * [`Supervisor`] runs estimators under `catch_unwind` with a
//!   deterministic [`Fuel`] budget, bounded seeded-backoff retry for
//!   transient failures, and declarative fallback chains ending at the
//!   output property's declared range. Every figure it produces is a
//!   [`Figure`] tagged with [`Provenance`], so degraded numbers are
//!   visible, never silent.
//! * [`Journal`] / [`JournaledSession`] give sessions an append-only
//!   decision journal (JSON lines via the foundation codec) with
//!   replay/recovery, tolerant of a truncated tail record.
//! * [`FaultPlan`] is a deterministic fault-injection harness: it wraps
//!   any estimator to inject panics, transient failures, fuel exhaustion
//!   and NaN/garbage outputs on a seeded schedule, so chaos tests can
//!   prove the invariants (no poisoned registry, no partial decisions,
//!   replay ≡ original) reproducibly.

use std::fmt;

pub mod cache;
pub mod fault;
pub mod fuel;
pub mod journal;
pub mod supervisor;

pub use cache::{CacheStats, EstimateCache};
pub use fault::{Fault, FaultPlan, FaultRates, FaultyEstimator};
pub use fuel::Fuel;
pub use journal::{
    Journal, JournalAppender, JournalDir, JournalRecord, JournaledSession, RecoverError,
    RecoveryReport,
};
pub use supervisor::{BreakerConfig, BreakerView, Supervisor, SupervisorConfig, SupervisorStats};

/// How trustworthy a produced figure is — the provenance ladder.
///
/// Ordering matters: `Exact < Estimated < Fallback < Unavailable` ranks
/// figures from most to least trustworthy, so `max()` over a report
/// yields the overall degradation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Provenance {
    /// Derived exactly (a designer decision, or an exact quantitative
    /// relation).
    Exact,
    /// Produced by the primary estimation tool.
    Estimated,
    /// Produced by a fallback: a coarser tool, or the output property's
    /// declared range.
    Fallback,
    /// Nothing could produce the figure; the value is absent.
    Unavailable,
}

impl Provenance {
    /// Lower-case label used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Exact => "exact",
            Provenance::Estimated => "estimated",
            Provenance::Fallback => "fallback",
            Provenance::Unavailable => "unavailable",
        }
    }

    /// Whether the figure is degraded (fallback or absent).
    pub fn is_degraded(self) -> bool {
        matches!(self, Provenance::Fallback | Provenance::Unavailable)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A provenance-tagged figure: the unit of supervised estimation that
/// flows into session bindings, the evaluation space and reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// The produced value, absent when [`Provenance::Unavailable`].
    pub value: Option<f64>,
    /// Where the value came from.
    pub provenance: Provenance,
    /// The tool (or `"range"`) that produced it, for reports.
    pub source: String,
}

impl Figure {
    /// An exact figure (designer decision / exact relation).
    pub fn exact(value: f64, source: impl Into<String>) -> Self {
        Figure {
            value: Some(value),
            provenance: Provenance::Exact,
            source: source.into(),
        }
    }

    /// A figure the primary tool estimated.
    pub fn estimated(value: f64, source: impl Into<String>) -> Self {
        Figure {
            value: Some(value),
            provenance: Provenance::Estimated,
            source: source.into(),
        }
    }

    /// A degraded figure from a fallback source.
    pub fn fallback(value: f64, source: impl Into<String>) -> Self {
        Figure {
            value: Some(value),
            provenance: Provenance::Fallback,
            source: source.into(),
        }
    }

    /// The marker for a figure nothing could produce.
    pub fn unavailable(source: impl Into<String>) -> Self {
        Figure {
            value: None,
            provenance: Provenance::Unavailable,
            source: source.into(),
        }
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            Some(v) => write!(f, "{v:.3} [{}: {}]", self.provenance, self.source),
            None => write!(f, "— [{}: {}]", self.provenance, self.source),
        }
    }
}

foundation::impl_json_enum!(Provenance { Exact, Estimated, Fallback, Unavailable });
foundation::impl_json_struct!(Figure { value, provenance, source });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_ladder_orders_by_degradation() {
        assert!(Provenance::Exact < Provenance::Estimated);
        assert!(Provenance::Estimated < Provenance::Fallback);
        assert!(Provenance::Fallback < Provenance::Unavailable);
        assert!(!Provenance::Estimated.is_degraded());
        assert!(Provenance::Fallback.is_degraded());
        assert!(Provenance::Unavailable.is_degraded());
    }

    #[test]
    fn figures_render_their_provenance() {
        let f = Figure::estimated(3.25, "BehaviorDelayEstimator");
        assert_eq!(f.to_string(), "3.250 [estimated: BehaviorDelayEstimator]");
        let u = Figure::unavailable("MaxCombDelayNs");
        assert!(u.to_string().contains("unavailable"));
        assert!(u.value.is_none());
    }

    #[test]
    fn figures_roundtrip_through_json() {
        let f = Figure::fallback(7.5, "range");
        let json = foundation::json::encode(&f);
        let back: Figure = foundation::json::decode(&json).unwrap();
        assert_eq!(f, back);
    }
}
