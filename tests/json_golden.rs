//! Golden tests for the `foundation::json` codec against the shipped
//! design data: the crypto and IDCT reuse libraries must round-trip
//! byte-identically, and the parser must handle (and precisely report)
//! the edge cases real library files can contain.

use design_space_layer::dse_library::{crypto, idct, CoreRecord, ReuseLibrary};
use design_space_layer::techlib::Technology;
use foundation::json::{decode, encode, encode_pretty, Json};

/// Encoding is deterministic, and decode∘encode is the identity — so one
/// encode→decode→encode cycle is a fixed point.
fn assert_encoding_fixed_point(lib: &ReuseLibrary) {
    let first = lib.to_json().unwrap();
    let back = ReuseLibrary::from_json(&first).unwrap();
    let second = back.to_json().unwrap();
    assert_eq!(first, second, "encoding must be a fixed point");
}

#[test]
fn crypto_library_encoding_is_a_fixed_point() {
    let lib = crypto::build_library(&Technology::g10_035(), 768);
    assert_encoding_fixed_point(&lib);
}

#[test]
fn idct_library_encoding_is_a_fixed_point() {
    assert_encoding_fixed_point(&idct::build_library());
}

#[test]
fn core_record_golden_shape() {
    // The on-disk shape of one record is a public contract: field order,
    // the externally-tagged merit keys, and string bindings.
    let mut lib = ReuseLibrary::new("golden");
    lib.push(
        CoreRecord::new("#1_8", "in-house", "radix-2 CSA datapath")
            .bind("Algorithm", "Montgomery")
            .merit(
                design_space_layer::dse::eval::FigureOfMerit::AreaUm2,
                5436.0,
            ),
    );
    let json = lib.to_json().unwrap();
    for needle in [
        "\"name\": \"golden\"",
        "\"name\": \"#1_8\"",
        "\"vendor\": \"in-house\"",
        "\"Algorithm\"",
        "\"Montgomery\"",
        "\"AreaUm2\": 5436.0",
    ] {
        assert!(json.contains(needle), "{needle} missing from:\n{json}");
    }
    assert_eq!(ReuseLibrary::from_json(&json).unwrap(), lib);
}

#[test]
fn compact_and_pretty_forms_decode_identically() {
    let lib = idct::build_library();
    let pretty = encode_pretty(&lib);
    let compact = encode(&lib);
    assert_ne!(pretty, compact);
    assert_eq!(
        decode::<ReuseLibrary>(&pretty).unwrap(),
        decode::<ReuseLibrary>(&compact).unwrap()
    );
}

#[test]
fn parser_handles_string_escapes() {
    let v = Json::parse(r#""a\"b\\c\/d\n\tAé""#).unwrap();
    assert_eq!(v.as_str(), Some("a\"b\\c/d\n\tA\u{e9}"));
    // Surrogate pair: U+1D11E (musical G clef).
    let v = Json::parse(r#""𝄞""#).unwrap();
    assert_eq!(v.as_str(), Some("\u{1D11E}"));
    // A lone surrogate is rejected.
    assert!(Json::parse(r#""\ud834""#).is_err());
}

#[test]
fn parser_handles_nested_arrays() {
    let v = Json::parse("[[1, [2, [3, [4]]]], []]").unwrap();
    let outer = v.as_array().unwrap();
    assert_eq!(outer.len(), 2);
    assert_eq!(outer[1].as_array().unwrap().len(), 0);
    let mut depth = 0;
    let mut cur = &outer[0];
    while let Some(items) = cur.as_array() {
        depth += 1;
        match items.last() {
            Some(next) => cur = next,
            None => break,
        }
    }
    assert_eq!(depth, 4);
}

#[test]
fn parser_discriminates_number_forms() {
    assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
    assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
    assert_eq!(Json::parse("42.0").unwrap(), Json::Float(42.0));
    assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    assert_eq!(Json::parse("-2.5E-2").unwrap(), Json::Float(-0.025));
    // i64 boundary values stay integers.
    assert_eq!(
        Json::parse("9223372036854775807").unwrap(),
        Json::Int(i64::MAX)
    );
    assert_eq!(
        Json::parse("-9223372036854775808").unwrap(),
        Json::Int(i64::MIN)
    );
    // Leading zeros and bare signs are malformed.
    assert!(Json::parse("01").is_err());
    assert!(Json::parse("+1").is_err());
    assert!(Json::parse("1.").is_err());
}

#[test]
fn parse_errors_carry_line_and_column() {
    // The error points at the offending token, 1-based.
    let e = Json::parse("{\"a\": 1,\n  \"b\": }").unwrap_err();
    assert_eq!((e.line, e.col), (2, 8), "{e}");

    let e = Json::parse("[1, 2\n3]").unwrap_err();
    assert_eq!(e.line, 2, "{e}");

    // Trailing garbage after a complete document is flagged where it starts.
    let e = Json::parse("null x").unwrap_err();
    assert_eq!((e.line, e.col), (1, 6), "{e}");
}

#[test]
fn decode_type_errors_name_the_context() {
    let e = decode::<ReuseLibrary>("[]").unwrap_err();
    assert!(e.to_string().contains("ReuseLibrary"), "{e}");
    let e = decode::<ReuseLibrary>("{\"name\": 3, \"cores\": []}").unwrap_err();
    assert!(e.to_string().to_lowercase().contains("string"), "{e}");
}
